// Sustained-churn stress for the reclamation subsystem: insert/delete
// loops long enough to force retire-list scans and epoch advances,
// with quiescent checkpoints *between* churn phases -- validate() used
// to be exercised only after clean sequential runs, so mid-churn
// integrity (marked runs, parked leftovers, reused handle slots) went
// unchecked. The footprint assertions are the point of the tier: under
// EBR and HP the number of allocated-but-unfreed nodes must stay near
// the live set no matter how long the churn runs, while the arena
// grows with every successful insert. Run under ASan/TSan in CI (label
// `sanitizer`).
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/core/iset.hpp"
#include "src/harness/catalog.hpp"
#include "src/harness/thread_team.hpp"
#include "src/workload/rng.hpp"
#include "tests/test_util.hpp"

namespace pragmalist {
namespace {

constexpr int kThreads = 4;
constexpr long kUniverse = 64;
constexpr long kOpsPerPhase = 6000;  // per thread
constexpr int kPhases = 4;

/// Footprint ceiling after `phases_done` churn phases: the live set,
/// plus per-handle in-flight retire bags (EBR may briefly hold a few
/// multiples of its threshold while epochs catch up), plus leftovers
/// parked by the handles destroyed so far — all independent of the
/// per-phase op count, which is what "bounded" means here.
std::size_t footprint_bound(int phases_done) {
  return static_cast<std::size_t>(kUniverse) +
         static_cast<std::size_t>(phases_done) * kThreads * 400 +
         kThreads * 300;
}

/// Quiescent drain: a fresh scratch handle runs a few read-only ops so
/// its guard releases keep advancing the epoch and adopting what the
/// departed workers orphaned. Under EBR's adaptive cadence a phase may
/// end with up to a threshold's worth of young bags per handle still
/// in the orphan pool (nothing is ever freeable sooner than two epochs
/// after retirement); a couple of advances make all of it eligible, so
/// the checkpoint asserts the real invariant -- everything beyond the
/// live set is *reclaimable* within a few epochs, not that the
/// scheduler happened to drain it already.
void drain_quiescent(core::ISet& set) {
  auto h = set.make_handle();
  for (int i = 0; i < 8; ++i) h->contains(0);
}

/// One churn phase: every thread hammers a 50/45/5 add/remove/contains
/// mix over the small universe (update-heavy so retirements dominate).
core::OpCounters churn_phase(core::ISet& set, std::uint64_t seed) {
  std::vector<core::OpCounters> counters(kThreads);
  harness::run_team(
      kThreads,
      [&](int t) {
        auto h = set.make_handle();
        workload::Rng rng(workload::thread_seed(seed, t));
        for (long i = 0; i < kOpsPerPhase; ++i) {
          const long k = static_cast<long>(rng.below(kUniverse));
          const auto roll = rng.below(100);
          if (roll < 50)
            h->add(k);
          else if (roll < 95)
            h->remove(k);
          else
            h->contains(k);
        }
        counters[static_cast<std::size_t>(t)] = h->counters();
      },
      /*pin=*/false);
  core::OpCounters agg;
  for (const auto& c : counters) agg += c;
  return agg;
}

class EveryReclaimCombo : public ::testing::TestWithParam<std::string_view> {};

/// The reclaim grid plus its sharded counterpart: the footprint bound
/// must hold identically when N shards share one reclamation domain
/// (the domain-wide allocated_nodes() already aggregates every shard).
std::vector<std::string_view> reclaim_and_sharded_ids() {
  std::vector<std::string_view> ids = harness::reclaim_variant_ids();
  const auto& sharded = harness::sharded_variant_ids();
  ids.insert(ids.end(), sharded.begin(), sharded.end());
  return ids;
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, EveryReclaimCombo,
    ::testing::ValuesIn(reclaim_and_sharded_ids()),
    [](const ::testing::TestParamInfo<std::string_view>& info) {
      std::string name(info.param);
      for (char& c : name)
        if (c == '/') c = '_';
      return name;
    });

// The reclaiming policies must keep the node footprint bounded by
// live-set + per-handle garbage, not by the total churn volume, and
// every quiescent checkpoint mid-churn must see an intact structure.
TEST_P(EveryReclaimCombo, ChurnKeepsFootprintBoundedAndStructureValid) {
  const std::uint64_t seed = test::env_seed(1000);
  test::ReproOnFailure repro(seed);
  auto set = harness::make_set(GetParam());
  core::OpCounters agg;
  for (int phase = 0; phase < kPhases; ++phase) {
    agg += churn_phase(*set, seed + static_cast<std::uint64_t>(phase));

    // Quiescent checkpoint: all workers joined, handles destroyed.
    std::string err;
    ASSERT_TRUE(set->validate(&err)) << "phase " << phase << ": " << err;
    ASSERT_EQ(static_cast<long>(set->size()), agg.adds - agg.rems)
        << "phase " << phase;

    // Footprint after a drain: nowhere near the cumulative churn
    // volume.
    drain_quiescent(*set);
    EXPECT_LE(set->allocated_nodes(), footprint_bound(phase + 1))
        << "phase " << phase;
  }
  // The bound had teeth: the run allocated far more than it may keep.
  EXPECT_GT(agg.adds, 2 * static_cast<long>(footprint_bound(kPhases)));
}

// The same churn under the arena must *grow* the footprint: exactly
// one tracked node per successful insert (plus the head sentinel).
// This is the contrast that proves the bounded assertion above is
// measuring reclamation and not a miscounting ledger.
TEST(ArenaContrast, ArenaFootprintGrowsWithEveryInsert) {
  const std::uint64_t seed = test::env_seed(2000);
  test::ReproOnFailure repro(seed);
  for (const std::string_view id :
       {std::string_view("singly"), std::string_view("doubly_cursor")}) {
    auto set = harness::make_set(id);
    core::OpCounters agg;
    for (int phase = 0; phase < 2; ++phase)
      agg += churn_phase(*set, seed + static_cast<std::uint64_t>(phase));
    std::string err;
    ASSERT_TRUE(set->validate(&err)) << err;
    EXPECT_EQ(set->allocated_nodes(),
              static_cast<std::size_t>(agg.adds) + 1)
        << id;
  }
}

// Handle slots must be released and reusable: cycle far more handles
// than the domain has slots (256), each parking a little garbage.
TEST(HandleLifecycle, SlotsAreReleasedAndLeftoversParked) {
  for (const auto id : reclaim_and_sharded_ids()) {
    auto set = harness::make_set(id);
    for (int i = 0; i < 300; ++i) {
      auto h = set->make_handle();
      EXPECT_TRUE(h->add(i % kUniverse));
      EXPECT_TRUE(h->remove(i % kUniverse));
    }
    std::string err;
    EXPECT_TRUE(set->validate(&err)) << id << ": " << err;
    EXPECT_EQ(set->size(), 0u) << id;
  }
}

// The shared-domain budget, the reason the domain/handle split exists:
// 200 *concurrent* workers on an 8-shard set fit the one 256-slot
// domain because each worker leases ONE reclaim handle for all eight
// shards. Per-shard domains would need 1600 slots (or 1600 hazard-cell
// rows) and abort in make_handle.
TEST(HandleLifecycle, ShardedWorkersCostOneSlotNotOnePerShard) {
  constexpr int kWorkers = 200;  // > 256 / 8, well under 256
  const std::uint64_t seed = test::env_seed(77);
  test::ReproOnFailure repro(seed);
  for (const std::string_view id : {std::string_view("singly/ebr/sh8"),
                                    std::string_view("singly_cursor/hp/sh8")}) {
    auto set = harness::make_set(id);
    harness::run_team(
        kWorkers,
        [&](int t) {
          auto h = set->make_handle();
          workload::Rng rng(workload::thread_seed(seed, t));
          for (long i = 0; i < 200; ++i) {
            const long k = static_cast<long>(rng.below(kUniverse));
            if (rng.below(2) == 0)
              h->add(k);
            else
              h->remove(k);
          }
        },
        /*pin=*/false);
    std::string err;
    ASSERT_TRUE(set->validate(&err)) << id << ": " << err;
    // Limbo residue is per-thread bounded, never per-thread-per-shard.
    EXPECT_LE(set->limbo_nodes(),
              static_cast<std::size_t>(kWorkers) * 400 + kUniverse)
        << id;
  }
}

// Long-running scans under churn: one thread runs continuous
// full-range range_scan() passes and another pages with ascend()
// while the remaining threads hammer insert/delete. Scans hold an
// epoch pin for their whole pass under EBR and re-anchor per step
// under HP; a reclamation bug -- a node freed while a scan can still
// reach it -- is a use-after-free the sanitizer tier (ASan/TSan re-run
// this label) catches on the spot, while the in-sink checks catch any
// ordering violation in every build. Covers the whole reclaim grid
// plus its sh4 sharded counterpart (where the scanner is the k-way
// merge over one shared domain).
TEST_P(EveryReclaimCombo, LongRunningScansNeverObserveAFreedNode) {
  const std::uint64_t seed = test::env_seed(4000);
  test::ReproOnFailure repro(seed);
  auto set = harness::make_set(GetParam());
  std::atomic<int> churners{kThreads};
  harness::run_team(
      kThreads + 2,
      [&](int t) {
        auto h = set->make_handle();
        workload::Rng rng(workload::thread_seed(seed, t));
        if (t < kThreads) {
          for (long i = 0; i < kOpsPerPhase; ++i) {
            const long k = static_cast<long>(rng.below(kUniverse));
            if (rng.below(2) == 0)
              h->add(k);
            else
              h->remove(k);
          }
          churners.fetch_sub(1, std::memory_order_release);
        } else if (t == kThreads) {
          // Full-range scanner: every emitted key must be in range and
          // strictly ascending within its pass, no matter how much was
          // retired and freed under the walk.
          long passes = 0;
          do {
            long last = std::numeric_limits<long>::min();
            h->range_scan(0, kUniverse - 1, [&](long k) {
              EXPECT_TRUE(k >= 0 && k < kUniverse && k > last)
                  << "scan emitted " << k << " after " << last;
              last = k;
            });
            ++passes;
          } while (churners.load(std::memory_order_acquire) != 0);
          EXPECT_GT(passes, 0);
        } else {
          // Pager: ascend() in small pages, restarting from the bottom
          // whenever the key space is exhausted.
          long from = 0;
          do {
            const std::vector<long> page = h->ascend(from, 8);
            long last = from - 1;
            for (const long k : page) {
              EXPECT_TRUE(k >= from && k < kUniverse && k > last)
                  << "page emitted " << k << " after " << last
                  << " (from " << from << ")";
              last = k;
            }
            from = (page.size() < 8) ? 0 : page.back() + 1;
          } while (churners.load(std::memory_order_acquire) != 0);
        }
      },
      /*pin=*/false);

  std::string err;
  ASSERT_TRUE(set->validate(&err)) << err;
  drain_quiescent(*set);
  EXPECT_LE(set->allocated_nodes(), footprint_bound(1));
}

// Regression for the satellite fix: validate() must hold at a
// quiescent checkpoint in the middle of churn for *every* catalog
// structure, not only after clean sequential runs.
class EveryVariantMidChurn
    : public ::testing::TestWithParam<std::string_view> {};

INSTANTIATE_TEST_SUITE_P(
    Catalog, EveryVariantMidChurn,
    ::testing::ValuesIn(harness::all_variant_ids()),
    [](const ::testing::TestParamInfo<std::string_view>& info) {
      std::string name(info.param);
      for (char& c : name)
        if (c == '/') c = '_';
      return name;
    });

TEST_P(EveryVariantMidChurn, QuiescentCheckpointSeesIntactStructure) {
  const std::uint64_t seed = test::env_seed(3000);
  test::ReproOnFailure repro(seed);
  auto set = harness::make_set(GetParam());
  core::OpCounters agg;
  for (int phase = 0; phase < 2; ++phase) {
    std::vector<core::OpCounters> counters(kThreads);
    harness::run_team(
        kThreads,
        [&](int t) {
          auto h = set->make_handle();
          workload::Rng rng(workload::thread_seed(
              seed + static_cast<std::uint64_t>(phase), t));
          for (long i = 0; i < 1500; ++i) {
            const long k = static_cast<long>(rng.below(kUniverse));
            if (rng.below(2) == 0)
              h->add(k);
            else
              h->remove(k);
          }
          counters[static_cast<std::size_t>(t)] = h->counters();
        },
        /*pin=*/false);
    for (const auto& c : counters) agg += c;

    std::string err;
    ASSERT_TRUE(set->validate(&err)) << "phase " << phase << ": " << err;
    ASSERT_EQ(static_cast<long>(set->size()), agg.adds - agg.rems);
    // Snapshot/membership coherence at the checkpoint.
    auto h = set->make_handle();
    for (const long k : set->snapshot())
      EXPECT_TRUE(h->contains(k)) << "snapshot key " << k;
  }
}

}  // namespace
}  // namespace pragmalist
