// Allocator tier (label `alloc`): the slab pool and thread caches that
// back every reclaim domain in slab mode. The contract under test:
//
//   * slots round-trip -- construct/destroy through the pool returns
//     the same memory to the same slab, and an empty+quiescent slab is
//     actually released back to the OS;
//   * frees are owner-correct across threads -- a slot freed by a
//     thread that never allocated it still lands on the slab that owns
//     the address (the used counter could never reach zero otherwise);
//   * a departing handle's ThreadCache drains: no slot stays stranded
//     in a dead worker's cache, so slab release is never blocked by a
//     worker that left;
//   * recycled slots stay poisoned (ASan builds) from the moment they
//     are freed until the moment they are handed out again -- the
//     tripwire that turns "a reader dereferenced a slot the reclaim
//     horizon no longer protects" into an immediate fault instead of a
//     silent read of the next owner's bytes;
//   * through a real domain, retire -> limbo -> free -> slab balances:
//     slots outstanding in the pool always equals the domain's live
//     ledger once every handle has departed.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "src/alloc/slab.hpp"
#include "src/core/unrolled_family.hpp"
#include "src/core/variants.hpp"
#include "src/harness/catalog.hpp"
#include "tests/test_util.hpp"

namespace pragmalist {
namespace {

struct TestNode {
  long v;
  long pad[3];
  explicit TestNode(long x) : v(x), pad{0, 0, 0} {}
};

using Pool = alloc::SlabPool<TestNode>;
using Cache = alloc::ThreadCache<TestNode>;

TEST(SlabPool, SlotRoundTrip) {
  Pool pool(alloc::Mode::kSlab);
  std::vector<TestNode*> nodes;
  for (long i = 0; i < 100; ++i) nodes.push_back(pool.construct(i));
  for (long i = 0; i < 100; ++i) {
    EXPECT_EQ(nodes[static_cast<std::size_t>(i)]->v, i);
    // Every slot lives inside a slab the pool owns: its base is
    // 16 KiB-aligned and slab_of is a pure mask.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(
                  pool.slab_of(nodes[static_cast<std::size_t>(i)])) %
                  Pool::kSlabBytes,
              0u);
  }
  EXPECT_EQ(pool.slots_in_use(), 100u);
  for (TestNode* n : nodes) pool.destroy(n);
  EXPECT_EQ(pool.slots_in_use(), 0u);

  const auto st = pool.stats();
  EXPECT_GE(st.slot_acquires, 100u);
  EXPECT_EQ(st.slot_acquires, st.slot_releases);

  // Quiescent and empty: every slab must go back to the OS.
  const std::size_t live = pool.slab_count();
  EXPECT_GE(live, 1u);
  EXPECT_EQ(pool.release_empty_slabs(), live);
  EXPECT_EQ(pool.slab_count(), 0u);
}

TEST(SlabPool, FreedSlotsAreReusedBeforeVirginOnes) {
  Pool pool(alloc::Mode::kSlab);
  TestNode* a = pool.construct(1L);
  pool.destroy(a);
  // The refill path harvests the free list before advancing the bump
  // counter, so the very next construct gets the recycled slot back.
  TestNode* b = pool.construct(2L);
  EXPECT_EQ(static_cast<void*>(a), static_cast<void*>(b));
  pool.destroy(b);
}

TEST(SlabPool, HeapModeIsPlainNewDelete) {
  Pool pool(alloc::Mode::kHeap);
  TestNode* n = pool.construct(7L);
  EXPECT_EQ(n->v, 7);
  pool.destroy(n);
  EXPECT_EQ(pool.slab_count(), 0u);
  EXPECT_EQ(pool.stats().slot_acquires, 0u);
}

TEST(SlabPool, CrossThreadFreeReturnsToOwningSlab) {
  Pool pool(alloc::Mode::kSlab);
  // Allocate enough to span several slabs, free every node from a
  // different thread through its *own* cache. If any free missed the
  // owning slab, that slab's used counter could never reach zero and
  // the final release would leave it live.
  const std::size_t per_slab = pool.stats().slots_per_slab;
  const std::size_t n = 3 * per_slab + 5;
  std::vector<TestNode*> nodes;
  {
    Cache producer(&pool);
    for (std::size_t i = 0; i < n; ++i)
      nodes.push_back(producer.construct(static_cast<long>(i)));
  }
  EXPECT_GE(pool.slab_count(), 3u);
  std::thread t([&] {
    Cache consumer(&pool);
    for (TestNode* node : nodes) consumer.destroy(node);
    // consumer's cache drains on scope exit (departure).
  });
  t.join();
  EXPECT_EQ(pool.slots_in_use(), 0u);
  const std::size_t live = pool.slab_count();
  EXPECT_EQ(pool.release_empty_slabs(), live);
  EXPECT_EQ(pool.slab_count(), 0u);
}

TEST(ThreadCache, DrainsOnDeparture) {
  Pool pool(alloc::Mode::kSlab);
  {
    Cache cache(&pool);
    // Fill the cache: destroys park slots locally instead of going to
    // the slab, so the pool still counts them as outstanding.
    std::vector<TestNode*> nodes;
    for (long i = 0; i < 32; ++i) nodes.push_back(cache.construct(i));
    for (TestNode* n : nodes) cache.destroy(n);
    EXPECT_GT(cache.cached(), 0u);
    EXPECT_GT(pool.slots_in_use(), 0u);
    // A cached slab never qualifies as empty: the worker might hand
    // the slot out again without touching the pool.
    EXPECT_EQ(pool.release_empty_slabs(), 0u);
  }
  // Departure drained every cached slot back to its owning slab.
  EXPECT_EQ(pool.slots_in_use(), 0u);
  EXPECT_GE(pool.release_empty_slabs(), 1u);
  EXPECT_EQ(pool.slab_count(), 0u);
}

TEST(ThreadCache, MoveTransfersCachedSlots) {
  Pool pool(alloc::Mode::kSlab);
  Cache a(&pool);
  a.destroy(a.construct(1L));
  const std::size_t cached = a.cached();
  ASSERT_GT(cached, 0u);
  Cache b(std::move(a));
  EXPECT_EQ(a.cached(), 0u);
  EXPECT_EQ(b.cached(), cached);
  b.drain();
  EXPECT_EQ(pool.slots_in_use(), 0u);
}

#if defined(PRAGMALIST_ASAN)
// The allocator-lifetime tripwire. While a slot sits in a thread cache
// or on a slab free list, its bytes are poisoned -- any dereference
// through a stale pointer (a reader the reclaim horizon should still
// be protecting) faults immediately. The slot unpoisons only at the
// moment it is handed out again.
TEST(SlabPoison, RecycledSlotIsPoisonedUntilReissued) {
  Pool pool(alloc::Mode::kSlab);
  Cache cache(&pool);
  TestNode* n = cache.construct(42L);
  char* bytes = reinterpret_cast<char*>(n);
  EXPECT_FALSE(__asan_address_is_poisoned(bytes));
  cache.destroy(n);
  // Cached: the whole slot is poisoned.
  EXPECT_TRUE(__asan_address_is_poisoned(bytes));
  EXPECT_TRUE(__asan_address_is_poisoned(bytes + sizeof(TestNode) - 1));
  // Drained to the slab's free list: the intrusive link occupies the
  // first pointer, the rest stays poisoned.
  cache.drain();
  EXPECT_TRUE(__asan_address_is_poisoned(bytes + sizeof(void*)));
  // Reissued: clean again, and it is the same memory.
  TestNode* again = cache.construct(43L);
  EXPECT_EQ(static_cast<void*>(again), static_cast<void*>(n));
  EXPECT_FALSE(__asan_address_is_poisoned(bytes));
  cache.destroy(again);
}
#endif

// --- domain integration ----------------------------------------------
//
// The same ledger through a real engine + reclaim domain in slab mode:
// once every handle has departed, slots outstanding in the pool ==
// nodes the domain considers live (live keys + sentinels + limbo).
// Nothing retired ever reaches the slab before the policy frees it;
// nothing freed ever lingers in a departed worker's cache.

template <typename Engine>
void churn_and_check_ledger() {
  auto domain =
      std::make_shared<typename Engine::Reclaim>(alloc::Mode::kSlab);
  {
    Engine list(domain);
    {
      auto h = list.make_handle();
      for (long k = 0; k < 512; ++k) EXPECT_TRUE(h.add(k));
      for (long k = 0; k < 512; k += 2) EXPECT_TRUE(h.remove(k));
      for (long k = 1; k < 512; k += 2) EXPECT_TRUE(h.contains(k));
    }
    std::string err;
    EXPECT_TRUE(list.validate(&err)) << err;
    EXPECT_EQ(list.size(), 256u);
    const auto st = domain->slab_stats();
    // Handles departed: caches drained, so pool-outstanding slots are
    // exactly the domain's live ledger (live + sentinels + limbo).
    EXPECT_EQ(st.slot_acquires - st.slot_releases, list.allocated_nodes());
  }
  // Engine gone; whatever limbo the domain still parks dies with it.
  domain.reset();
}

TEST(SlabDomain, ArenaLedgerBalances) {
  churn_and_check_ledger<core::SinglyList>();
}
TEST(SlabDomain, EbrLedgerBalances) {
  churn_and_check_ledger<core::SinglyListEbr>();
}
TEST(SlabDomain, HpLedgerBalances) {
  churn_and_check_ledger<core::SinglyListHp>();
}
TEST(SlabDomain, UnrolledEbrLedgerBalances) {
  churn_and_check_ledger<core::UnrolledK8ListEbr>();
}

// The catalog's mode plumbing: engine ids default to slab, `/heap` is
// the malloc twin, and `unrolled-k8` aliases to the underscore id.
TEST(SlabCatalog, ModeAndAliasParsing) {
  for (const char* id :
       {"unrolled_k8", "unrolled-k8", "unrolled_k8/ebr", "unrolled-k8/hp",
        "singly/heap", "unrolled_k8/hp/sh4/heap", "singly/ebr/sh2",
        "skiplist/heap"}) {
    auto set = harness::make_set(id);
    ASSERT_NE(set, nullptr) << id;
    EXPECT_EQ(set->name(), id);
    auto h = set->make_handle();
    EXPECT_TRUE(h->add(1));
    EXPECT_TRUE(h->contains(1));
    h.reset();
    std::string err;
    EXPECT_TRUE(set->validate(&err)) << id << ": " << err;
  }
  EXPECT_EQ(harness::make_set("unrolled_k8/hp/sh4/heap")->shard_count(), 4);
}

}  // namespace
}  // namespace pragmalist
