// Determinism and sanity for the workload layer: same seed => same
// xoshiro/zipf stream (including golden values that pin the exact
// sequences the deterministic benches rely on), zipf skew grows
// monotonically with theta, and op-mix ratios land within tolerance.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/workload/distributions.hpp"
#include "src/workload/op_mix.hpp"
#include "src/workload/rng.hpp"

namespace pragmalist {
namespace {

TEST(Determinism, SameSeedSameXoshiroStream) {
  workload::Rng a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a(), b()) << "step " << i;
}

// Golden values: any change to seeding or the generator silently
// reshuffles every "deterministic" bench schedule, so pin the exact
// stream, not just self-consistency.
TEST(Determinism, XoshiroGoldenValues) {
  workload::Rng r(42);
  EXPECT_EQ(r(), 1546998764402558742ULL);
  EXPECT_EQ(r(), 6990951692964543102ULL);
  EXPECT_EQ(r(), 12544586762248559009ULL);
  EXPECT_EQ(r(), 17057574109182124193ULL);
}

TEST(Determinism, ThreadSeedGoldenValues) {
  EXPECT_EQ(workload::thread_seed(42, 0), 1210290742791945092ULL);
  EXPECT_EQ(workload::thread_seed(42, 1), 18343460015919023881ULL);
  EXPECT_EQ(workload::thread_seed(42, 2), 7919894852732183297ULL);
}

TEST(Determinism, SameSeedSameZipfStream) {
  workload::Rng a(7), b(7);
  const workload::ZipfKeys keys(1024, 0.9);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(keys(a), keys(b)) << "step " << i;
}

TEST(Determinism, ZipfGoldenValues) {
  workload::Rng r(7);
  const workload::ZipfKeys keys(64, 0.99);
  const std::vector<long> expected = {14, 1, 28, 58, 61, 34, 0, 0};
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(keys(r), expected[i]) << "draw " << i;
}

TEST(Determinism, SameSeedSameUniformStream) {
  workload::Rng a(99), b(99);
  const workload::UniformKeys keys(4096);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(keys(a), keys(b)) << "step " << i;
}

/// Fraction of 100k draws that hit the hottest key (rank 1 == key 0).
double hot_fraction(double theta) {
  workload::Rng rng(31);
  const workload::ZipfKeys keys(1024, theta);
  int hot = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hot += (keys(rng) == 0);
  return static_cast<double>(hot) / kDraws;
}

TEST(Zipf, SkewIsMonotoneInTheta) {
  const double f02 = hot_fraction(0.2);
  const double f06 = hot_fraction(0.6);
  const double f09 = hot_fraction(0.9);
  const double f099 = hot_fraction(0.99);
  const double f14 = hot_fraction(1.4);
  // Strictly increasing with clear daylight, not sampling noise.
  EXPECT_GT(f06, f02 * 1.5);
  EXPECT_GT(f09, f06 * 1.5);
  EXPECT_GT(f099, f09);
  EXPECT_GT(f14, f099 * 1.5);
  // Near-uniform at the bottom, heavily skewed at the top.
  EXPECT_LT(f02, 0.02);
  EXPECT_GT(f14, 0.3);
}

TEST(Zipf, EveryKeyInRangeAndHeadDominates) {
  workload::Rng rng(17);
  const workload::ZipfKeys keys(256, 0.99);
  std::vector<int> seen(256, 0);
  for (int i = 0; i < 100000; ++i) {
    const long k = keys(rng);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 256);
    ++seen[static_cast<std::size_t>(k)];
  }
  // The ten hottest ranks carry more mass than a uniform 100 would.
  long head = 0;
  for (int i = 0; i < 10; ++i) head += seen[i];
  EXPECT_GT(head, 100000 * 10 / 256 * 5);
}

TEST(OpMix, RatiosWithinToleranceForAllMixes) {
  for (const auto& mix :
       {workload::kTableMix, workload::kScalingMix, workload::OpMix{50, 50, 0},
        workload::OpMix{0, 0, 100}, workload::OpMix{20, 20, 30, 30},
        workload::OpMix{10, 10, 30, 50}}) {
    workload::Rng rng(23);
    constexpr int kDraws = 100000;
    int add = 0, rem = 0, con = 0, scan = 0;
    for (int i = 0; i < kDraws; ++i) {
      switch (mix.pick(rng)) {
        case workload::OpKind::kAdd: ++add; break;
        case workload::OpKind::kRemove: ++rem; break;
        case workload::OpKind::kContains: ++con; break;
        case workload::OpKind::kScan: ++scan; break;
      }
    }
    const double tol = 0.01 * kDraws;  // one percentage point
    EXPECT_NEAR(add, kDraws * mix.add_pct / 100, tol) << mix.add_pct;
    EXPECT_NEAR(rem, kDraws * mix.rem_pct / 100, tol) << mix.rem_pct;
    EXPECT_NEAR(con, kDraws * mix.con_pct / 100, tol) << mix.con_pct;
    EXPECT_NEAR(scan, kDraws * mix.scan_pct / 100, tol) << mix.scan_pct;
  }
}

// A zero scan share must leave the op stream bit-identical to the
// pre-scan mixes (the scan band sits between remove and contains, so
// scan_pct == 0 collapses it): golden determinism for every existing
// workload.
TEST(OpMix, ZeroScanShareKeepsTheLegacyStream) {
  workload::Rng a(31), b(31);
  const workload::OpMix legacy{25, 25, 50};         // scan_pct defaults to 0
  const workload::OpMix explicit0{25, 25, 50, 0};
  for (int i = 0; i < 2000; ++i)
    ASSERT_EQ(static_cast<int>(legacy.pick(a)),
              static_cast<int>(explicit0.pick(b)));
}

TEST(ScanWidths, UniformInClosedRange) {
  workload::Rng rng(37);
  const workload::ScanWidths w{4, 19};
  std::vector<int> seen(32, 0);
  for (int i = 0; i < 20000; ++i) {
    const long width = w.pick(rng);
    ASSERT_GE(width, 4);
    ASSERT_LE(width, 19);
    ++seen[static_cast<std::size_t>(width)];
  }
  for (long width = 4; width <= 19; ++width)
    EXPECT_GT(seen[static_cast<std::size_t>(width)], 0) << width;
  // Degenerate distribution: min == max is a constant.
  const workload::ScanWidths fixed{8, 8};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fixed.pick(rng), 8);
}

TEST(OpMix, SameSeedSameOpStream) {
  workload::Rng a(3), b(3);
  const workload::OpMix mix = workload::kTableMix;
  for (int i = 0; i < 1000; ++i)
    ASSERT_EQ(static_cast<int>(mix.pick(a)), static_cast<int>(mix.pick(b)));
}

}  // namespace
}  // namespace pragmalist
