// Harness and workload unit tests: options parsing, catalog wiring,
// RNG determinism, distributions, op mixes, stats, table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/harness/catalog.hpp"
#include "src/harness/options.hpp"
#include "src/harness/stats.hpp"
#include "src/harness/table.hpp"
#include "src/workload/distributions.hpp"
#include "src/workload/op_mix.hpp"
#include "src/workload/rng.hpp"
#include "src/workload/schedule.hpp"

namespace pragmalist {
namespace {

harness::Options parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("prog"));
  for (auto& a : args) argv.push_back(a.data());
  return harness::Options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, ParsesSpaceAndEqualsAndBareFlags) {
  const auto opt =
      parse({"--threads", "8", "--n=1234", "--paper", "--no-pin"});
  EXPECT_EQ(opt.get_int("threads", 1), 8);
  EXPECT_EQ(opt.get_long("n", 0), 1234);
  EXPECT_TRUE(opt.get_bool("paper"));
  EXPECT_TRUE(opt.get_bool("no-pin"));
  EXPECT_FALSE(opt.get_bool("absent"));
  EXPECT_EQ(opt.get_int("absent", 42), 42);
}

TEST(Options, GetStringReturnsRawValueOrDefault) {
  const auto opt = parse({"--variants", "a,c,e", "--bare"});
  EXPECT_EQ(opt.get_string("variants", "all"), "a,c,e");
  EXPECT_EQ(opt.get_string("missing", "all"), "all");
  EXPECT_EQ(opt.get_string("bare", "def"), "def");
}

TEST(Options, ParsesLongLists) {
  const auto opt = parse({"--threads", "1,2,4,8"});
  EXPECT_EQ(opt.get_longs("threads", {}),
            (std::vector<long>{1, 2, 4, 8}));
  EXPECT_EQ(opt.get_longs("missing", {3, 5}),
            (std::vector<long>{3, 5}));
}

TEST(Options, GetLongsSkipsEmptyItemsAndZerosBadOnes) {
  // Stray commas are skipped; non-integer items warn and parse as 0
  // (the get_long contract, item-wise); an all-empty value falls back
  // to the default, as do bare flags.
  const auto opt = parse({"--shards", "1,,4,", "--bad", "x,2", "--none=,,"});
  EXPECT_EQ(opt.get_longs("shards", {}), (std::vector<long>{1, 4}));
  EXPECT_EQ(opt.get_longs("bad", {}), (std::vector<long>{0, 2}));
  EXPECT_EQ(opt.get_longs("none", {7}), (std::vector<long>{7}));
  const auto bare = parse({"--shards"});
  EXPECT_EQ(bare.get_longs("shards", {9}), (std::vector<long>{9}));
}

TEST(Options, ListFlavorsShareOneSplitter) {
  // get_longs and get_string_list are the same comma splitter; the
  // string view of a numeric list tokenizes identically.
  const auto opt = parse({"--xs", "10,,20,30,"});
  EXPECT_EQ(opt.get_longs("xs", {}), (std::vector<long>{10, 20, 30}));
  EXPECT_EQ(opt.get_string_list("xs", {}),
            (std::vector<std::string>{"10", "20", "30"}));
}

TEST(Options, HostPortParsesBothHalvesOrEither) {
  const harness::Options::HostPort def{"127.0.0.1", 7111};
  const auto opt = parse({"--listen", "0.0.0.0:9000", "--port-only",
                          ":8080", "--host-only", "10.1.2.3"});
  EXPECT_EQ(opt.get_host_port("listen", def).host, "0.0.0.0");
  EXPECT_EQ(opt.get_host_port("listen", def).port, 9000);
  // Either side may be omitted and keeps its default.
  EXPECT_EQ(opt.get_host_port("port-only", def).host, "127.0.0.1");
  EXPECT_EQ(opt.get_host_port("port-only", def).port, 8080);
  EXPECT_EQ(opt.get_host_port("host-only", def).host, "10.1.2.3");
  EXPECT_EQ(opt.get_host_port("host-only", def).port, 7111);
  EXPECT_EQ(opt.get_host_port("absent", def).port, 7111);
}

TEST(Options, HostPortRejectsBadPortsWhole) {
  // A broken port discards the whole value (warn + default, the
  // get_long contract) -- no half-applied host with a default port.
  const harness::Options::HostPort def{"127.0.0.1", 7111};
  for (const char* bad : {"h:99999", "h:-1", "h:x", "h:80x"}) {
    const auto opt = parse({"--listen", bad});
    const auto hp = opt.get_host_port("listen", def);
    EXPECT_EQ(hp.host, "127.0.0.1") << bad;
    EXPECT_EQ(hp.port, 7111) << bad;
  }
}

TEST(Options, DurationSuffixesScaleToMilliseconds) {
  const auto opt =
      parse({"--a", "500ms", "--b", "5s", "--c", "2m", "--d", "1h",
             "--e", "3", "--f", "0.25s", "--g", "0"});
  EXPECT_EQ(opt.get_duration_ms("a", 0), 500);
  EXPECT_EQ(opt.get_duration_ms("b", 0), 5000);
  EXPECT_EQ(opt.get_duration_ms("c", 0), 120000);
  EXPECT_EQ(opt.get_duration_ms("d", 0), 3600000);
  // Bare numbers stay seconds: `--duration 3` has always meant 3 s.
  EXPECT_EQ(opt.get_duration_ms("e", 0), 3000);
  EXPECT_EQ(opt.get_duration_ms("f", 0), 250);
  EXPECT_EQ(opt.get_duration_ms("g", 99), 0);
  EXPECT_EQ(opt.get_duration_ms("absent", 42), 42);
}

TEST(Options, DurationRejectsJunkAndNegatives) {
  const auto opt = parse({"--a", "5x", "--b", "-1s", "--c", "ms",
                          "--d", "1 h"});
  EXPECT_EQ(opt.get_duration_ms("a", 7), 7);
  EXPECT_EQ(opt.get_duration_ms("b", 7), 7);
  EXPECT_EQ(opt.get_duration_ms("c", 7), 7);
  EXPECT_EQ(opt.get_duration_ms("d", 7), 7);
}

TEST(Catalog, PaperVariantsAreTheSixRows) {
  const auto& ids = harness::paper_variant_ids();
  ASSERT_EQ(ids.size(), 6u);
  EXPECT_EQ(harness::variant_letter(ids[0]), "a");
  EXPECT_EQ(harness::variant_letter(ids[5]), "f");
  EXPECT_EQ(harness::figure_variant_ids().size(), 5u);
  EXPECT_EQ(harness::variant_letter("nonsense"), "-");
}

TEST(Catalog, EveryIdConstructsAWorkingSet) {
  for (const auto id : harness::all_variant_ids()) {
    auto set = harness::make_set(id);
    ASSERT_NE(set, nullptr) << id;
    EXPECT_EQ(set->name(), id);
    auto h = set->make_handle();
    EXPECT_TRUE(h->add(1));
    EXPECT_TRUE(h->add(2));
    EXPECT_FALSE(h->add(1));
    EXPECT_TRUE(h->contains(2));
    EXPECT_TRUE(h->remove(1));
    EXPECT_EQ(set->size(), 1u);
    std::string err;
    EXPECT_TRUE(set->validate(&err)) << id << ": " << err;
  }
}

TEST(Rng, DeterministicAndSeedSplit) {
  workload::Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  bool differs = false;
  for (int i = 0; i < 100; ++i) differs |= (a() != c());
  EXPECT_TRUE(differs);
  EXPECT_NE(workload::thread_seed(42, 0), workload::thread_seed(42, 1));
  EXPECT_EQ(workload::thread_seed(42, 3), workload::thread_seed(42, 3));
}

TEST(Rng, BelowStaysInRange) {
  workload::Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Distributions, UniformCoversTheUniverse) {
  workload::Rng rng(9);
  const workload::UniformKeys keys(32);
  std::vector<int> seen(32, 0);
  for (int i = 0; i < 20000; ++i) {
    const long k = keys(rng);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 32);
    ++seen[static_cast<std::size_t>(k)];
  }
  for (int i = 0; i < 32; ++i) EXPECT_GT(seen[i], 0) << "key " << i;
}

TEST(Distributions, ZipfIsSkewedAndInRange) {
  workload::Rng rng(11);
  const workload::ZipfKeys keys(1024, 0.99);
  long hot = 0;
  for (int i = 0; i < 20000; ++i) {
    const long k = keys(rng);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 1024);
    hot += (k == 0);
  }
  // Rank 1 of zipf(0.99) over 1024 keys carries ~13% of the mass;
  // uniform would give ~0.1%.
  EXPECT_GT(hot, 20000 / 50);
}

TEST(OpMix, PercentagesAreRespected) {
  workload::Rng rng(13);
  const workload::OpMix mix{25, 25, 40, 10};
  int add = 0, rem = 0, con = 0, scan = 0;
  for (int i = 0; i < 40000; ++i) {
    switch (mix.pick(rng)) {
      case workload::OpKind::kAdd: ++add; break;
      case workload::OpKind::kRemove: ++rem; break;
      case workload::OpKind::kContains: ++con; break;
      case workload::OpKind::kScan: ++scan; break;
    }
  }
  EXPECT_NEAR(add, 10000, 600);
  EXPECT_NEAR(rem, 10000, 600);
  EXPECT_NEAR(con, 16000, 800);
  EXPECT_NEAR(scan, 4000, 400);
  EXPECT_EQ(workload::kTableMix.con_pct, 80);
  EXPECT_EQ(workload::kScalingMix.add_pct, 25);
  // The paper mixes never scan; their streams stay golden.
  EXPECT_EQ(workload::kTableMix.scan_pct, 0);
  EXPECT_EQ(workload::kScalingMix.scan_pct, 0);
}

TEST(Schedule, SameAndDisjointKeys) {
  using workload::KeySchedule;
  EXPECT_EQ(workload::schedule_key(KeySchedule::kSameKeys, 3, 17, 8), 17);
  EXPECT_EQ(workload::schedule_key(KeySchedule::kDisjointKeys, 3, 17, 8),
            3 + 17 * 8);
}

TEST(Stats, SummarizeBasics) {
  const auto s = harness::summarize({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
  EXPECT_EQ(s.n, 3u);
  EXPECT_TRUE(s.stddev_defined());
}

TEST(Stats, SummarizeSmallSamples) {
  // Empty: nothing is defined; stddev is NaN, not a fake 0.0.
  const auto none = harness::summarize({});
  EXPECT_EQ(none.n, 0u);
  EXPECT_FALSE(none.stddev_defined());
  EXPECT_TRUE(std::isnan(none.stddev));

  // One sample: mean/min/max are the sample, but a single observation
  // has no spread -- stddev must be NaN (flagged), never 0.0, so a
  // caller cannot mistake "no information" for "perfectly stable".
  const auto one = harness::summarize({5.0});
  EXPECT_EQ(one.n, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 5.0);
  EXPECT_DOUBLE_EQ(one.min, 5.0);
  EXPECT_DOUBLE_EQ(one.max, 5.0);
  EXPECT_FALSE(one.stddev_defined());
  EXPECT_TRUE(std::isnan(one.stddev));

  // Two samples: the smallest n where spread exists (sample stddev,
  // n-1 denominator): {1,3} -> sqrt(2).
  const auto two = harness::summarize({1.0, 3.0});
  EXPECT_EQ(two.n, 2u);
  EXPECT_DOUBLE_EQ(two.mean, 2.0);
  EXPECT_TRUE(two.stddev_defined());
  EXPECT_DOUBLE_EQ(two.stddev, std::sqrt(2.0));
}

TEST(Table, SummaryCellsRenderEmDashNotNanWhenSpreadIsUndefined) {
  // n < 2: stddev is NaN by design, but nothing downstream may print
  // "nan" -- the table shows an em dash and the CSV leaves the stddev
  // field empty (distinguishable from a real 0.0).
  const auto one = harness::summarize({12.34});
  EXPECT_EQ(harness::summary_cell(one, 1), "12.3 —");
  EXPECT_EQ(harness::stddev_cell(one, 1), "—");
  EXPECT_EQ(harness::summary_csv_fields(one, 1), "12.3,");

  // n >= 2: spread exists, rendered as +-value at the asked precision.
  const auto two = harness::summarize({1.0, 3.0});  // stddev sqrt(2)
  EXPECT_EQ(harness::summary_cell(two, 2), "2.00 ±1.41");
  EXPECT_EQ(harness::stddev_cell(two, 2), "±1.41");
  EXPECT_EQ(harness::summary_csv_fields(two, 2), "2.00,1.41");

  // The empty summary (no samples at all) renders the dash too, never
  // "nan" for the mean's neighbour.
  const auto none = harness::summarize({});
  EXPECT_EQ(harness::stddev_cell(none, 1), "—");
  EXPECT_EQ(harness::summary_csv_fields(none, 0).back(), ',');
}

TEST(Table, RendersRowsAndCsv) {
  harness::RunResult r;
  r.ms = 12.5;
  r.agg.adds = 10;
  r.agg.add_calls = 12;
  r.total_ops = 12;
  const std::vector<harness::TableRow> rows = {{"a) draconic", r}};
  std::ostringstream table;
  harness::print_paper_table(table, "title", rows);
  EXPECT_NE(table.str().find("a) draconic"), std::string::npos);
  EXPECT_NE(table.str().find("title"), std::string::npos);
  std::ostringstream csv;
  harness::write_csv(csv, rows);
  EXPECT_NE(csv.str().find("variant,ms,ops"), std::string::npos);
  EXPECT_NE(csv.str().find("a) draconic,12.5,12"), std::string::npos);
}

TEST(OpCounters, Aggregation) {
  core::OpCounters a, b;
  a.adds = 1;
  a.add_calls = 2;
  b.rems = 3;
  b.rem_calls = 4;
  b.con_calls = 5;
  a += b;
  EXPECT_EQ(a.adds, 1);
  EXPECT_EQ(a.rems, 3);
  EXPECT_EQ(a.total_ops(), 11);
}

}  // namespace
}  // namespace pragmalist
