// Tier-1 units for the service-mode subsystem:
//  * soak-schedule determinism -- golden join/leave sequences for every
//    schedule kind (the soak harness's thread dynamics are pure
//    integer arithmetic and must never drift across platforms), plus
//    range/shape properties over a parameter sweep;
//  * EBR epoch-bucket lifecycle -- nothing frees earlier than two
//    epochs after retirement, a pinned straggler blocks the horizon,
//    bag rotation frees a stale same-residue bag on reuse, and a
//    departing handle's young limbo is adopted from the orphan pool;
//  * EBR adaptive collect cadence -- the trigger threshold backs off
//    exponentially (capped) while the horizon is stalled, re-arms the
//    moment the epoch moves, and tracks the handle's EWMA retire rate
//    once passes are productive;
//  * HP slot re-lease -- a departed handle's cursor-cell protection
//    does not leak into the next lease, and its orphaned retirees are
//    adopted and freed by survivors;
//  * DynamicTeam -- arrivals get fresh never-reused ids, resize joins
//    departures before returning.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/list_base.hpp"
#include "src/harness/thread_team.hpp"
#include "src/reclaim/reclaim.hpp"
#include "src/service/schedule.hpp"

namespace pragmalist {
namespace {

using service::SoakSchedule;
using service::thread_target;

std::vector<int> sequence(SoakSchedule s, int ticks, int p) {
  std::vector<int> seq;
  for (int i = 0; i < ticks; ++i)
    seq.push_back(thread_target(s, i, ticks, p));
  return seq;
}

// --- schedule determinism -------------------------------------------

TEST(SoakSchedule, GoldenSteady) {
  EXPECT_EQ(sequence(SoakSchedule::kSteady, 12, 8),
            (std::vector<int>{8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8}));
}

TEST(SoakSchedule, GoldenRamp) {
  // Odd tick count: the midpoint hits the full pool exactly.
  EXPECT_EQ(sequence(SoakSchedule::kRamp, 13, 8),
            (std::vector<int>{1, 2, 3, 5, 6, 7, 8, 7, 6, 5, 3, 2, 1}));
}

TEST(SoakSchedule, GoldenBurst) {
  EXPECT_EQ(sequence(SoakSchedule::kBurst, 12, 8),
            (std::vector<int>{8, 8, 2, 2, 2, 2, 2, 2, 8, 8, 2, 2}));
}

TEST(SoakSchedule, GoldenWaves) {
  EXPECT_EQ(sequence(SoakSchedule::kWaves, 12, 8),
            (std::vector<int>{4, 4, 4, 4, 8, 8, 8, 8, 4, 4, 4, 4}));
}

TEST(SoakSchedule, GoldenStragglers) {
  // Ramp to the full pool over two thirds, then mass departure down to
  // one long-lived straggler.
  EXPECT_EQ(sequence(SoakSchedule::kStragglers, 12, 8),
            (std::vector<int>{2, 3, 4, 5, 6, 7, 8, 8, 1, 1, 1, 1}));
}

TEST(SoakSchedule, TargetsAlwaysWithinPoolBounds) {
  for (const SoakSchedule s :
       {SoakSchedule::kSteady, SoakSchedule::kRamp, SoakSchedule::kBurst,
        SoakSchedule::kWaves, SoakSchedule::kStragglers}) {
    for (int ticks = 1; ticks <= 40; ++ticks) {
      for (int p = 1; p <= 12; ++p) {
        for (int i = 0; i < ticks; ++i) {
          const int t = thread_target(s, i, ticks, p);
          ASSERT_GE(t, 1) << service::soak_schedule_name(s) << " tick " << i;
          ASSERT_LE(t, p) << service::soak_schedule_name(s) << " tick " << i;
        }
      }
    }
  }
}

TEST(SoakSchedule, RampIsUnimodalAndReachesBothEnds) {
  const auto seq = sequence(SoakSchedule::kRamp, 21, 8);
  EXPECT_EQ(seq.front(), 1);
  EXPECT_EQ(seq.back(), 1);
  EXPECT_EQ(seq[10], 8);  // midpoint hits the pool maximum
  for (int i = 1; i <= 10; ++i) EXPECT_GE(seq[i], seq[i - 1]) << i;
  for (int i = 11; i < 21; ++i) EXPECT_LE(seq[i], seq[i - 1]) << i;
}

TEST(SoakSchedule, NamesRoundTrip) {
  for (const SoakSchedule s :
       {SoakSchedule::kSteady, SoakSchedule::kRamp, SoakSchedule::kBurst,
        SoakSchedule::kWaves, SoakSchedule::kStragglers})
    EXPECT_EQ(service::parse_soak_schedule(service::soak_schedule_name(s)),
              s);
}

// --- EBR epoch-bucket lifecycle -------------------------------------

/// Node whose destructor reports into a shared counter, so the tests
/// observe exactly when the policy frees.
struct CountingNode {
  explicit CountingNode(std::atomic<int>* f) : freed(f) {}
  ~CountingNode() { freed->fetch_add(1, std::memory_order_relaxed); }
  std::atomic<int>* freed;
  CountingNode* reg_next = nullptr;  // for the HP orphan stack
};

TEST(EbrBuckets, NothingFreesEarlierThanTwoEpochs) {
  std::atomic<int> freed{0};
  reclaim::Ebr<CountingNode> d;
  auto h = d.make_handle();
  auto* n = new CountingNode(&freed);
  d.track(n);

  const std::uint64_t e0 = d.epoch();
  {
    auto g = h.guard();
    h.retire(n);
  }
  EXPECT_EQ(freed.load(), 0);
  EXPECT_EQ(d.limbo_nodes(), 1u);
  EXPECT_EQ(h.limbo_size(), 1u);

  h.collect();  // advances to e0+1: one epoch past retirement, too soon
  EXPECT_EQ(d.epoch(), e0 + 1);
  EXPECT_EQ(freed.load(), 0);

  h.collect();  // advances to e0+2: the grace period has passed
  EXPECT_EQ(d.epoch(), e0 + 2);
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(d.limbo_nodes(), 0u);
  EXPECT_EQ(h.limbo_size(), 0u);
}

TEST(EbrBuckets, PinnedStragglerBlocksTheHorizon) {
  std::atomic<int> freed{0};
  reclaim::Ebr<CountingNode> d;
  auto h1 = d.make_handle();
  auto h2 = d.make_handle();
  auto* n = new CountingNode(&freed);
  d.track(n);
  {
    auto straggler = h2.guard();  // pins h2 at the current epoch
    {
      auto g = h1.guard();
      h1.retire(n);
    }
    for (int i = 0; i < 10; ++i) h1.collect();
    // The straggler's pin caps min_pinned_epoch at the retire epoch,
    // so no amount of collecting may free the node.
    EXPECT_EQ(freed.load(), 0);
    EXPECT_EQ(d.limbo_nodes(), 1u);
  }
  h1.collect();
  h1.collect();
  EXPECT_EQ(freed.load(), 1);
}

TEST(EbrBuckets, SameResidueBagIsFreedWholeOnRotation) {
  std::atomic<int> freed{0};
  reclaim::Ebr<CountingNode> d;
  auto h1 = d.make_handle();  // only retires, never collects
  auto h2 = d.make_handle();  // only advances the epoch
  auto* n0 = new CountingNode(&freed);
  d.track(n0);
  {
    auto g = h1.guard();
    h1.retire(n0);
  }
  // Advance the global epoch a full rotation without touching h1.
  for (int i = 0; i < reclaim::Ebr<CountingNode>::kBags; ++i) h2.collect();
  EXPECT_EQ(freed.load(), 0);  // h1's bag was never scanned

  // h1's next retire lands on the same bucket residue; the stale bag
  // (three epochs old, past the grace period) is freed whole first.
  auto* n1 = new CountingNode(&freed);
  d.track(n1);
  {
    auto g = h1.guard();
    h1.retire(n1);
  }
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(h1.limbo_size(), 1u);  // only n1 remains
}

TEST(EbrBuckets, FreesTrailRetirementsByExactlyTwoEpochs) {
  std::atomic<int> freed{0};
  reclaim::Ebr<CountingNode> d;
  auto h = d.make_handle();
  for (int k = 0; k < 6; ++k) {
    auto* n = new CountingNode(&freed);
    d.track(n);
    {
      auto g = h.guard();
      h.retire(n);
    }
    h.collect();  // advances one epoch, then frees what is two behind
    EXPECT_EQ(freed.load(), k) << "after retire+collect " << k;
  }
}

TEST(EbrBuckets, DepartingHandlesLimboIsAdoptedBySurvivors) {
  std::atomic<int> freed{0};
  reclaim::Ebr<CountingNode> d;
  auto survivor = d.make_handle();
  {
    auto h = d.make_handle();
    auto* n = new CountingNode(&freed);
    d.track(n);
    {
      auto g = h.guard();
      h.retire(n);
    }
    // h departs with the node too young to free: it must land in the
    // orphan pool, still counted as limbo.
  }
  EXPECT_EQ(freed.load(), 0);
  EXPECT_EQ(d.limbo_nodes(), 1u);
  for (int i = 0; i < 3; ++i) survivor.collect();
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(d.limbo_nodes(), 0u);
}

// --- EBR adaptive collect cadence ------------------------------------

using EbrCounting = reclaim::Ebr<CountingNode>;

std::vector<CountingNode*> retire_n(EbrCounting& d,
                                    EbrCounting::Handle& h, int n,
                                    std::atomic<int>* freed) {
  std::vector<CountingNode*> nodes;
  for (int i = 0; i < n; ++i) {
    auto* node = new CountingNode(freed);
    d.track(node);
    h.retire(node);
    nodes.push_back(node);
  }
  return nodes;
}

TEST(EbrAdaptiveCadence, ThresholdBacksOffWhileHorizonStalledAndCaps) {
  std::atomic<int> freed{0};
  EbrCounting d;
  auto h1 = d.make_handle();
  auto h2 = d.make_handle();
  EXPECT_EQ(h1.collect_threshold(), EbrCounting::kRetireThreshold);

  {
    auto straggler = h2.guard();  // pins the horizon at the current epoch
    retire_n(d, h1, 5000, &freed);
    // Every pass is futile (nothing is two epochs past a pinned
    // horizon) over above-threshold limbo: the trigger must double
    // each time and stop at the cap, never exceed it.
    std::size_t prev = h1.collect_threshold();
    while (h1.collect_threshold() < EbrCounting::kCollectThresholdMax) {
      h1.collect();
      EXPECT_EQ(freed.load(), 0);
      EXPECT_EQ(h1.collect_threshold(),
                std::min(EbrCounting::kCollectThresholdMax, prev * 2));
      prev = h1.collect_threshold();
    }
    h1.collect();  // still futile, already at the cap
    EXPECT_EQ(h1.collect_threshold(), EbrCounting::kCollectThresholdMax);
    EXPECT_EQ(freed.load(), 0);
  }

  // Stall over: two passes move the horizon two epochs past the
  // retirements, everything drains, and the trigger re-anchors to the
  // (decayed) rate instead of staying ballooned.
  h1.collect();
  h1.collect();
  EXPECT_EQ(freed.load(), 5000);
  EXPECT_GE(h1.collect_threshold(), EbrCounting::kRetireThreshold);
  EXPECT_LT(h1.collect_threshold(), EbrCounting::kCollectThresholdMax);
}

TEST(EbrAdaptiveCadence, EpochMovementRearmsTheCollectTrigger) {
  std::atomic<int> freed{0};
  EbrCounting d;
  auto h1 = d.make_handle();
  auto h2 = d.make_handle();

  retire_n(d, h1, 200, &freed);
  EXPECT_TRUE(h1.collect_due());  // past the base threshold
  h1.collect();                   // futile: retirees one epoch young
  EXPECT_EQ(freed.load(), 0);
  EXPECT_EQ(h1.collect_threshold(), 2 * EbrCounting::kRetireThreshold);
  // Below the backed-off trigger and the epoch has not moved since the
  // pass: no re-scan (this is the futile-pass cost the backoff cuts).
  EXPECT_FALSE(h1.collect_due());

  h2.collect();  // another handle advances the global epoch
  EXPECT_TRUE(h1.collect_due()) << "epoch moved: the spike must drain now";
  h1.collect();
  EXPECT_EQ(freed.load(), 200);
  EXPECT_EQ(h1.collect_threshold(), EbrCounting::kRetireThreshold);
}

TEST(EbrAdaptiveCadence, ThresholdTracksTheRetireRate) {
  std::atomic<int> freed{0};
  EbrCounting d;
  auto h = d.make_handle();
  // Ten rounds of retire-1000-then-collect: the EWMA converges toward
  // the per-pass rate, so the trigger lands near 1000 -- proportional
  // to the handle's recent retire rate, clamped to [base, cap].
  for (int round = 0; round < 10; ++round) {
    retire_n(d, h, 1000, &freed);
    h.collect();
  }
  EXPECT_GT(freed.load(), 5000);  // passes were productive
  EXPECT_GE(h.collect_threshold(), 600u);
  EXPECT_LE(h.collect_threshold(), 1100u);
}

// --- HP slot re-lease ------------------------------------------------

TEST(HpSlotReuse, DepartedCursorProtectionDoesNotLeakIntoNextLease) {
  std::atomic<int> freed{0};
  reclaim::Hp<CountingNode> d;
  auto* n = new CountingNode(&freed);
  d.track(n);
  {
    auto h1 = d.make_handle();
    h1.protect(core::hazard::kCursor, n);  // persistent cursor cell
    h1.retire(n);
    h1.collect();
    // Our own cursor cell protects the retiree: scan must keep it.
    EXPECT_EQ(freed.load(), 0);
    EXPECT_EQ(d.limbo_nodes(), 1u);
    // h1 departs: survivors get the orphan, the cell is cleared.
  }
  auto h2 = d.make_handle();
  h2.collect();  // adopts the orphan; no cell protects it any more
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(d.limbo_nodes(), 0u);
}

TEST(HpSlotReuse, HandleChurnBeyondSlotCountStaysBounded) {
  std::atomic<int> freed{0};
  reclaim::Hp<CountingNode> d;
  // Far more arrivals than the 256-slot table: every departure must
  // re-lease a slot and hand its garbage over, or this aborts/leaks.
  constexpr int kCycles = 300;
  for (int i = 0; i < kCycles; ++i) {
    auto h = d.make_handle();
    auto* n = new CountingNode(&freed);
    d.track(n);
    h.protect(0, n);
    h.retire(n);
  }
  // Each departure's scan freed the previous orphans; at most the last
  // handle's self-protected node is still in limbo.
  EXPECT_GE(freed.load(), kCycles - 1);
  EXPECT_LE(d.limbo_nodes(), 1u);
  auto h = d.make_handle();
  h.collect();
  EXPECT_EQ(freed.load(), kCycles);
  EXPECT_EQ(d.limbo_nodes(), 0u);
}

// --- DynamicTeam -----------------------------------------------------

TEST(DynamicTeam, ResizeJoinsDeparturesAndNeverReusesIds) {
  std::atomic<int> live{0};
  std::mutex ids_mu;
  std::vector<int> ids;
  harness::DynamicTeam team(
      [&](int id, const std::atomic<bool>& stop) {
        {
          std::lock_guard<std::mutex> lock(ids_mu);
          ids.push_back(id);
        }
        live.fetch_add(1, std::memory_order_acq_rel);
        while (!stop.load(std::memory_order_acquire))
          std::this_thread::yield();
        live.fetch_sub(1, std::memory_order_acq_rel);
      },
      /*pin=*/false);

  team.resize(3);
  EXPECT_EQ(team.size(), 3);
  EXPECT_EQ(team.arrivals(), 3);

  team.resize(1);  // joins the two newest workers before returning
  EXPECT_EQ(team.size(), 1);
  // The survivor may still be starting up; only the departed two are
  // guaranteed gone (their exit is joined), so live is 0 or 1.
  EXPECT_LE(live.load(), 1);

  team.resize(4);
  EXPECT_EQ(team.size(), 4);
  EXPECT_EQ(team.arrivals(), 6);  // departed ids are never reused

  team.resize(0);
  EXPECT_EQ(live.load(), 0);
  {
    std::lock_guard<std::mutex> lock(ids_mu);
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(ids, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  }
}

}  // namespace
}  // namespace pragmalist
