// Cursor regression: the cursor is a performance hint and must never
// change set semantics. Drive every cursor-augmented lock-free list
// through single-handle schedules (ascending build first -- the pattern
// where the cursor actually short-circuits -- then mixed churn) and
// demand op-for-op result equality with the SequentialCursorList
// oracle; also cross-check two independent handles whose cursors
// diverge on the same shared list.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/workload/rng.hpp"
#include "tests/test_util.hpp"

namespace pragmalist {
namespace {

template <typename List>
class CursorSemantics : public ::testing::Test {};

using CursorLists =
    ::testing::Types<core::SinglyCursorList, core::SinglyFetchOrList,
                     core::DoublyCursorList, core::DoublyCursorNoPrecList,
                     core::SinglyCursorBackoffList>;
TYPED_TEST_SUITE(CursorSemantics, CursorLists);

TYPED_TEST(CursorSemantics, AscendingBuildMatchesOracle) {
  TypeParam list;
  auto h = list.make_handle();
  baselines::SequentialCursorList oracle;

  for (long k = 0; k < 500; ++k) {
    ASSERT_EQ(h.add(k), oracle.add(k)) << "add " << k;
    // Re-adding the key the cursor sits on must still be rejected.
    ASSERT_EQ(h.add(k), oracle.add(k)) << "re-add " << k;
    // Membership probes around the cursor position.
    ASSERT_EQ(h.contains(k), oracle.contains(k));
    ASSERT_EQ(h.contains(k + 1), oracle.contains(k + 1));
  }
  EXPECT_EQ(list.snapshot(), oracle.snapshot());
  std::string err;
  EXPECT_TRUE(list.validate(&err)) << err;
}

TYPED_TEST(CursorSemantics, MixedScheduleMatchesOracle) {
  TypeParam list;
  auto h = list.make_handle();
  baselines::SequentialCursorList oracle;
  workload::Rng rng(4242);

  for (int i = 0; i < 6000; ++i) {
    const long k = static_cast<long>(rng.below(128));
    switch (rng.below(3)) {
      case 0:
        ASSERT_EQ(h.add(k), oracle.add(k)) << "op " << i << " add " << k;
        break;
      case 1:
        ASSERT_EQ(h.remove(k), oracle.remove(k))
            << "op " << i << " remove " << k;
        break;
      default:
        ASSERT_EQ(h.contains(k), oracle.contains(k))
            << "op " << i << " contains " << k;
        break;
    }
  }
  EXPECT_EQ(list.snapshot(), oracle.snapshot());
  EXPECT_EQ(list.size(), oracle.size());
}

// Two handles on one list have independent cursors; interleaving them
// (one walking up, one walking down) must not perturb semantics.
TYPED_TEST(CursorSemantics, TwoHandlesWithDivergentCursors) {
  TypeParam list;
  auto up = list.make_handle();
  auto down = list.make_handle();
  baselines::SequentialCursorList oracle;

  for (long k = 0; k < 200; ++k) {
    const long hi = 399 - k;
    ASSERT_EQ(up.add(k), oracle.add(k));
    ASSERT_EQ(down.add(hi), oracle.add(hi));
  }
  EXPECT_EQ(list.size(), 400u);
  for (long k = 0; k < 200; ++k) {
    const long hi = 399 - k;
    ASSERT_EQ(up.remove(k), oracle.remove(k));
    ASSERT_EQ(down.contains(k), oracle.contains(k));
    ASSERT_EQ(down.remove(hi), oracle.remove(hi));
    ASSERT_EQ(up.contains(hi), oracle.contains(hi));
  }
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.snapshot(), oracle.snapshot());
  std::string err;
  EXPECT_TRUE(list.validate(&err)) << err;
}

}  // namespace
}  // namespace pragmalist
