// Deterministic unit tests for the unrolled fat-node engine
// (src/core/unrolled_family.hpp, K = 8 sorted keys per node): split
// and merge exactly at the K boundaries, duplicate rejection inside a
// fat node, ascend paging that resumes mid-node, and scan emission
// that stays strictly ascending across node splits. Single-threaded
// by design -- the node-count transitions below are only well-defined
// on a deterministic schedule; the concurrent story is covered by the
// linearizability / churn / fault tiers via the catalog ids.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "src/core/unrolled_family.hpp"
#include "tests/test_util.hpp"

namespace pragmalist {
namespace {

// K and the derived thresholds under test (kept in sync with the
// engine's constants by the static_asserts in the family header).
constexpr int kK = 8;
constexpr int kSplitKeep = (kK + 1) / 2;       // 4 keys stay left
constexpr int kMergeCount = kK / 4;            // shrink-below trigger
constexpr int kMergeCombined = kK / 2;         // both-fit ceiling

template <typename List>
void expect_valid(const List& list) {
  std::string err;
  EXPECT_TRUE(list.validate(&err)) << err;
}

using ListTypes = ::testing::Types<core::UnrolledK8List,
                                   core::UnrolledK8ListEbr,
                                   core::UnrolledK8ListHp>;

template <typename List>
class UnrolledNode : public ::testing::Test {};
TYPED_TEST_SUITE(UnrolledNode, ListTypes);

TYPED_TEST(UnrolledNode, SplitAtExactlyKPlusOneKeys) {
  TypeParam list;
  auto h = list.make_handle();
  // K keys fit one fat node.
  for (long k = 0; k < kK; ++k) ASSERT_TRUE(h.add(k));
  EXPECT_EQ(list.live_node_count(), 1u);
  // Key K+1 overflows it: split-right, kSplitKeep keys stay in the
  // left node, the rest move to a fresh sibling.
  ASSERT_TRUE(h.add(kK));
  EXPECT_EQ(list.live_node_count(), 2u);
  EXPECT_EQ(list.size(), static_cast<std::size_t>(kK + 1));
  expect_valid(list);
  // Every key is still present and ordered across the split.
  std::vector<long> expect(kK + 1);
  std::iota(expect.begin(), expect.end(), 0L);
  EXPECT_EQ(list.snapshot(), expect);
}

TYPED_TEST(UnrolledNode, SplitKeepsInsertPositionCorrect) {
  // Overflow via a key that lands in the *middle* of a full node: the
  // split merge-loop must weave it into the right half/left half at
  // the correct sorted position.
  for (long probe = 0; probe <= kK; ++probe) {
    TypeParam list;
    auto h = list.make_handle();
    std::vector<long> expect;
    for (long k = 0; k < kK; ++k) {
      const long key = 2 * k + (2 * k >= 2 * probe ? 2 : 0);
      ASSERT_TRUE(h.add(key));
      expect.push_back(key);
    }
    ASSERT_TRUE(h.add(2 * probe + 1));  // forces the split
    expect.push_back(2 * probe + 1);
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(list.snapshot(), expect) << "probe " << probe;
    EXPECT_EQ(list.live_node_count(), 2u);
    expect_valid(list);
  }
}

TYPED_TEST(UnrolledNode, MergeLeftAtBoundary) {
  TypeParam list;
  auto h = list.make_handle();
  // 0..8 -> split: A{0,1,2,3} anchor 0, B{4..8} anchor 4.
  for (long k = 0; k <= kK; ++k) ASSERT_TRUE(h.add(k));
  ASSERT_EQ(list.live_node_count(), 2u);
  // Shrink B first (no merge: B has no successor to absorb).
  ASSERT_TRUE(h.remove(4));
  ASSERT_TRUE(h.remove(5));
  ASSERT_TRUE(h.remove(6));
  EXPECT_EQ(list.live_node_count(), 2u);
  // Now shrink A to kMergeCount: combined 2 + 2 = 4 <= kMergeCombined,
  // so A absorbs B and B is unlinked.
  ASSERT_TRUE(h.remove(0));
  ASSERT_TRUE(h.remove(1));
  EXPECT_EQ(list.live_node_count(), 1u);
  EXPECT_EQ(list.snapshot(), (std::vector<long>{2, 3, 7, 8}));
  expect_valid(list);
  static_assert(kMergeCount == 2 && kMergeCombined == 4,
                "scenario hand-built for K=8 thresholds");
}

TYPED_TEST(UnrolledNode, NoMergeWhenCombinedWouldOverflow) {
  TypeParam list;
  auto h = list.make_handle();
  // A{0..3}, B{4..8}: shrink A to 2 keys while B keeps 5 -- combined 7
  // exceeds kMergeCombined, so both nodes must survive.
  for (long k = 0; k <= kK; ++k) ASSERT_TRUE(h.add(k));
  ASSERT_TRUE(h.remove(0));
  ASSERT_TRUE(h.remove(1));
  EXPECT_EQ(list.live_node_count(), 2u);
  EXPECT_EQ(list.size(), 7u);
  expect_valid(list);
}

TYPED_TEST(UnrolledNode, EmptiedNodeIsUnlinked) {
  TypeParam list;
  auto h = list.make_handle();
  for (long k = 0; k <= kK; ++k) ASSERT_TRUE(h.add(k));
  ASSERT_EQ(list.live_node_count(), 2u);
  // Drain B{4..8} completely: the node marks itself empty and the
  // remover sweeps it out.
  for (long k = 4; k <= kK; ++k) ASSERT_TRUE(h.remove(k));
  EXPECT_EQ(list.live_node_count(), 1u);
  EXPECT_EQ(list.snapshot(), (std::vector<long>{0, 1, 2, 3}));
  expect_valid(list);
  // The emptied anchor is re-addable; coverage re-routes to A.
  EXPECT_TRUE(h.add(4));
  EXPECT_TRUE(h.contains(4));
}

TYPED_TEST(UnrolledNode, DuplicateRejectedInsideFatNode) {
  TypeParam list;
  auto h = list.make_handle();
  for (long k = 0; k < kK; ++k) ASSERT_TRUE(h.add(2 * k));
  ASSERT_EQ(list.live_node_count(), 1u);
  // Duplicates at the front, middle and back of one node's cells: all
  // rejected without splitting, without changing the count.
  EXPECT_FALSE(h.add(0));
  EXPECT_FALSE(h.add(2 * (kK / 2)));
  EXPECT_FALSE(h.add(2 * (kK - 1)));
  EXPECT_EQ(list.size(), static_cast<std::size_t>(kK));
  EXPECT_EQ(list.live_node_count(), 1u);
  // And across a split boundary: both halves still reject.
  ASSERT_TRUE(h.add(1));  // forces the split
  EXPECT_FALSE(h.add(1));
  EXPECT_FALSE(h.add(2 * (kK - 1)));
  EXPECT_EQ(list.size(), static_cast<std::size_t>(kK + 1));
  expect_valid(list);
}

TYPED_TEST(UnrolledNode, AscendPagesResumeMidNode) {
  TypeParam list;
  auto h = list.make_handle();
  const long n = 40;  // several fat nodes
  for (long k = 0; k < n; ++k) ASSERT_TRUE(h.add(k));
  // Page through with limits that never align with node boundaries
  // (3 and 5 vs node counts of 4..8): every resume lands mid-node.
  for (const std::size_t page : {std::size_t{3}, std::size_t{5}}) {
    std::vector<long> got;
    long from = std::numeric_limits<long>::min();
    for (;;) {
      const auto chunk = h.ascend(from, page);
      got.insert(got.end(), chunk.begin(), chunk.end());
      if (chunk.size() < page) break;
      from = chunk.back() + 1;
    }
    std::vector<long> expect(n);
    std::iota(expect.begin(), expect.end(), 0L);
    EXPECT_EQ(got, expect) << "page " << page;
  }
  // A page starting strictly inside a node emits only the tail of
  // that node's cells.
  const auto tail = h.ascend(2, 2);
  EXPECT_EQ(tail, (std::vector<long>{2, 3}));
}

TYPED_TEST(UnrolledNode, ScanStrictlyAscendingAcrossSplits) {
  TypeParam list;
  auto h = list.make_handle();
  // Insert in an order that splits repeatedly and leaves keys woven
  // across many nodes: evens first, then odds (each odd lands inside
  // an existing full-ish node).
  std::vector<long> expect;
  for (long k = 0; k < 64; k += 2) ASSERT_TRUE(h.add(k));
  for (long k = 1; k < 64; k += 2) ASSERT_TRUE(h.add(k));
  for (long k = 0; k < 64; ++k) expect.push_back(k);
  EXPECT_GE(list.live_node_count(), 8u);

  std::vector<long> got;
  long prev = std::numeric_limits<long>::min();
  const long emitted =
      h.range_scan(std::numeric_limits<long>::min(),
                   std::numeric_limits<long>::max(), [&](long k) {
                     EXPECT_GT(k, prev) << "scan emitted out of order";
                     prev = k;
                     got.push_back(k);
                   });
  EXPECT_EQ(emitted, 64);
  EXPECT_EQ(got, expect);
  // Bounded sub-range across node boundaries.
  got.clear();
  h.range_scan(13, 42, [&](long k) { got.push_back(k); });
  std::vector<long> mid;
  for (long k = 13; k <= 42; ++k) mid.push_back(k);
  EXPECT_EQ(got, mid);
  expect_valid(list);
}

TYPED_TEST(UnrolledNode, ExtremeKeysAreRejectedOrAbsent) {
  TypeParam list;
  auto h = list.make_handle();
  // LONG_MIN is the anchor/empty-cell sentinel and LONG_MAX is the
  // route(key + 1) guard: both stay outside the key universe.
  EXPECT_FALSE(h.contains(std::numeric_limits<long>::min()));
  EXPECT_FALSE(h.remove(std::numeric_limits<long>::min()));
  EXPECT_FALSE(h.contains(std::numeric_limits<long>::max()));
  EXPECT_FALSE(h.remove(std::numeric_limits<long>::max()));
}

}  // namespace
}  // namespace pragmalist
