// Concurrent stress: disjoint-range ownership must leave exactly the
// expected set; same-key hammering must preserve validate() and the
// OpCounters population ledger; the deterministic driver must drain
// every catalog structure to empty.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/harness/catalog.hpp"
#include "src/harness/drivers.hpp"
#include "src/harness/thread_team.hpp"
#include "src/workload/op_mix.hpp"
#include "src/workload/rng.hpp"

namespace pragmalist {
namespace {

constexpr int kThreads = 4;

class EveryVariant : public ::testing::TestWithParam<std::string_view> {};

INSTANTIATE_TEST_SUITE_P(
    Catalog, EveryVariant,
    ::testing::ValuesIn(harness::all_variant_ids()),
    [](const ::testing::TestParamInfo<std::string_view>& info) {
      std::string name(info.param);
      for (char& c : name)        // "singly/ebr" -> "singly_ebr": gtest
        if (c == '/') c = '_';    // names must be alphanumeric
      return name;
    });

// N threads, disjoint key ranges, partial removes: the survivors must
// be exactly the union of what each thread kept.
TEST_P(EveryVariant, DisjointRangesLeaveExpectedSet) {
  auto set = harness::make_set(GetParam());
  constexpr long kPerThread = 400;
  harness::run_team(
      kThreads,
      [&](int t) {
        auto h = set->make_handle();
        const long base = t * kPerThread;
        for (long i = 0; i < kPerThread; ++i)
          ASSERT_TRUE(h->add(base + i));
        for (long i = 0; i < kPerThread; i += 2)  // drop the evens
          ASSERT_TRUE(h->remove(base + i));
      },
      /*pin=*/false);

  std::string err;
  ASSERT_TRUE(set->validate(&err)) << err;
  std::vector<long> expected;
  for (int t = 0; t < kThreads; ++t)
    for (long i = 1; i < kPerThread; i += 2)
      expected.push_back(t * kPerThread + i);
  EXPECT_EQ(set->snapshot(), expected);
  EXPECT_EQ(set->size(), expected.size());
}

// N threads hammering the same small universe: no invariant may break,
// and prefill + successful adds - successful removes must equal the
// surviving population exactly.
TEST_P(EveryVariant, SameKeysConserveTheLedger) {
  auto set = harness::make_set(GetParam());
  constexpr long kUniverse = 64;
  constexpr long kOps = 4000;
  std::vector<core::OpCounters> counters(kThreads);
  harness::run_team(
      kThreads,
      [&](int t) {
        auto h = set->make_handle();
        workload::Rng rng(workload::thread_seed(99, t));
        for (long i = 0; i < kOps; ++i) {
          const long k = static_cast<long>(rng.below(kUniverse));
          switch (rng.below(4)) {
            case 0:
            case 1:
              h->add(k);
              break;
            case 2:
              h->remove(k);
              break;
            default:
              h->contains(k);
              break;
          }
        }
        counters[static_cast<std::size_t>(t)] = h->counters();
      },
      /*pin=*/false);

  std::string err;
  ASSERT_TRUE(set->validate(&err)) << err;
  core::OpCounters agg;
  for (const auto& c : counters) agg += c;
  EXPECT_EQ(static_cast<long>(set->size()), agg.adds - agg.rems);
  EXPECT_EQ(agg.total_ops(), kThreads * kOps);
  // Everything that survived must really be in the set.
  for (const long k : set->snapshot()) {
    auto h = set->make_handle();
    EXPECT_TRUE(h->contains(k)) << "snapshot key " << k << " not found";
  }
}

// The paper's deterministic benchmark drains the set: every thread adds
// its n keys then removes them, with both key schedules.
TEST_P(EveryVariant, DeterministicDriverDrainsTheSet) {
  for (const auto sched : {workload::KeySchedule::kSameKeys,
                           workload::KeySchedule::kDisjointKeys}) {
    auto set = harness::make_set(GetParam());
    const auto r =
        harness::run_deterministic(*set, kThreads, 300, sched, false);
    std::string err;
    ASSERT_TRUE(set->validate(&err)) << err;
    EXPECT_EQ(set->size(), 0u);
    EXPECT_EQ(r.agg.adds, r.agg.rems);
    EXPECT_EQ(r.total_ops, kThreads * 2L * 300);
  }
}

// The random-mix driver's ledger must balance for the six paper
// variants under the table mix.
TEST_P(EveryVariant, RandomMixDriverLedgerBalances) {
  auto set = harness::make_set(GetParam());
  const auto r = harness::run_random_mix(*set, kThreads, /*c=*/2000,
                                         /*prefill=*/100, /*universe=*/512,
                                         workload::kTableMix, /*seed=*/42,
                                         /*pin=*/false);
  std::string err;
  ASSERT_TRUE(set->validate(&err)) << err;
  EXPECT_EQ(set->size(),
            static_cast<std::size_t>(100 + r.agg.adds - r.agg.rems));
  EXPECT_EQ(r.total_ops, kThreads * 2000L);
}

}  // namespace
}  // namespace pragmalist
