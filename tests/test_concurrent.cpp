// Concurrent stress: disjoint-range ownership must leave exactly the
// expected set; same-key hammering must preserve validate() and the
// OpCounters population ledger; the deterministic driver must drain
// every catalog structure to empty.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/harness/catalog.hpp"
#include "src/harness/drivers.hpp"
#include "src/harness/thread_team.hpp"
#include "src/workload/op_mix.hpp"
#include "src/workload/rng.hpp"

namespace pragmalist {
namespace {

constexpr int kThreads = 4;

class EveryVariant : public ::testing::TestWithParam<std::string_view> {};

INSTANTIATE_TEST_SUITE_P(
    Catalog, EveryVariant,
    ::testing::ValuesIn(harness::all_variant_ids()),
    [](const ::testing::TestParamInfo<std::string_view>& info) {
      std::string name(info.param);
      for (char& c : name)        // "singly/ebr" -> "singly_ebr": gtest
        if (c == '/') c = '_';    // names must be alphanumeric
      return name;
    });

// N threads, disjoint key ranges, partial removes: the survivors must
// be exactly the union of what each thread kept.
TEST_P(EveryVariant, DisjointRangesLeaveExpectedSet) {
  auto set = harness::make_set(GetParam());
  constexpr long kPerThread = 400;
  harness::run_team(
      kThreads,
      [&](int t) {
        auto h = set->make_handle();
        const long base = t * kPerThread;
        for (long i = 0; i < kPerThread; ++i)
          ASSERT_TRUE(h->add(base + i));
        for (long i = 0; i < kPerThread; i += 2)  // drop the evens
          ASSERT_TRUE(h->remove(base + i));
      },
      /*pin=*/false);

  std::string err;
  ASSERT_TRUE(set->validate(&err)) << err;
  std::vector<long> expected;
  for (int t = 0; t < kThreads; ++t)
    for (long i = 1; i < kPerThread; i += 2)
      expected.push_back(t * kPerThread + i);
  EXPECT_EQ(set->snapshot(), expected);
  EXPECT_EQ(set->size(), expected.size());
}

// N threads hammering the same small universe: no invariant may break,
// and prefill + successful adds - successful removes must equal the
// surviving population exactly.
TEST_P(EveryVariant, SameKeysConserveTheLedger) {
  auto set = harness::make_set(GetParam());
  constexpr long kUniverse = 64;
  constexpr long kOps = 4000;
  std::vector<core::OpCounters> counters(kThreads);
  harness::run_team(
      kThreads,
      [&](int t) {
        auto h = set->make_handle();
        workload::Rng rng(workload::thread_seed(99, t));
        for (long i = 0; i < kOps; ++i) {
          const long k = static_cast<long>(rng.below(kUniverse));
          switch (rng.below(4)) {
            case 0:
            case 1:
              h->add(k);
              break;
            case 2:
              h->remove(k);
              break;
            default:
              h->contains(k);
              break;
          }
        }
        counters[static_cast<std::size_t>(t)] = h->counters();
      },
      /*pin=*/false);

  std::string err;
  ASSERT_TRUE(set->validate(&err)) << err;
  core::OpCounters agg;
  for (const auto& c : counters) agg += c;
  EXPECT_EQ(static_cast<long>(set->size()), agg.adds - agg.rems);
  EXPECT_EQ(agg.total_ops(), kThreads * kOps);
  // Everything that survived must really be in the set.
  for (const long k : set->snapshot()) {
    auto h = set->make_handle();
    EXPECT_TRUE(h->contains(k)) << "snapshot key " << k << " not found";
  }
}

// The paper's deterministic benchmark drains the set: every thread adds
// its n keys then removes them, with both key schedules.
TEST_P(EveryVariant, DeterministicDriverDrainsTheSet) {
  for (const auto sched : {workload::KeySchedule::kSameKeys,
                           workload::KeySchedule::kDisjointKeys}) {
    auto set = harness::make_set(GetParam());
    const auto r =
        harness::run_deterministic(*set, kThreads, 300, sched, false);
    std::string err;
    ASSERT_TRUE(set->validate(&err)) << err;
    EXPECT_EQ(set->size(), 0u);
    EXPECT_EQ(r.agg.adds, r.agg.rems);
    EXPECT_EQ(r.total_ops, kThreads * 2L * 300);
  }
}

// --- starvation tier -------------------------------------------------
//
// One reader versus writer saturation: the writers hammer add/remove
// for the whole run, and the reader must still complete a FIXED number
// of contains calls -- not "eventually", but with a restart budget
// proportional to its own op count. This is the progress-guarantee
// matrix of iset.hpp made operational: restart-free cells must report
// zero reader restarts; bounded-restart (HP) and version-confirm
// (unrolled) cells must stay under a linear budget, never livelock.
struct StarvationCase {
  std::string_view id;
  bool reader_restart_free;  // kContainsRestartFree for this cell
};

class ReaderVsWriterSaturation
    : public ::testing::TestWithParam<StarvationCase> {};

INSTANTIATE_TEST_SUITE_P(
    ReclaimGrid, ReaderVsWriterSaturation,
    ::testing::Values(StarvationCase{"singly", true},
                      StarvationCase{"singly/ebr", true},
                      StarvationCase{"singly/hp", false},
                      StarvationCase{"doubly_cursor", true},
                      StarvationCase{"doubly_cursor/ebr", true},
                      StarvationCase{"doubly_cursor/hp", false},
                      StarvationCase{"unrolled_k8/ebr", false},
                      StarvationCase{"unrolled_k8/hp", false},
                      StarvationCase{"singly/ebr/nohint", true}),
    [](const ::testing::TestParamInfo<StarvationCase>& info) {
      std::string name(info.param.id);
      for (char& c : name)
        if (c == '/') c = '_';
      return name;
    });

TEST_P(ReaderVsWriterSaturation, ReaderCompletesUnderABoundedBudget) {
  const StarvationCase cs = GetParam();
  auto set = harness::make_set(cs.id);
  constexpr long kUniverse = 256;
  constexpr long kReaderOps = 3000;
  {  // survivors the reader can actually hit
    auto h = set->make_handle();
    for (long k = 0; k < kUniverse; k += 2) ASSERT_TRUE(h->add(k));
  }
  std::atomic<bool> stop{false};
  core::OpCounters reader;
  harness::run_team(
      kThreads,
      [&](int t) {
        auto h = set->make_handle();
        workload::Rng rng(workload::thread_seed(1234, t));
        if (t == 0) {
          for (long i = 0; i < kReaderOps; ++i)
            h->contains(static_cast<long>(rng.below(kUniverse)));
          reader = h->counters();
          stop.store(true, std::memory_order_relaxed);
        } else {
          // Saturating churn on the odd keys: the evens stay put so
          // the reader's walks cross an always-hot interleaving of
          // marked/unlinked nodes.
          while (!stop.load(std::memory_order_relaxed)) {
            const long k =
                static_cast<long>(rng.below(kUniverse / 2)) * 2 + 1;
            h->add(k);
            h->remove(k);
          }
        }
      },
      /*pin=*/false);

  std::string err;
  ASSERT_TRUE(set->validate(&err)) << err;
  EXPECT_EQ(reader.con_calls, kReaderOps);
  if (cs.reader_restart_free)
    EXPECT_EQ(reader.restarts, 0)
        << cs.id << ": a restart-free contains cell restarted";
  else
    EXPECT_LE(reader.restarts, kReaderOps * 16 + 4096)
        << cs.id << ": reader restarts blew the linear budget";
}

// The random-mix driver's ledger must balance for the six paper
// variants under the table mix.
TEST_P(EveryVariant, RandomMixDriverLedgerBalances) {
  auto set = harness::make_set(GetParam());
  const auto r = harness::run_random_mix(*set, kThreads, /*c=*/2000,
                                         /*prefill=*/100, /*universe=*/512,
                                         workload::kTableMix, /*seed=*/42,
                                         /*pin=*/false);
  std::string err;
  ASSERT_TRUE(set->validate(&err)) << err;
  EXPECT_EQ(set->size(),
            static_cast<std::size_t>(100 + r.agg.adds - r.agg.rems));
  EXPECT_EQ(r.total_ops, kThreads * 2000L);
}

}  // namespace
}  // namespace pragmalist
