// Sequential set semantics for all six paper variants, the unrolled
// fat-node engine, and both sequential baselines: ordered iteration,
// duplicate adds rejected, remove-absent false, counters ledger,
// interleaved churn against a std::set oracle.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/core/unrolled_family.hpp"
#include "src/workload/rng.hpp"
#include "tests/test_util.hpp"

namespace pragmalist {
namespace {

using test::DirectFacade;
using test::HandleFacade;
using test::sorted_unique;

template <typename Facade>
class SequentialSemantics : public ::testing::Test {};

using AllStructures = ::testing::Types<
    HandleFacade<core::DraconicList>, HandleFacade<core::SinglyList>,
    HandleFacade<core::DoublyList>, HandleFacade<core::SinglyCursorList>,
    HandleFacade<core::SinglyFetchOrList>,
    HandleFacade<core::DoublyCursorList>,
    HandleFacade<core::UnrolledK8List>,
    DirectFacade<baselines::SequentialList>,
    DirectFacade<baselines::SequentialCursorList>>;
TYPED_TEST_SUITE(SequentialSemantics, AllStructures);

TYPED_TEST(SequentialSemantics, EmptyList) {
  TypeParam s;
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.snapshot().empty());
  EXPECT_FALSE(s.contains(7));
  EXPECT_FALSE(s.remove(7));
  std::string err;
  EXPECT_TRUE(s.validate(&err)) << err;
}

TYPED_TEST(SequentialSemantics, OrderedIteration) {
  TypeParam s;
  const std::vector<long> keys = {41, 7, 99, 0, 23, 58, 12, 3, 77, 31};
  for (const long k : keys) EXPECT_TRUE(s.add(k));
  EXPECT_EQ(s.snapshot(), sorted_unique(keys));
  EXPECT_EQ(s.size(), keys.size());
  std::string err;
  EXPECT_TRUE(s.validate(&err)) << err;
}

TYPED_TEST(SequentialSemantics, DuplicateAddRejected) {
  TypeParam s;
  EXPECT_TRUE(s.add(5));
  EXPECT_FALSE(s.add(5));
  EXPECT_TRUE(s.add(6));
  EXPECT_FALSE(s.add(5));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.counters().adds, 2);
  EXPECT_EQ(s.counters().add_calls, 4);
}

TYPED_TEST(SequentialSemantics, RemoveAbsentFalse) {
  TypeParam s;
  EXPECT_TRUE(s.add(10));
  EXPECT_FALSE(s.remove(11));
  EXPECT_TRUE(s.remove(10));
  EXPECT_FALSE(s.remove(10));
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.counters().rems, 1);
  EXPECT_EQ(s.counters().rem_calls, 3);
}

TYPED_TEST(SequentialSemantics, RemoveThenReAdd) {
  TypeParam s;
  for (long k = 0; k < 16; ++k) EXPECT_TRUE(s.add(k));
  for (long k = 0; k < 16; k += 2) EXPECT_TRUE(s.remove(k));
  for (long k = 0; k < 16; k += 2) EXPECT_FALSE(s.contains(k));
  for (long k = 1; k < 16; k += 2) EXPECT_TRUE(s.contains(k));
  for (long k = 0; k < 16; k += 2) EXPECT_TRUE(s.add(k));
  EXPECT_EQ(s.size(), 16u);
  std::string err;
  EXPECT_TRUE(s.validate(&err)) << err;
}

TYPED_TEST(SequentialSemantics, MatchesStdSetOracle) {
  TypeParam s;
  std::set<long> oracle;
  workload::Rng rng(2026);
  for (int i = 0; i < 4000; ++i) {
    const long k = static_cast<long>(rng.below(64));
    switch (rng.below(3)) {
      case 0:
        EXPECT_EQ(s.add(k), oracle.insert(k).second);
        break;
      case 1:
        EXPECT_EQ(s.remove(k), oracle.erase(k) > 0);
        break;
      default:
        EXPECT_EQ(s.contains(k), oracle.count(k) > 0);
        break;
    }
  }
  EXPECT_EQ(s.snapshot(), std::vector<long>(oracle.begin(), oracle.end()));
  std::string err;
  EXPECT_TRUE(s.validate(&err)) << err;
}

TYPED_TEST(SequentialSemantics, CountersConserveThePopulation) {
  TypeParam s;
  workload::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const long k = static_cast<long>(rng.below(40));
    if (rng.below(2) == 0)
      s.add(k);
    else
      s.remove(k);
  }
  const auto c = s.counters();
  EXPECT_EQ(static_cast<long>(s.size()), c.adds - c.rems);
  EXPECT_EQ(c.add_calls + c.rem_calls, 2000);
}

}  // namespace
}  // namespace pragmalist
