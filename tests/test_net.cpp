// Network front-end tests: the RESP-subset frame/reply parsers under
// partial, pipelined and adversarial input; dispatch_request against a
// sequential std::set oracle; and an in-process loopback smoke --
// Server on an ephemeral port driven by the real run_loadgen engine,
// asserting the exact client/server ledger match, a valid structure
// and a bounded limbo afterwards, plus the injected-crash path
// (abandon -> -ERR -> re-lease -> supervisor reap) over the wire.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/harness/catalog.hpp"
#include "src/net/loadgen.hpp"
#include "src/net/protocol.hpp"
#include "src/net/server.hpp"

namespace pragmalist {
namespace {

using net::protocol::FrameParser;
using net::protocol::ParseStatus;
using net::protocol::Reply;
using net::protocol::ReplyParser;

std::string frame_of(const std::vector<std::string>& args) {
  std::string out;
  net::protocol::encode_request(out, args);
  return out;
}

// --- frame parser ----------------------------------------------------

TEST(FrameParser, RoundTripsOneFrame) {
  FrameParser p;
  p.feed(frame_of({"GET", "42"}));
  std::vector<std::string> args;
  ASSERT_EQ(p.next(&args), ParseStatus::kFrame);
  EXPECT_EQ(args, (std::vector<std::string>{"GET", "42"}));
  EXPECT_EQ(p.next(&args), ParseStatus::kNeedMore);
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(FrameParser, ByteAtATimeDelivery) {
  // kNeedMore at every prefix, exactly one frame at the last byte:
  // the partial-read path a real socket exercises constantly.
  const std::string wire = frame_of({"SET", "-987654321"});
  FrameParser p;
  std::vector<std::string> args;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    p.feed(wire.data() + i, 1);
    ASSERT_EQ(p.next(&args), ParseStatus::kNeedMore) << "at byte " << i;
  }
  p.feed(wire.data() + wire.size() - 1, 1);
  ASSERT_EQ(p.next(&args), ParseStatus::kFrame);
  EXPECT_EQ(args, (std::vector<std::string>{"SET", "-987654321"}));
}

TEST(FrameParser, DrainsAPipelinedBurst) {
  FrameParser p;
  std::string wire;
  for (int i = 0; i < 100; ++i)
    wire += frame_of({"GET", std::to_string(i)});
  p.feed(wire);
  std::vector<std::string> args;
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(p.next(&args), ParseStatus::kFrame);
    EXPECT_EQ(args[1], std::to_string(i));
  }
  EXPECT_EQ(p.next(&args), ParseStatus::kNeedMore);
}

TEST(FrameParser, SplitAcrossFeedsMidPayload) {
  const std::string wire = frame_of({"SCAN", "100", "64"});
  FrameParser p;
  std::vector<std::string> args;
  p.feed(wire.substr(0, 9));
  EXPECT_EQ(p.next(&args), ParseStatus::kNeedMore);
  p.feed(wire.substr(9));
  ASSERT_EQ(p.next(&args), ParseStatus::kFrame);
  EXPECT_EQ(args, (std::vector<std::string>{"SCAN", "100", "64"}));
}

TEST(FrameParser, RejectsMalformedStreams) {
  // Each case must yield kError (sticky), never UB and never a frame.
  const std::vector<std::string> bad = {
      "GET 42\r\n",                    // inline command, not RESP
      "*x\r\n",                        // non-numeric argc
      "*0\r\n",                        // empty frame
      "*-1\r\n",                       // negative argc
      "*1\r\nGET\r\n",                 // missing bulk header
      "*1\r\n$3\r\nGETX\r\n",          // payload longer than declared
      "*1\r\n$-4\r\n",                 // negative bulk length
      "*99\r\n",                       // argc over kMaxArgs
      "*1\r\n$999999\r\n",             // bulk over kMaxBulk
      "*1\r\n$99999999999999999\r\n",  // length field overflow
  };
  for (const auto& wire : bad) {
    FrameParser p;
    p.feed(wire);
    std::vector<std::string> args;
    EXPECT_EQ(p.next(&args), ParseStatus::kError) << "input: " << wire;
    EXPECT_FALSE(p.error().empty());
    // Sticky until reset.
    p.feed(frame_of({"PING"}));
    EXPECT_EQ(p.next(&args), ParseStatus::kError);
    p.reset();
    p.feed(frame_of({"PING"}));
    EXPECT_EQ(p.next(&args), ParseStatus::kFrame);
  }
}

TEST(FrameParser, OversizedFrameIsRejectedNotBuffered) {
  // A frame that never completes but keeps growing must trip the
  // frame-size ceiling instead of buffering without bound.
  FrameParser p(/*max_frame=*/256);
  p.feed("*8\r\n");
  std::vector<std::string> args;
  ParseStatus st = ParseStatus::kNeedMore;
  for (int i = 0; i < 64 && st == ParseStatus::kNeedMore; ++i) {
    p.feed("$100\r\n");  // headers forever, payload never arrives
    st = p.next(&args);
  }
  EXPECT_EQ(st, ParseStatus::kError);
}

TEST(FrameParser, CompactsConsumedPrefix) {
  // A long-lived pipelined connection must not grow the buffer without
  // bound: after many consumed frames the retained bytes stay small.
  FrameParser p;
  std::vector<std::string> args;
  for (int i = 0; i < 10000; ++i) {
    p.feed(frame_of({"GET", std::to_string(i)}));
    ASSERT_EQ(p.next(&args), ParseStatus::kFrame);
  }
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(ParseKey, StrictDecimalLongs) {
  long v = 0;
  EXPECT_TRUE(net::protocol::parse_key("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(net::protocol::parse_key("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(net::protocol::parse_key("", &v));
  EXPECT_FALSE(net::protocol::parse_key("12x", &v));
  EXPECT_FALSE(net::protocol::parse_key("4.2", &v));
  EXPECT_FALSE(net::protocol::parse_key(" 1", &v));
  EXPECT_FALSE(net::protocol::parse_key("999999999999999999999999999", &v));
}

// --- reply parser ----------------------------------------------------

TEST(ReplyParser, RoundTripsEveryReplyType) {
  std::string wire;
  net::protocol::encode_simple(wire, "PONG");
  net::protocol::encode_error(wire, "ERR nope");
  net::protocol::encode_integer(wire, -3);
  net::protocol::encode_bulk(wire, "a:1\nb:2\n");
  net::protocol::encode_int_array(wire, {1, 2, 3});

  // Byte at a time, to cover every resume point.
  ReplyParser p;
  std::vector<Reply> got;
  for (char c : wire) {
    p.feed(&c, 1);
    Reply r;
    while (p.next(&r) == ParseStatus::kFrame) got.push_back(r);
  }
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[0].type, Reply::Type::kSimple);
  EXPECT_EQ(got[0].text, "PONG");
  EXPECT_EQ(got[1].type, Reply::Type::kError);
  EXPECT_EQ(got[1].text, "ERR nope");
  EXPECT_EQ(got[2].type, Reply::Type::kInteger);
  EXPECT_EQ(got[2].integer, -3);
  EXPECT_EQ(got[3].type, Reply::Type::kBulk);
  EXPECT_EQ(got[3].text, "a:1\nb:2\n");
  EXPECT_EQ(got[4].type, Reply::Type::kIntArray);
  EXPECT_EQ(got[4].ints, (std::vector<long>{1, 2, 3}));
}

TEST(ReplyParser, RejectsUnknownTypeByte) {
  ReplyParser p;
  p.feed("?what\r\n");
  Reply r;
  EXPECT_EQ(p.next(&r), ParseStatus::kError);
}

// --- dispatch vs sequential oracle -----------------------------------

/// Run one command through dispatch_request and decode the reply.
Reply dispatch(core::ISetHandle& handle,
               const std::vector<std::string>& args) {
  std::string out;
  net::dispatch_request(args, handle, out);
  ReplyParser p;
  p.feed(out);
  Reply r;
  EXPECT_EQ(p.next(&r), ParseStatus::kFrame);
  return r;
}

TEST(Dispatch, MatchesSequentialOracle) {
  const auto set = harness::make_set("singly");
  const auto handle = set->make_handle();
  std::set<long> oracle;
  std::uint64_t x = 12345;
  for (int i = 0; i < 4000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const long key = static_cast<long>((x >> 33) % 512);
    const int op = static_cast<int>((x >> 20) % 3);
    const std::string ks = std::to_string(key);
    if (op == 0) {
      const Reply r = dispatch(*handle, {"SET", ks});
      ASSERT_EQ(r.type, Reply::Type::kInteger);
      EXPECT_EQ(r.integer, oracle.insert(key).second ? 1 : 0);
    } else if (op == 1) {
      const Reply r = dispatch(*handle, {"DEL", ks});
      ASSERT_EQ(r.type, Reply::Type::kInteger);
      EXPECT_EQ(r.integer, oracle.erase(key) != 0 ? 1 : 0);
    } else {
      const Reply r = dispatch(*handle, {"GET", ks});
      ASSERT_EQ(r.type, Reply::Type::kInteger);
      EXPECT_EQ(r.integer, oracle.count(key) != 0 ? 1 : 0);
    }
  }
  // SCAN pages agree with the oracle's sorted order.
  const Reply scan = dispatch(*handle, {"SCAN", "100", "50"});
  ASSERT_EQ(scan.type, Reply::Type::kIntArray);
  std::vector<long> expect;
  for (auto it = oracle.lower_bound(100);
       it != oracle.end() && expect.size() < 50; ++it)
    expect.push_back(*it);
  EXPECT_EQ(scan.ints, expect);
  std::string err;
  EXPECT_TRUE(set->validate(&err)) << err;
}

TEST(Dispatch, ErrorsTouchNothing) {
  const auto set = harness::make_set("singly");
  const auto handle = set->make_handle();
  dispatch(*handle, {"SET", "7"});
  const std::vector<std::vector<std::string>> bad = {
      {"FROB", "7"},       // unknown command
      {"SET"},             // missing key
      {"GET", "7", "8"},   // extra arg
      {"DEL", "seven"},    // non-integer key
      {"SCAN", "0"},       // missing count
      {"SCAN", "0", "-1"}, // negative count
      {"PING", "x"},       // arity
  };
  for (const auto& args : bad) {
    const Reply r = dispatch(*handle, args);
    EXPECT_EQ(r.type, Reply::Type::kError) << args[0];
    EXPECT_EQ(r.text.rfind("ERR", 0), 0u) << r.text;
  }
  EXPECT_EQ(set->size(), 1u);
  const long ops_before = handle->counters().total_ops();
  EXPECT_EQ(ops_before, 1);  // only the one good SET dispatched
}

TEST(Dispatch, ScanCountIsClamped) {
  const auto set = harness::make_set("singly");
  const auto handle = set->make_handle();
  for (long k = 0; k < 64; ++k) handle->add(k);
  std::string out;
  const auto o =
      net::dispatch_request({"SCAN", "0", "99999999"}, *handle, out);
  EXPECT_TRUE(o.data_op);
  ReplyParser p;
  p.feed(out);
  Reply r;
  ASSERT_EQ(p.next(&r), ParseStatus::kFrame);
  EXPECT_EQ(r.ints.size(), 64u);  // all present keys, clamp held
}

// --- loopback server/client smoke ------------------------------------

TEST(Loopback, LedgerMatchesAndStructureSurvives) {
  net::ServerConfig scfg;
  scfg.port = 0;  // ephemeral
  scfg.set_id = "singly/ebr/sh2";
  scfg.workers = 2;
  net::Server server(scfg);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  net::LoadGenConfig cfg;
  cfg.port = server.port();
  cfg.threads = 2;
  cfg.connections = 16;
  cfg.total_ops = 3000;
  cfg.universe = 1024;
  cfg.mix = {20, 20, 50, 10};
  const net::LoadGenResult res = net::run_loadgen(cfg);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_GE(res.total_completed(), 3000);
  EXPECT_EQ(res.errors, 0);
  EXPECT_EQ(res.abandoned, 0);
  // The tentpole acceptance check, in-process: every acknowledged op
  // is in the server's ledger and nothing else is.
  EXPECT_TRUE(res.ledger_match)
      << "server=" << res.server_total_ops
      << " client=" << res.total_completed();

  server.stop();
  EXPECT_EQ(server.ledger().total_ops(), res.total_completed());
  core::ISet& set = server.set();
  std::string why;
  EXPECT_TRUE(set.validate(&why)) << why;
  // All leases departed cleanly: no crashed slots, nothing parked.
  const faults::BlastStats blast = set.blast_stats();
  EXPECT_EQ(blast.crashed_slots, 0u);
  EXPECT_EQ(blast.leaked_cells, 0u);
  EXPECT_EQ(blast.parked_limbo, 0u);
}

TEST(Loopback, ReconnectChurnKeepsLedgerExact) {
  net::ServerConfig scfg;
  scfg.port = 0;
  scfg.set_id = "unrolled_k8/hp";
  scfg.workers = 2;
  net::Server server(scfg);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  net::LoadGenConfig cfg;
  cfg.port = server.port();
  cfg.threads = 2;
  cfg.connections = 12;
  // Duration mode so the waves schedule gets whole down->up cycles:
  // 14 ticks of 50 ms = half/full/half/full, so churned-out slots are
  // re-opened (reconnects) twice within the window.
  cfg.duration_ms = 700;
  cfg.universe = 512;
  cfg.schedule = service::SoakSchedule::kWaves;
  cfg.churn_ticks = 14;
  const net::LoadGenResult res = net::run_loadgen(cfg);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_GT(res.reconnects, 0);  // churn actually churned
  EXPECT_EQ(res.abandoned, 0);
  EXPECT_TRUE(res.ledger_match)
      << "server=" << res.server_total_ops
      << " client=" << res.total_completed();

  server.stop();
  std::string why;
  EXPECT_TRUE(server.set().validate(&why)) << why;
  // Zero leaked hazard slots after every connection dropped (HP leg).
  EXPECT_EQ(server.set().blast_stats().leaked_cells, 0u);
}

TEST(Loopback, InjectedCrashReLeasesAndReaps) {
  net::ServerConfig scfg;
  scfg.port = 0;
  scfg.set_id = "singly/ebr/sh2";
  scfg.workers = 2;
  scfg.reap_delay_ms = 20;
  scfg.faults.at(0, 40, faults::FaultKind::kDepartWithoutRelease)
      .at(1, 60, faults::FaultKind::kMidOpAbandon);
  net::Server server(scfg);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  net::LoadGenConfig cfg;
  cfg.port = server.port();
  cfg.threads = 2;
  cfg.connections = 8;
  cfg.total_ops = 2000;
  cfg.universe = 256;
  const net::LoadGenResult res = net::run_loadgen(cfg);
  ASSERT_TRUE(res.ok) << res.error;
  // Each fired fault answered exactly one request with -ERR crashed;
  // those requests were never dispatched, so the ledger still matches.
  EXPECT_GE(res.errors, 1);
  EXPECT_TRUE(res.ledger_match)
      << "server=" << res.server_total_ops
      << " client=" << res.total_completed();

  server.stop();
  const net::ServerStats stats = server.stats();
  EXPECT_GE(stats.faults_fired, 1);
  EXPECT_GE(stats.reaps, 1);  // the supervisor actually recovered them
  std::string why;
  EXPECT_TRUE(server.set().validate(&why)) << why;
  // Post-reap the blast radius is fully cleaned up.
  const faults::BlastStats blast = server.set().blast_stats();
  EXPECT_EQ(blast.crashed_slots, 0u);
  EXPECT_EQ(blast.leaked_cells, 0u);
}

TEST(Server, InfoIsServableWhileServing) {
  net::ServerConfig scfg;
  scfg.port = 0;
  scfg.workers = 1;
  net::Server server(scfg);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  const std::string info = server.info();
  EXPECT_NE(info.find("set:singly/ebr/sh8"), std::string::npos);
  EXPECT_NE(info.find("total_ops:0"), std::string::npos);
  EXPECT_NE(info.find("limbo:"), std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace pragmalist
