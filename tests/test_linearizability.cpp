// Linearizability-style stress over a bounded key space: N threads
// record complete op histories (invocation/response ticks from one
// global clock plus the returned boolean), and a Wing&Gong-style
// search then asks whether some linearization order explains every
// result -- exploring exactly the sequential oracle's reachable-state
// set (a <=8-key set is a bitmask, so the oracle state space has at
// most 256 states and the search memoizes on frontier x state). Every
// pragmatic variant is checked under the arena and under both real
// reclaimers; a reclamation bug (a key resurrected through a recycled
// node, a lost insert through a freed predecessor) shows up here as a
// history no sequential order can explain.
//
// Range scans are checked against their documented contract (see
// core::ISetHandle): each key of the scanned range linearizes as its
// own atomic membership read somewhere inside the scan's [inv, res]
// window. The checker therefore expands a scan into per-key reads
// that may interleave freely with other operations (but never escape
// the window); an emitted key that was never simultaneously present,
// or an omitted key that was never absent, during the scan makes the
// history unexplainable. A scan is deliberately NOT modeled as one
// atomic snapshot -- the traversal-based implementation does not
// provide that (see the AcceptsWeaklyConsistentScan self-test for the
// distinguishing history), and the self-tests pin both sides of the
// boundary.
//
// Crashed threads (the fault tier's mid-op abandonment) record a final
// *pending* op: invoked, never responded. Wing & Gong's rule for a
// pending op is a branch point -- it either never took effect (skip it
// with no state change) or linearized somewhere after its invocation
// with a result nobody observed (apply the transition, any result).
// What a crash can NOT do is un-happen a completed op; the
// RejectsAContainsTrueAfterACompletedRemove self-test pins that.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/baselines/sequential_list.hpp"
#include "src/faults/faults.hpp"
#include "src/harness/catalog.hpp"
#include "src/harness/thread_team.hpp"
#include "src/workload/rng.hpp"
#include "tests/test_util.hpp"

namespace pragmalist {
namespace {

constexpr int kThreads = 4;
constexpr int kOpsPerThread = 30;
constexpr long kKeys = 6;  // <= 8 so a state is one bitmask byte

enum OpKind { kAdd, kRemove, kContains, kScan };

struct Op {
  OpKind kind;
  long key;  // point ops: the key; scans: the range's lo
  bool ok;
  long inv;  // global clock at invocation
  long res;  // global clock at response
  // Scan ops only: inclusive upper bound and the present-key bitmask
  // the scan reported for [key, hi].
  long hi = 0;
  unsigned observed = 0;
  // The thread crashed after invoking this op and never saw a
  // response: `ok` is meaningless and `res` must be kNever so the op
  // constrains nobody's real-time order. Always a thread's last op.
  bool pending = false;
};

/// The response tick of an op that never responded: later than every
/// real tick, so `min_res` is never lowered by a crashed op.
constexpr long kNever = std::numeric_limits<long>::max();

using History = std::vector<std::vector<Op>>;  // [thread][op order]

/// Bitmask over the scan range [lo, hi] (absolute key bits).
unsigned range_mask(long lo, long hi) {
  return ((1u << (hi + 1)) - 1u) & ~((1u << lo) - 1u);
}

/// Sequential set-semantics oracle on a bitmask state. Returns the
/// result the op must report from `state` and advances the state.
bool oracle_apply(OpKind kind, long key, unsigned& state) {
  const unsigned bit = 1u << key;
  switch (kind) {
    case kAdd: {
      const bool ok = (state & bit) == 0;
      state |= bit;
      return ok;
    }
    case kRemove: {
      const bool ok = (state & bit) != 0;
      state &= ~bit;
      return ok;
    }
    case kContains:
      return (state & bit) != 0;
    case kScan:
      break;  // scans expand into per-key reads inside the checker
  }
  return false;
}

/// Wing & Gong search with memoized failures: can the recorded history
/// be linearized from `initial`? A pending head op may be linearized
/// next iff no other pending op responded before it was invoked; its
/// recorded result must match the oracle transition.
class LinChecker {
 public:
  explicit LinChecker(const History& hist) : hist_(hist) {}

  bool linearizable(unsigned initial) {
    failed_.clear();
    std::vector<int> frontier(hist_.size(), 0);
    std::vector<unsigned> scan_done(hist_.size(), 0);
    return dfs(frontier, scan_done, initial);
  }

 private:
  // 12 bits per thread (6-bit frontier index, 6-bit scan progress)
  // plus the 8-bit oracle state: fits u64 for <= 4 threads x 64 ops.
  std::uint64_t encode(const std::vector<int>& frontier,
                       const std::vector<unsigned>& scan_done,
                       unsigned state) const {
    std::uint64_t key = state;
    for (std::size_t t = 0; t < frontier.size(); ++t)
      key = (key << 12) | (static_cast<std::uint64_t>(frontier[t]) << 6) |
            scan_done[t];
    return key;
  }

  bool dfs(std::vector<int>& frontier, std::vector<unsigned>& scan_done,
           unsigned state) {
    bool done = true;
    long min_res = std::numeric_limits<long>::max();
    for (std::size_t t = 0; t < hist_.size(); ++t) {
      if (frontier[t] >= static_cast<int>(hist_[t].size())) continue;
      done = false;
      const Op& o = hist_[t][static_cast<std::size_t>(frontier[t])];
      if (o.res < min_res) min_res = o.res;
    }
    if (done) return true;
    const std::uint64_t key = encode(frontier, scan_done, state);
    if (failed_.count(key) != 0) return false;
    for (std::size_t t = 0; t < hist_.size(); ++t) {
      if (frontier[t] >= static_cast<int>(hist_[t].size())) continue;
      const Op& o = hist_[t][static_cast<std::size_t>(frontier[t])];
      // Some other pending op finished before o began: o cannot be
      // linearized first (real-time order must be respected).
      if (o.inv > min_res) continue;
      if (o.kind == kScan) {
        // Linearize any one not-yet-linearized key of the range as an
        // atomic read whose result matches the scan's report; reads
        // within one scan may interleave with anything (per-key
        // atomicity). The scan completes when every key has read.
        const unsigned full = range_mask(o.key, o.hi);
        for (long k = o.key; k <= o.hi; ++k) {
          const unsigned bit = 1u << k;
          if ((scan_done[t] & bit) != 0) continue;
          if (((state & bit) != 0) != ((o.observed & bit) != 0)) continue;
          const unsigned prev = scan_done[t];
          scan_done[t] |= bit;
          const bool advanced = scan_done[t] == full;
          if (advanced) {
            scan_done[t] = 0;
            ++frontier[t];
          }
          const bool ok = dfs(frontier, scan_done, state);
          if (advanced) --frontier[t];
          scan_done[t] = prev;
          if (ok) return true;
        }
        continue;
      }
      if (o.pending) {
        // Crashed before responding. Branch 1: the op never took
        // effect -- drop it from the history with no state change.
        // (Deferring this branch behind the real-time gate above is
        // harmless: skipping linearizes nothing, so "skip now" and
        // "skip later" reach the same states.)
        ++frontier[t];
        bool ok = dfs(frontier, scan_done, state);
        if (!ok) {
          // Branch 2: it linearized somewhere after its invocation
          // with a result nobody observed -- apply the transition and
          // accept whatever the oracle returns.
          unsigned next = state;
          oracle_apply(o.kind, o.key, next);
          ok = dfs(frontier, scan_done, next);
        }
        --frontier[t];
        if (ok) return true;
        continue;
      }
      unsigned next = state;
      if (oracle_apply(o.kind, o.key, next) != o.ok) continue;
      ++frontier[t];
      const bool ok = dfs(frontier, scan_done, next);
      --frontier[t];
      if (ok) return true;
    }
    failed_.insert(key);
    return false;
  }

  const History& hist_;
  std::unordered_set<std::uint64_t> failed_;
};

/// Run one concurrent recording round against `set` and return the
/// per-thread histories (40/40/20 add/remove/contains over kKeys).
History record_history(core::ISet& set, std::uint64_t seed) {
  History hist(kThreads);
  std::atomic<long> clock{0};
  harness::run_team(
      kThreads,
      [&](int t) {
        auto h = set.make_handle();
        workload::Rng rng(workload::thread_seed(seed, t));
        auto& ops = hist[static_cast<std::size_t>(t)];
        ops.reserve(kOpsPerThread);
        for (int i = 0; i < kOpsPerThread; ++i) {
          Op op;
          op.key = static_cast<long>(rng.below(kKeys));
          const auto roll = rng.below(100);
          op.kind = roll < 40 ? kAdd : roll < 80 ? kRemove : kContains;
          op.inv = clock.fetch_add(1);
          switch (op.kind) {
            case kAdd: op.ok = h->add(op.key); break;
            case kRemove: op.ok = h->remove(op.key); break;
            case kContains: op.ok = h->contains(op.key); break;
            case kScan: break;  // this recorder draws no scans
          }
          op.res = clock.fetch_add(1);
          ops.push_back(op);
        }
      },
      /*pin=*/false);
  return hist;
}

/// Like record_history but with a scan share: 35/35/10/20
/// add/remove/contains/scan over kKeys, scan widths 1-3. The sink also
/// checks the emission contract (ascending, in range) on the spot.
History record_scan_history(core::ISet& set, std::uint64_t seed) {
  History hist(kThreads);
  std::atomic<long> clock{0};
  harness::run_team(
      kThreads,
      [&](int t) {
        auto h = set.make_handle();
        workload::Rng rng(workload::thread_seed(seed, t));
        auto& ops = hist[static_cast<std::size_t>(t)];
        ops.reserve(kOpsPerThread);
        for (int i = 0; i < kOpsPerThread; ++i) {
          Op op;
          op.key = static_cast<long>(rng.below(kKeys));
          const auto roll = rng.below(100);
          op.kind = roll < 35   ? kAdd
                    : roll < 70 ? kRemove
                    : roll < 80 ? kContains
                                : kScan;
          if (op.kind == kScan) {
            op.hi = std::min<long>(kKeys - 1,
                                   op.key + static_cast<long>(rng.below(3)));
            long last = std::numeric_limits<long>::min();
            unsigned observed = 0;
            op.inv = clock.fetch_add(1);
            h->range_scan(op.key, op.hi, [&](long k) {
              EXPECT_TRUE(k >= op.key && k <= op.hi && k > last)
                  << "scan emitted " << k << " out of order or range";
              last = k;
              observed |= 1u << k;
            });
            op.res = clock.fetch_add(1);
            op.observed = observed;
            op.ok = true;
            ops.push_back(op);
            continue;
          }
          op.inv = clock.fetch_add(1);
          switch (op.kind) {
            case kAdd: op.ok = h->add(op.key); break;
            case kRemove: op.ok = h->remove(op.key); break;
            case kContains: op.ok = h->contains(op.key); break;
            case kScan: break;  // handled above
          }
          op.res = clock.fetch_add(1);
          ops.push_back(op);
        }
      },
      /*pin=*/false);
  return hist;
}

/// Like record_history, but two threads crash mid-history the way the
/// fault tier crashes them: thread 0 dies *inside* a remove (mid-op
/// abandonment -- it may or may not have taken effect, recorded as a
/// pending op), thread 1 dies *between* ops holding its guard
/// (abort-with-guard-held -- no pending op, just a truncated history
/// and, under EBR/HP, a crashed lease for the supervisor to reap).
History record_crash_history(core::ISet& set, std::uint64_t seed) {
  History hist(kThreads);
  std::atomic<long> clock{0};
  harness::run_team(
      kThreads,
      [&](int t) {
        auto h = set.make_handle();
        workload::Rng rng(workload::thread_seed(seed, t));
        auto& ops = hist[static_cast<std::size_t>(t)];
        ops.reserve(kOpsPerThread);
        for (int i = 0; i < kOpsPerThread; ++i) {
          Op op;
          op.key = static_cast<long>(rng.below(kKeys));
          if (t == 0 && i == 10) {
            op.kind = kRemove;
            op.pending = true;
            op.inv = clock.fetch_add(1);
            op.res = kNever;
            h->abandon(faults::FaultKind::kMidOpAbandon, op.key);
            ops.push_back(op);
            return;  // crashed: no response, no further ops
          }
          if (t == 1 && i == 15) {
            h->abandon(faults::FaultKind::kAbortWithGuardHeld, op.key);
            return;  // crashed between ops: history just truncates
          }
          const auto roll = rng.below(100);
          op.kind = roll < 40 ? kAdd : roll < 80 ? kRemove : kContains;
          op.inv = clock.fetch_add(1);
          switch (op.kind) {
            case kAdd: op.ok = h->add(op.key); break;
            case kRemove: op.ok = h->remove(op.key); break;
            case kContains: op.ok = h->contains(op.key); break;
            case kScan: break;  // this recorder draws no scans
          }
          op.res = clock.fetch_add(1);
          ops.push_back(op);
        }
      },
      /*pin=*/false);
  return hist;
}

// --- checker self-tests (the checker must be able to say "no") -------

TEST(LinCheckerSelfTest, AcceptsASequentialHistory) {
  History hist(1);
  unsigned state = 0;
  workload::Rng rng(5);
  long clock = 0;
  for (int i = 0; i < 50; ++i) {
    Op op;
    op.key = static_cast<long>(rng.below(kKeys));
    op.kind = static_cast<OpKind>(rng.below(3));
    op.ok = oracle_apply(op.kind, op.key, state);
    op.inv = clock++;
    op.res = clock++;
    hist[0].push_back(op);
  }
  EXPECT_TRUE(LinChecker(hist).linearizable(0));
}

TEST(LinCheckerSelfTest, RejectsDoubleInsertInRealTimeOrder) {
  // T0 inserts key 0 and completes; T1 then also inserts key 0 and
  // reports success without anyone removing it: no order explains it.
  History hist(2);
  hist[0].push_back({kAdd, 0, true, 0, 1});
  hist[1].push_back({kAdd, 0, true, 2, 3});
  EXPECT_FALSE(LinChecker(hist).linearizable(0));
}

TEST(LinCheckerSelfTest, RejectsPhantomContains) {
  History hist(1);
  hist[0].push_back({kContains, 3, true, 0, 1});  // empty initial state
  EXPECT_FALSE(LinChecker(hist).linearizable(0));
}

TEST(LinCheckerSelfTest, AcceptsOverlappingRace) {
  // Two overlapping adds of the same key: either may be the winner.
  History hist(2);
  hist[0].push_back({kAdd, 2, true, 0, 3});
  hist[1].push_back({kAdd, 2, false, 1, 2});
  EXPECT_TRUE(LinChecker(hist).linearizable(0));
}

// --- scan-model self-tests -------------------------------------------

TEST(LinCheckerSelfTest, AcceptsAScanOfAQuiescentPrefix) {
  // add(1), add(3) complete, then a scan of [0, 4] reports exactly
  // {1, 3}: trivially explainable.
  History hist(1);
  hist[0].push_back({kAdd, 1, true, 0, 1});
  hist[0].push_back({kAdd, 3, true, 2, 3});
  hist[0].push_back({kScan, 0, true, 4, 5, 4, (1u << 1) | (1u << 3)});
  EXPECT_TRUE(LinChecker(hist).linearizable(0));
}

TEST(LinCheckerSelfTest, RejectsAPhantomScanKey) {
  // The scan reports key 2 present, but nothing ever added it.
  History hist(2);
  hist[0].push_back({kAdd, 1, true, 0, 1});
  hist[1].push_back({kScan, 0, true, 2, 3, 4, (1u << 1) | (1u << 2)});
  EXPECT_FALSE(LinChecker(hist).linearizable(0));
}

TEST(LinCheckerSelfTest, RejectsAScanThatEscapesItsWindow) {
  // The scan completes (res = 1) before add(2) even begins (inv = 2),
  // yet reports 2 present: the read cannot linearize inside its
  // window.
  History hist(2);
  hist[0].push_back({kScan, 0, true, 0, 1, 4, 1u << 2});
  hist[1].push_back({kAdd, 2, true, 2, 3});
  EXPECT_FALSE(LinChecker(hist).linearizable(0));
}

TEST(LinCheckerSelfTest, RejectsAScanMissingAStablySurroundingKey) {
  // Key 2 is present before the scan starts and never removed; a scan
  // of [0, 4] that omits it has no absent instant to read.
  History hist(2);
  hist[0].push_back({kAdd, 2, true, 0, 1});
  hist[1].push_back({kScan, 0, true, 2, 3, 4, 0u});
  EXPECT_FALSE(LinChecker(hist).linearizable(0));
}

TEST(LinCheckerSelfTest, AcceptsWeaklyConsistentScan) {
  // add(1) completes, then add(3) completes, both inside the scan's
  // window; the scan reports {3} but not 1. No single instant holds
  // {3} without 1 (1 was present before 3 ever was), so an
  // atomic-snapshot model would reject this history -- but the
  // traversal contract allows it: the walk passed position 1 before
  // add(1), then reached 3 after add(3). Per-key reads inside the
  // window explain it (read 1 absent early, read 3 present late), so
  // the checker must accept.
  History hist(2);
  hist[0].push_back({kScan, 0, true, 0, 5, 4, 1u << 3});
  hist[1].push_back({kAdd, 1, true, 1, 2});
  hist[1].push_back({kAdd, 3, true, 3, 4});
  EXPECT_TRUE(LinChecker(hist).linearizable(0));
}

TEST(LinCheckerSelfTest, ScanReadsNeverReorderOtherThreadsOps) {
  // T1 removes 2 strictly before T2 adds it back; a scan overlapping
  // only the gap between them must be able to report 2 absent.
  History hist(3);
  hist[0].push_back({kScan, 2, true, 3, 4, 2, 0u});
  hist[1].push_back({kAdd, 2, true, 0, 1});
  hist[1].push_back({kRemove, 2, true, 2, 3});
  hist[2].push_back({kAdd, 2, true, 5, 6});
  EXPECT_TRUE(LinChecker(hist).linearizable(0));
}

// --- crashed-thread (pending op) self-tests --------------------------

TEST(LinCheckerSelfTest, AcceptsACrashedAddThatTookEffect) {
  // T0 invokes add(0) and crashes; T1 later reads 0 present. Only the
  // "took effect" branch explains it -- the checker must find it.
  History hist(2);
  hist[0].push_back({kAdd, 0, false, 0, kNever, 0, 0, true});
  hist[1].push_back({kContains, 0, true, 1, 2});
  EXPECT_TRUE(LinChecker(hist).linearizable(0));
}

TEST(LinCheckerSelfTest, AcceptsACrashedAddThatNeverHappened) {
  // Same crash, but T1 reads 0 absent: the "never took effect" branch
  // explains it. A crashed op constrains nothing either way.
  History hist(2);
  hist[0].push_back({kAdd, 0, false, 0, kNever, 0, 0, true});
  hist[1].push_back({kContains, 0, false, 1, 2});
  EXPECT_TRUE(LinChecker(hist).linearizable(0));
}

TEST(LinCheckerSelfTest, RejectsAContainsTrueAfterACompletedRemove) {
  // T0 completed remove(0) before crashing on an unrelated key-1 op;
  // T1 then reads 0 present. The crash cannot un-happen the remove,
  // and the pending op touches the wrong key: no order explains it.
  History hist(2);
  hist[0].push_back({kAdd, 0, true, 0, 1});
  hist[0].push_back({kRemove, 0, true, 2, 3});
  hist[0].push_back({kAdd, 1, false, 4, kNever, 0, 0, true});
  hist[1].push_back({kContains, 0, true, 5, 6});
  EXPECT_FALSE(LinChecker(hist).linearizable(0));
}

// The bitmask model above *is* the sequential oracle: cross-check it
// against baselines::SequentialList on a long random schedule so the
// linearizability verdicts inherit the oracle's authority.
TEST(LinCheckerSelfTest, BitmaskModelMatchesSequentialOracle) {
  baselines::SequentialList oracle;
  unsigned state = 0;
  workload::Rng rng(29);
  for (int i = 0; i < 2000; ++i) {
    const long key = static_cast<long>(rng.below(kKeys));
    const auto kind = static_cast<OpKind>(rng.below(3));
    const bool expected = oracle_apply(kind, key, state);
    bool got = false;
    switch (kind) {
      case kAdd: got = oracle.add(key); break;
      case kRemove: got = oracle.remove(key); break;
      case kContains: got = oracle.contains(key); break;
      case kScan: continue;  // point-op oracle cross-check only
    }
    ASSERT_EQ(got, expected) << "op " << i;
  }
}

// --- the real thing --------------------------------------------------

class EveryPragmaticCombo
    : public ::testing::TestWithParam<std::string_view> {};

std::vector<std::string_view> pragmatic_and_reclaim_ids() {
  std::vector<std::string_view> ids = harness::paper_variant_ids();
  // The unrolled fat-node engine under its arena form; its ebr/hp and
  // sharded forms arrive through the catalog grids below.
  ids.push_back("unrolled_k8");
  const auto& combos = harness::reclaim_variant_ids();
  ids.insert(ids.end(), combos.begin(), combos.end());
  // The sharded grid (every combo behind >= 2 hash shards): the
  // Wing-Gong verdict must hold when the key space is partitioned
  // across lists sharing one reclamation domain -- a cross-shard
  // reclamation bug (e.g. a hazard cell clobbered by another shard)
  // shows up here as an unexplainable history.
  const auto& sharded = harness::sharded_variant_ids();
  ids.insert(ids.end(), sharded.begin(), sharded.end());
  return ids;
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, EveryPragmaticCombo,
    ::testing::ValuesIn(pragmatic_and_reclaim_ids()),
    [](const ::testing::TestParamInfo<std::string_view>& info) {
      std::string name(info.param);
      for (char& c : name)
        if (c == '/') c = '_';
      return name;
    });

TEST_P(EveryPragmaticCombo, ConcurrentHistoriesAreLinearizable) {
  for (std::uint64_t seed = 40; seed < 46; ++seed) {
    auto set = harness::make_set(GetParam());
    const History hist = record_history(*set, seed);
    std::string err;
    ASSERT_TRUE(set->validate(&err)) << err;
    EXPECT_TRUE(LinChecker(hist).linearizable(0))
        << GetParam() << ": history with seed " << seed
        << " admits no linearization";
  }
}

// The scan tier: histories with a 20% range-scan share must still be
// explainable, with every scan's keys linearizing as atomic reads
// inside the scan's window -- for every pragmatic variant under
// arena/EBR/HP and the whole sharded sh4 grid (where a scan is a k-way
// merge over shards sharing one reclamation domain).
TEST_P(EveryPragmaticCombo, ScanHistoriesAreLinearizable) {
  for (std::uint64_t seed = 60; seed < 65; ++seed) {
    auto set = harness::make_set(GetParam());
    const History hist = record_scan_history(*set, seed);
    std::string err;
    ASSERT_TRUE(set->validate(&err)) << err;
    EXPECT_TRUE(LinChecker(hist).linearizable(0))
        << GetParam() << ": scan history with seed " << seed
        << " admits no linearization";
  }
}

// The crash tier: histories where thread 0 dies inside a remove and
// thread 1 dies holding its guard must still be explainable under the
// pending-op rule -- and stay explainable after the supervisor reaps
// the crashed leases (a reap that resurrected or lost a key would have
// produced the evidence *during* the recording of the next seed's
// survivors; validate() catches structural damage immediately).
TEST_P(EveryPragmaticCombo, CrashHistoriesAreLinearizable) {
  const std::uint64_t base = test::env_seed(80);
  for (std::uint64_t seed = base; seed < base + 4; ++seed) {
    test::ReproOnFailure repro(seed);
    auto set = harness::make_set(GetParam());
    const History hist = record_crash_history(*set, seed);
    set->reap_crashed();
    std::string err;
    ASSERT_TRUE(set->validate(&err)) << err;
    EXPECT_TRUE(LinChecker(hist).linearizable(0))
        << GetParam() << ": crash history with seed " << seed
        << " admits no linearization";
  }
}

}  // namespace
}  // namespace pragmalist
