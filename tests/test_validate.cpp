// validate() must detect deliberately broken structural invariants --
// the bench binaries gate their reported numbers on it, so a validate
// that never fails would make every other check in the repo hollow.
#include <gtest/gtest.h>

#include "src/core/unrolled_family.hpp"
#include "src/structures/skiplist.hpp"
#include "tests/test_util.hpp"

namespace pragmalist {
namespace {

template <typename List>
class ValidateCatchesCorruption : public ::testing::Test {};

using CorruptibleLists =
    ::testing::Types<core::DraconicList, core::SinglyList, core::DoublyList,
                     core::SinglyCursorList, core::SinglyFetchOrList,
                     core::DoublyCursorList, core::UnrolledK8List,
                     structures::SkipList, structures::SkipListDraconic>;
TYPED_TEST_SUITE(ValidateCatchesCorruption, CorruptibleLists);

TYPED_TEST(ValidateCatchesCorruption, OrderViolationIsReported) {
  TypeParam list;
  auto h = list.make_handle();
  for (long k = 0; k < 8; ++k) ASSERT_TRUE(h.add(k));

  std::string err;
  ASSERT_TRUE(list.validate(&err)) << err;

  list.corrupt_order_for_test();  // swap the first two physical keys

  err.clear();
  EXPECT_FALSE(list.validate(&err));
  EXPECT_FALSE(err.empty());
}

TYPED_TEST(ValidateCatchesCorruption, ValidAfterChurn) {
  TypeParam list;
  auto h = list.make_handle();
  for (long k = 0; k < 64; ++k) ASSERT_TRUE(h.add(k));
  for (long k = 0; k < 64; k += 3) ASSERT_TRUE(h.remove(k));
  for (long k = 0; k < 64; k += 3) ASSERT_TRUE(h.add(k));
  std::string err;
  EXPECT_TRUE(list.validate(&err)) << err;
  EXPECT_EQ(list.size(), 64u);
}

}  // namespace
}  // namespace pragmalist
