// Shared helpers for the pragmalist test suite.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "src/baselines/sequential_list.hpp"
#include "src/core/variants.hpp"

namespace pragmalist::test {

/// Uniform single-threaded facade over both API styles: the lock-free
/// lists (operations live on a per-thread Handle) and the sequential
/// baselines (operations live on the list itself). Gives the typed
/// tests one shape for all eight structures.
template <typename List>
struct HandleFacade {
  List list;
  typename List::Handle h{list.make_handle()};

  bool add(long k) { return h.add(k); }
  bool remove(long k) { return h.remove(k); }
  bool contains(long k) { return h.contains(k); }
  core::OpCounters counters() const { return h.counters(); }
  std::vector<long> snapshot() const { return list.snapshot(); }
  std::size_t size() const { return list.size(); }
  bool validate(std::string* err) const { return list.validate(err); }
};

template <typename List>
struct DirectFacade {
  List list;

  bool add(long k) { return list.add(k); }
  bool remove(long k) { return list.remove(k); }
  bool contains(long k) { return list.contains(k); }
  core::OpCounters counters() const { return list.counters(); }
  std::vector<long> snapshot() const { return list.snapshot(); }
  std::size_t size() const { return list.size(); }
  bool validate(std::string* err) const { return list.validate(err); }
};

inline std::vector<long> sorted_unique(std::vector<long> keys) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

}  // namespace pragmalist::test
