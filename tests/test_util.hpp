// Shared helpers for the pragmalist test suite.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/baselines/sequential_list.hpp"
#include "src/core/variants.hpp"

#if defined(__GLIBC__)
// glibc's argv[0], for copy-paste repro lines (declared here so the
// header needs no _GNU_SOURCE).
extern "C" char* program_invocation_name;
#endif

namespace pragmalist::test {

/// The seed a randomized test actually runs with: PRAGMALIST_SEED from
/// the environment when set, `def` otherwise. Paired with
/// ReproOnFailure so a failing run prints the exact command that
/// replays it.
inline std::uint64_t env_seed(std::uint64_t def) {
  const char* s = std::getenv("PRAGMALIST_SEED");
  if (s == nullptr || *s == '\0') return def;
  return static_cast<std::uint64_t>(std::strtoull(s, nullptr, 10));
}

/// RAII repro printer for randomized tests: construct one at the top
/// of the test (or of each seed iteration) with the seed in use; if
/// the enclosed scope produces a *new* gtest failure, the destructor
/// prints a copy-paste repro line:
///
///   repro: PRAGMALIST_SEED=7 ./test_soak --gtest_filter=Suite.Name
///
/// Recording HasFailure() at construction keeps multi-seed loops
/// honest: only the iteration that first failed prints, with *its*
/// seed, not every iteration after it.
class ReproOnFailure {
 public:
  explicit ReproOnFailure(std::uint64_t seed)
      : seed_(seed), had_failure_(::testing::Test::HasFailure()) {}

  ReproOnFailure(const ReproOnFailure&) = delete;
  ReproOnFailure& operator=(const ReproOnFailure&) = delete;

  ~ReproOnFailure() {
    if (!::testing::Test::HasFailure() || had_failure_) return;
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
#if defined(__GLIBC__)
    const char* binary = program_invocation_name;
#else
    const char* binary = "<test-binary>";
#endif
    std::cerr << "repro: PRAGMALIST_SEED=" << seed_ << " " << binary
              << " --gtest_filter=" << (info ? info->test_suite_name() : "?")
              << "." << (info ? info->name() : "?") << "\n";
  }

 private:
  std::uint64_t seed_;
  bool had_failure_;
};

/// Uniform single-threaded facade over both API styles: the lock-free
/// lists (operations live on a per-thread Handle) and the sequential
/// baselines (operations live on the list itself). Gives the typed
/// tests one shape for all eight structures.
template <typename List>
struct HandleFacade {
  List list;
  typename List::Handle h{list.make_handle()};

  bool add(long k) { return h.add(k); }
  bool remove(long k) { return h.remove(k); }
  bool contains(long k) { return h.contains(k); }
  core::OpCounters counters() const { return h.counters(); }
  std::vector<long> snapshot() const { return list.snapshot(); }
  std::size_t size() const { return list.size(); }
  bool validate(std::string* err) const { return list.validate(err); }
};

template <typename List>
struct DirectFacade {
  List list;

  bool add(long k) { return list.add(k); }
  bool remove(long k) { return list.remove(k); }
  bool contains(long k) { return list.contains(k); }
  core::OpCounters counters() const { return list.counters(); }
  std::vector<long> snapshot() const { return list.snapshot(); }
  std::size_t size() const { return list.size(); }
  bool validate(std::string* err) const { return list.validate(err); }
};

inline std::vector<long> sorted_unique(std::vector<long> keys) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

}  // namespace pragmalist::test
