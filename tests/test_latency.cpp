// Tier-1 latency-measurement tests: histogram bucket scheme and
// percentile correctness against a sorted-vector oracle, cross-thread
// merge associativity, interval subtraction, the coordinated-omission
// pacing unit, the run_team window regression (thread teardown must
// not inflate the measured window), and the driver-level recording
// ledgers (histogram counts == op-call counters, exactly).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/harness/catalog.hpp"
#include "src/harness/drivers.hpp"
#include "src/harness/latency.hpp"
#include "src/harness/thread_team.hpp"
#include "src/workload/rng.hpp"

namespace pragmalist {
namespace {

using harness::LatHistogram;
using harness::LatencyProfile;
using harness::OpClass;

// A value stream spanning the histogram's scales: uniform random
// exponent (ns to tens of ms), uniform mantissa.
std::vector<std::uint64_t> mixed_scale_values(int n, std::uint64_t seed) {
  workload::Rng rng(seed);
  std::vector<std::uint64_t> vals;
  vals.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const auto exp = rng.below(25);  // up to ~33M ns
    vals.push_back(1 + rng.below(1ull << (exp + 1)));
  }
  return vals;
}

TEST(LatHistogram, BucketSchemeRoundTripsAndIsMonotone) {
  // Every value maps into a bucket whose [min, max] range contains it.
  const std::vector<std::uint64_t> probes = {
      0,   1,   2,   63,   64,        65,         127,  128, 129,
      255, 256, 257, 1000, 4095,      4096,       4097, 1ull << 20,
      (1ull << 20) + 1,    (1ull << 40) - 1, 1ull << 40, ~0ull};
  int prev = -1;
  for (const auto v : probes) {
    const int i = LatHistogram::bucket_index(v);
    ASSERT_GE(i, 0) << v;
    ASSERT_LT(i, LatHistogram::kBuckets) << v;
    EXPECT_LE(LatHistogram::bucket_min(i), v) << v;
    EXPECT_GE(LatHistogram::bucket_max(i), v) << v;
    EXPECT_GE(i, prev) << "bucket index must be monotone in the value";
    prev = i;
  }
  // Below kLinear buckets are exact; above, the relative width is
  // bounded by 1/kSub.
  for (std::uint64_t v = 0; v < LatHistogram::kLinear; ++v)
    EXPECT_EQ(LatHistogram::bucket_min(LatHistogram::bucket_index(v)),
              LatHistogram::bucket_max(LatHistogram::bucket_index(v)));
  for (const auto v : {64ull, 1000ull, 123456ull, 1ull << 30}) {
    const int i = LatHistogram::bucket_index(v);
    const double width = static_cast<double>(LatHistogram::bucket_max(i) -
                                             LatHistogram::bucket_min(i) + 1);
    EXPECT_LE(width / static_cast<double>(LatHistogram::bucket_min(i)),
              1.0 / LatHistogram::kSub + 1e-12)
        << v;
  }
  // Octave boundaries land on fresh buckets (the classic off-by-one).
  EXPECT_EQ(LatHistogram::bucket_index(63), 63);
  EXPECT_EQ(LatHistogram::bucket_index(64), 64);
  EXPECT_EQ(LatHistogram::bucket_index(127),
            LatHistogram::kLinear + LatHistogram::kSub - 1);
  EXPECT_EQ(LatHistogram::bucket_index(128), LatHistogram::kLinear +
                                                 LatHistogram::kSub);
}

TEST(LatHistogram, PercentilesMatchSortedVectorOracle) {
  if (!harness::kLatencyCompiled) GTEST_SKIP() << "latency compiled out";
  auto vals = mixed_scale_values(10000, 77);
  LatHistogram h;
  for (const auto v : vals) h.record(v);
  std::sort(vals.begin(), vals.end());
  ASSERT_EQ(h.count(), vals.size());
  EXPECT_EQ(h.max(), vals.back());
  for (const double q : {0.05, 0.25, 0.50, 0.90, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(vals.size())));
    const std::uint64_t oracle = vals[rank - 1];
    const std::uint64_t got = h.percentile(q);
    // The histogram reports the bucket's inclusive upper bound: never
    // below the oracle, and within one sub-bucket width above it.
    EXPECT_GE(got, oracle) << "q=" << q;
    EXPECT_LE(static_cast<double>(got),
              static_cast<double>(oracle) *
                      (1.0 + 1.0 / LatHistogram::kSub) +
                  1.0)
        << "q=" << q;
  }
  // Tails are monotone, and bounded by the exact max.
  EXPECT_LE(h.percentile(0.50), h.percentile(0.99));
  EXPECT_LE(h.percentile(0.99), h.percentile(0.999));
  EXPECT_LE(h.percentile(0.999), h.max());
  EXPECT_EQ(h.percentile(1.0), h.max());
}

TEST(LatHistogram, EmptyAndSingleValue) {
  LatHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  if (!harness::kLatencyCompiled) GTEST_SKIP() << "latency compiled out";
  h.record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  // Every quantile of a single sample is that sample (clamped by max).
  EXPECT_EQ(h.percentile(0.5), 1000u);
  EXPECT_EQ(h.percentile(0.999), 1000u);
}

TEST(LatHistogram, MergeIsAssociativeAndMatchesSingleRecorder) {
  if (!harness::kLatencyCompiled) GTEST_SKIP() << "latency compiled out";
  const auto a_vals = mixed_scale_values(3000, 1);
  const auto b_vals = mixed_scale_values(4000, 2);
  const auto c_vals = mixed_scale_values(5000, 3);
  LatHistogram a, b, c, all;
  for (const auto v : a_vals) { a.record(v); all.record(v); }
  for (const auto v : b_vals) { b.record(v); all.record(v); }
  for (const auto v : c_vals) { c.record(v); all.record(v); }

  LatHistogram ab_c = a;   // (a + b) + c
  ab_c += b;
  ab_c += c;
  LatHistogram bc = b;     // a + (b + c)
  bc += c;
  LatHistogram a_bc = a;
  a_bc += bc;

  for (int i = 0; i < LatHistogram::kBuckets; ++i) {
    ASSERT_EQ(ab_c.bucket_count(i), all.bucket_count(i)) << "bucket " << i;
    ASSERT_EQ(a_bc.bucket_count(i), all.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_EQ(ab_c.count(), all.count());
  EXPECT_EQ(a_bc.count(), all.count());
  EXPECT_EQ(ab_c.max(), all.max());
  EXPECT_EQ(a_bc.max(), all.max());
  for (const double q : {0.5, 0.99, 0.999})
    EXPECT_EQ(ab_c.percentile(q), all.percentile(q)) << q;
}

TEST(LatHistogram, CrossThreadMergeMatchesSequential) {
  if (!harness::kLatencyCompiled) GTEST_SKIP() << "latency compiled out";
  constexpr int kThreads = 4;
  std::vector<std::unique_ptr<LatHistogram>> parts;
  for (int t = 0; t < kThreads; ++t)
    parts.push_back(std::make_unique<LatHistogram>());
  harness::run_team(
      kThreads,
      [&](int t) {
        const auto vals =
            mixed_scale_values(2000, static_cast<std::uint64_t>(t) + 10);
        for (const auto v : vals) parts[static_cast<std::size_t>(t)]->record(v);
      },
      /*pin=*/false);
  LatHistogram merged;
  for (const auto& p : parts) merged += *p;

  LatHistogram sequential;
  for (int t = 0; t < kThreads; ++t)
    for (const auto v :
         mixed_scale_values(2000, static_cast<std::uint64_t>(t) + 10))
      sequential.record(v);
  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_EQ(merged.max(), sequential.max());
  for (int i = 0; i < LatHistogram::kBuckets; ++i)
    ASSERT_EQ(merged.bucket_count(i), sequential.bucket_count(i)) << i;
}

TEST(LatHistogram, IntervalSubtractionRecoversTheWindow) {
  if (!harness::kLatencyCompiled) GTEST_SKIP() << "latency compiled out";
  const auto first = mixed_scale_values(2000, 21);
  const auto second = mixed_scale_values(3000, 22);
  LatHistogram cum;
  for (const auto v : first) cum.record(v);
  const LatHistogram snap = cum;  // end-of-tick-1 snapshot
  for (const auto v : second) cum.record(v);

  LatHistogram interval = cum;
  interval -= snap;
  LatHistogram oracle;
  for (const auto v : second) oracle.record(v);
  EXPECT_EQ(interval.count(), oracle.count());
  for (int i = 0; i < LatHistogram::kBuckets; ++i)
    ASSERT_EQ(interval.bucket_count(i), oracle.bucket_count(i)) << i;
  // The interval max is bucket-resolution (the true max is not
  // recoverable from two cumulative views): within one sub-bucket.
  EXPECT_GE(interval.max(), oracle.max());
  EXPECT_LE(static_cast<double>(interval.max()),
            static_cast<double>(oracle.max()) *
                    (1.0 + 1.0 / LatHistogram::kSub) +
                1.0);
  // Subtracting everything leaves an empty histogram.
  LatHistogram none = cum;
  none -= cum;
  EXPECT_EQ(none.count(), 0u);
  EXPECT_EQ(none.max(), 0u);
}

TEST(LatencyProfile, RoutesClassesAndMerges) {
  if (!harness::kLatencyCompiled) GTEST_SKIP() << "latency compiled out";
  LatencyProfile p1, p2;
  p1.of(OpClass::kAdd).record(100);
  p1.of(OpClass::kScan).record(5000);
  p2.of(OpClass::kAdd).record(200);
  p2.of(OpClass::kContains).record(50);
  p1 += p2;
  EXPECT_EQ(p1.of(OpClass::kAdd).count(), 2u);
  EXPECT_EQ(p1.of(OpClass::kRemove).count(), 0u);
  EXPECT_EQ(p1.of(OpClass::kContains).count(), 1u);
  EXPECT_EQ(p1.of(OpClass::kScan).count(), 1u);
  EXPECT_EQ(p1.total_count(), 4u);
  const LatHistogram all = p1.merged();
  EXPECT_EQ(all.count(), 4u);
  EXPECT_EQ(all.max(), 5000u);
}

// The coordinated-omission unit: with a fixed-rate schedule, a single
// stalled op must charge its stall to itself AND to every op whose
// intended start passed while it ran. An observed-start loop records
// the same scenario as one slow op and many fast ones -- the lie CO
// mode exists to avoid.
TEST(CoordinatedOmission, PacedLoopAttributesStallToQueuedOps) {
  using Clock = std::chrono::steady_clock;
  constexpr std::uint64_t kPeriodNs = 1'000'000;  // 1 ms
  constexpr long kOps = 50;
  constexpr auto kStall = std::chrono::milliseconds(80);

  LatHistogram paced;       // completion - intended start (CO-aware)
  LatHistogram observed;    // completion - observed start (the lie)
  harness::run_paced(kOps, kPeriodNs, [&](long i, Clock::time_point intended) {
    const auto begin = Clock::now();
    if (i == 0) std::this_thread::sleep_for(kStall);  // the stalled op
    const auto end = Clock::now();
    paced.record(harness::co_latency_ns(intended, end));
    observed.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin)
            .count()));
  });
  if (!harness::kLatencyCompiled) GTEST_SKIP() << "latency compiled out";
  ASSERT_EQ(paced.count(), static_cast<std::uint64_t>(kOps));

  // Ops 1..~49 had intended starts during the stall: their CO-aware
  // latency includes the queueing delay. Op i's intended start is at
  // i ms, the backlog drains from ~80 ms, so op i records >= ~(80-i)
  // ms; at least ops 1..40 must exceed 10 ms even under heavy CI
  // scheduling slop.
  std::uint64_t paced_over_10ms = 0, observed_over_10ms = 0;
  const std::uint64_t threshold = 10'000'000;
  for (int i = LatHistogram::bucket_index(threshold) + 1;
       i < LatHistogram::kBuckets; ++i) {
    paced_over_10ms += paced.bucket_count(i);
    observed_over_10ms += observed.bucket_count(i);
  }
  EXPECT_GE(paced_over_10ms, 30u)
      << "fixed-rate mode must charge the stall to the queued ops";
  // The observed-start view sees the stall exactly once (op 0) -- a
  // couple more only if the scheduler preempts this thread mid-loop.
  EXPECT_LE(observed_over_10ms, 5u)
      << "observed-start timing should hide the queueing delay";
  EXPECT_GE(paced.percentile(0.90), threshold);
}

// Regression for the run_team measurement window: thread teardown
// (TLS destructors, kernel exit, join skew) happens *after* the body
// returns and used to be measured, inflating short runs. A body whose
// thread exit path sleeps must not stretch the window.
struct SleepyThreadExit {
  ~SleepyThreadExit() { std::this_thread::sleep_for(std::chrono::milliseconds(150)); }
};

TEST(RunTeam, SleepingAtThreadExitDoesNotInflateTheWindow) {
  const double ms = harness::run_team(
      2,
      [](int) {
        // First touch constructs the thread_local; its destructor runs
        // at thread exit, after the body has returned and stamped its
        // completion time.
        thread_local SleepyThreadExit guard;
        (void)guard;
      },
      /*pin=*/false);
  // The body itself is microseconds; 150 ms of teardown sleep must not
  // appear. Generous bound for loaded CI machines.
  EXPECT_LT(ms, 100.0);
  EXPECT_GE(ms, 0.0);
}

TEST(RunTeam, WindowCoversTheSlowestBody) {
  const double ms = harness::run_team(
      2,
      [](int t) {
        if (t == 1) std::this_thread::sleep_for(std::chrono::milliseconds(30));
      },
      /*pin=*/false);
  EXPECT_GE(ms, 25.0) << "the window must still cover the slowest body";
}

// Driver-level ledger: when recording is on, histogram counts must
// equal the op-call counters exactly, class by class.
TEST(Drivers, RandomMixRecordsEveryOpOnce) {
  if (!harness::kLatencyCompiled) GTEST_SKIP() << "latency compiled out";
  auto set = harness::make_set("singly/ebr");
  ASSERT_NE(set, nullptr);
  LatencyProfile lat;
  const workload::OpMix mix{25, 25, 40, 10};
  const auto r = harness::run_random_mix(
      *set, /*p=*/4, /*c=*/3000, /*prefill=*/200, /*universe=*/1024, mix,
      /*seed=*/7, /*pin=*/false, harness::KeyDist::uniform(),
      workload::ScanWidths{1, 32}, &lat);
  EXPECT_EQ(lat.of(OpClass::kAdd).count(),
            static_cast<std::uint64_t>(r.agg.add_calls));
  EXPECT_EQ(lat.of(OpClass::kRemove).count(),
            static_cast<std::uint64_t>(r.agg.rem_calls));
  EXPECT_EQ(lat.of(OpClass::kContains).count(),
            static_cast<std::uint64_t>(r.agg.con_calls));
  EXPECT_EQ(lat.of(OpClass::kScan).count(),
            static_cast<std::uint64_t>(r.agg.scan_calls));
  EXPECT_EQ(lat.total_count(), static_cast<std::uint64_t>(r.total_ops));
  EXPECT_GT(lat.of(OpClass::kScan).count(), 0u);
}

// The same workload with recording off must produce the identical op
// stream (the RNG draw order is recording-independent). Single worker:
// with p > 1 the success counts depend on interleaving, and this test
// is about the per-worker stream, not the race.
TEST(Drivers, RecordingDoesNotPerturbTheWorkload) {
  const workload::OpMix mix{25, 25, 40, 10};
  auto run = [&](bool record) {
    auto set = harness::make_set("singly");
    LatencyProfile lat;
    const auto r = harness::run_random_mix(
        *set, /*p=*/1, /*c=*/4000, /*prefill=*/100, /*universe=*/512, mix,
        /*seed=*/11, /*pin=*/false, harness::KeyDist::uniform(),
        workload::ScanWidths{1, 16}, record ? &lat : nullptr);
    return r.agg;
  };
  const auto with = run(true);
  const auto without = run(false);
  EXPECT_EQ(with.add_calls, without.add_calls);
  EXPECT_EQ(with.adds, without.adds);
  EXPECT_EQ(with.rem_calls, without.rem_calls);
  EXPECT_EQ(with.rems, without.rems);
  EXPECT_EQ(with.con_calls, without.con_calls);
  EXPECT_EQ(with.scan_calls, without.scan_calls);
  EXPECT_EQ(with.scans, without.scans);
}

// Read-path progress ledger through the driver: the hint index must
// actually fire on a contains-heavy mix (hint_hits > 0), the /nohint
// twin must never report a hit, and restarts must stay proportional to
// ops (bounded retries, per the iset.hpp progress matrix) -- the
// hazard engines revalidate anchors but never livelock.
TEST(Drivers, ReadPathProgressCountersAreBudgeted) {
  const workload::OpMix reads = workload::kReadMostlyMix;
  auto run = [&](std::string_view id) {
    auto set = harness::make_set(id);
    const auto r = harness::run_random_mix(*set, /*p=*/4, /*c=*/3000,
                                           /*prefill=*/500, /*universe=*/4096,
                                           reads, /*seed=*/17, /*pin=*/false);
    std::string err;
    EXPECT_TRUE(set->validate(&err)) << err;
    return r;
  };
  for (const std::string_view id : {"singly", "singly/ebr", "singly/hp"}) {
    const auto r = run(id);
    EXPECT_GT(r.agg.hint_hits, 0) << id;
    EXPECT_LE(r.agg.restarts, r.total_ops * 16 + 4096) << id;
  }
  const auto nohint = run("singly/ebr/nohint");
  EXPECT_EQ(nohint.agg.hint_hits, 0);
}

TEST(Drivers, FixedRateRecordsEveryOpAndReportsBacklog) {
  if (!harness::kLatencyCompiled) GTEST_SKIP() << "latency compiled out";
  auto set = harness::make_set("singly/ebr");
  LatencyProfile lat;
  long behind = -1;
  const workload::OpMix mix{25, 25, 40, 10};
  const auto r = harness::run_fixed_rate(
      *set, /*p=*/2, /*c=*/500, /*prefill=*/100, /*universe=*/512, mix,
      /*seed=*/5, /*pin=*/false, /*rate=*/50000.0, lat, &behind,
      harness::KeyDist::uniform(), workload::ScanWidths{1, 16});
  EXPECT_EQ(lat.total_count(), static_cast<std::uint64_t>(r.total_ops));
  EXPECT_EQ(r.total_ops, 2 * 500);
  EXPECT_GE(behind, 0);
  // Paced at 50k ops/s/worker the run takes >= c/rate seconds.
  EXPECT_GE(r.ms, 500.0 / 50000.0 * 1000.0 * 0.5);
}

}  // namespace
}  // namespace pragmalist
