// Service-mode stress: the soak driver runs every <variant>/ebr|hp
// catalog id with worker threads arriving and departing mid-run, and
// the footprint / limbo-depth series must stay bounded by the live set
// plus per-handle slack -- never by the cumulative churn volume or the
// number of arrivals. Also the concurrent halves of the reclaimer
// departure protocols: HP hazard-slot re-lease and EBR orphan adoption
// while other threads keep operating (run under ASan and TSan in CI,
// label `sanitizer`).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "src/core/iset.hpp"
#include "src/harness/catalog.hpp"
#include "src/harness/thread_team.hpp"
#include "src/service/soak.hpp"
#include "src/workload/rng.hpp"
#include "tests/test_util.hpp"

namespace pragmalist {
namespace {

constexpr int kMaxThreads = 4;
constexpr long kUniverse = 128;

/// Quiescent footprint ceiling (all workers departed): the key
/// universe plus a bounded per-handle / orphan-pool residue.
/// Independent of tick count, op count, and number of arrivals.
std::size_t quiescent_bound() {
  return static_cast<std::size_t>(kUniverse) + (kMaxThreads + 2) * 1500;
}

/// Mid-run ceiling for sample `i` of a series. EBR's in-flight limbo
/// is proportional to the retire *rate*: a descheduled epoch-pinned
/// thread stalls the horizon for a scheduling quantum while the
/// runnable threads keep retiring, so the honest bound is "a couple of
/// tick-windows' worth of operations", not a constant. That is still
/// the property a service needs -- limbo tracks current throughput and
/// drains with it, instead of accumulating with run length -- and the
/// cumulative churn volume stays orders of magnitude above it.
std::size_t sample_bound(const std::vector<service::SoakSample>& series,
                         std::size_t i) {
  const long window = series[i].ops + (i > 0 ? series[i - 1].ops : 0);
  return quiescent_bound() + static_cast<std::size_t>(2 * window);
}

service::SoakConfig short_soak(service::SoakSchedule schedule,
                               std::uint64_t seed) {
  service::SoakConfig cfg;
  cfg.schedule = schedule;
  cfg.max_threads = kMaxThreads;
  cfg.ticks = 10;
  cfg.tick_ms = 25;
  cfg.universe = kUniverse;
  cfg.prefill = kUniverse / 4;
  cfg.seed = seed;
  cfg.pin = false;
  return cfg;
}

class EverySoakCombo : public ::testing::TestWithParam<std::string_view> {};

INSTANTIATE_TEST_SUITE_P(
    Catalog, EverySoakCombo,
    ::testing::ValuesIn(harness::reclaim_variant_ids()),
    [](const ::testing::TestParamInfo<std::string_view>& info) {
      std::string name(info.param);
      for (char& c : name)
        if (c == '/') c = '_';
      return name;
    });

// The acceptance bar of the service-mode subsystem: thread count
// varies mid-run on the ramp schedule and both series stay bounded.
TEST_P(EverySoakCombo, RampSoakKeepsFootprintAndLimboBounded) {
  const std::uint64_t seed = test::env_seed(7);
  test::ReproOnFailure repro(seed);
  auto set = harness::make_set(GetParam());
  const auto cfg = short_soak(service::SoakSchedule::kRamp, seed);
  const auto r = service::run_soak(*set, cfg);

  // The membership actually changed mid-run.
  int min_threads = kMaxThreads + 1, max_threads = 0;
  for (const auto& s : r.series) {
    min_threads = std::min(min_threads, s.threads);
    max_threads = std::max(max_threads, s.threads);
  }
  EXPECT_EQ(min_threads, 1);
  EXPECT_EQ(max_threads, kMaxThreads);
  // A ramp is one monotone up-phase: every worker arrives exactly
  // once (and the down-phase departs all but one of them).
  EXPECT_EQ(r.arrivals, kMaxThreads);

  // Every sample, not just the end state, respects the bound.
  for (std::size_t i = 0; i < r.series.size(); ++i) {
    EXPECT_LE(r.series[i].footprint, sample_bound(r.series, i))
        << "tick " << r.series[i].tick;
    EXPECT_LE(r.series[i].limbo, sample_bound(r.series, i))
        << "tick " << r.series[i].tick;
  }

  // Quiescent integrity and the population ledger, as for every
  // driver.
  std::string err;
  ASSERT_TRUE(set->validate(&err)) << err;
  EXPECT_EQ(static_cast<long>(set->size()),
            cfg.prefill + r.agg.adds - r.agg.rems);
  EXPECT_LE(set->allocated_nodes(), quiescent_bound());
}

// The stragglers schedule is the worst case for departed-thread
// garbage: everyone but one worker leaves at once, and that lone
// straggler must adopt and free what the leavers retired.
TEST_P(EverySoakCombo, StragglersSoakDrainsDepartedGarbage) {
  const std::uint64_t seed = test::env_seed(7);
  test::ReproOnFailure repro(seed);
  auto set = harness::make_set(GetParam());
  const auto cfg = short_soak(service::SoakSchedule::kStragglers, seed);
  const auto r = service::run_soak(*set, cfg);

  for (std::size_t i = 0; i < r.series.size(); ++i)
    EXPECT_LE(r.series[i].footprint, sample_bound(r.series, i))
        << "tick " << r.series[i].tick;

  std::string err;
  ASSERT_TRUE(set->validate(&err)) << err;
  EXPECT_EQ(static_cast<long>(set->size()),
            cfg.prefill + r.agg.adds - r.agg.rems);
  EXPECT_LE(set->limbo_nodes(), quiescent_bound());
}

// Burst schedules spike back up after a quiet phase, so workers
// *re-arrive*: more total arrivals than the pool maximum, each new
// arrival re-leasing a slot some departed worker gave back.
TEST(BurstSoak, ReArrivalsReuseReclaimerSlots) {
  const std::uint64_t seed = test::env_seed(7);
  test::ReproOnFailure repro(seed);
  for (const std::string_view id : {std::string_view("singly_fetch_or/ebr"),
                                    std::string_view("doubly_cursor/hp")}) {
    auto set = harness::make_set(id);
    const auto cfg = short_soak(service::SoakSchedule::kBurst, seed);
    const auto r = service::run_soak(*set, cfg);
    EXPECT_GT(r.arrivals, kMaxThreads) << id;  // the second spike re-hired
    for (std::size_t i = 0; i < r.series.size(); ++i)
      EXPECT_LE(r.series[i].footprint, sample_bound(r.series, i))
          << id << " tick " << r.series[i].tick;
    std::string err;
    ASSERT_TRUE(set->validate(&err)) << id << ": " << err;
    EXPECT_EQ(static_cast<long>(set->size()),
              cfg.prefill + r.agg.adds - r.agg.rems)
        << id;
  }
}

// The sharded soak: dynamic membership over a hash-sharded set. The
// same footprint/limbo bounds apply verbatim because every shard
// shares ONE reclamation domain (domain-wide counters, one reclaim
// handle per worker); and the driver's quiescent per-shard ledger must
// account for every routed operation, workers and prefill alike.
TEST(ShardedSoak, RampSoakStaysBoundedAndLedgersCoverEveryOp) {
  const std::uint64_t seed = test::env_seed(7);
  test::ReproOnFailure repro(seed);
  for (const std::string_view id : {std::string_view("singly/ebr/sh8"),
                                    std::string_view("singly_cursor/hp/sh8"),
                                    std::string_view("doubly/ebr/sh4")}) {
    auto set = harness::make_set(id);
    const auto cfg = short_soak(service::SoakSchedule::kRamp, seed);
    const auto r = service::run_soak(*set, cfg);

    for (std::size_t i = 0; i < r.series.size(); ++i) {
      EXPECT_LE(r.series[i].footprint, sample_bound(r.series, i))
          << id << " tick " << r.series[i].tick;
      EXPECT_LE(r.series[i].limbo, sample_bound(r.series, i))
          << id << " tick " << r.series[i].tick;
    }

    std::string err;
    ASSERT_TRUE(set->validate(&err)) << id << ": " << err;
    EXPECT_EQ(static_cast<long>(set->size()),
              cfg.prefill + r.agg.adds - r.agg.rems)
        << id;
    EXPECT_LE(set->allocated_nodes(), quiescent_bound()) << id;

    // The driver captured the quiescent per-shard ledger: every worker
    // op plus the prefill handle's attempts, nothing lost.
    ASSERT_EQ(static_cast<int>(r.shard_ops.size()), set->shard_count())
        << id;
    long routed = 0;
    for (const long ops : r.shard_ops) routed += ops;
    EXPECT_GE(routed, r.total_ops() + cfg.prefill) << id;
  }
}

// Concurrent HP slot re-lease: a long-lived cursor-holding churner
// runs while two other threads cycle through far more handles than the
// domain has hazard slots (256), each departure orphaning retirees.
// Exercised under TSan in CI; the bound proves adoption keeps up.
TEST(ConcurrentSlotReuse, HpHandleChurnAgainstLiveCursorTraffic) {
  const std::uint64_t seed = test::env_seed(11);
  test::ReproOnFailure repro(seed);
  auto set = harness::make_set("singly_cursor/hp");
  constexpr int kCyclesPerThread = 150;  // 2 x 150 + 1 > 256 slots
  harness::run_team(
      3,
      [&](int t) {
        workload::Rng rng(workload::thread_seed(seed, t));
        if (t == 0) {
          // Long-lived handle: its persistent cursor cell must never
          // be spoofed by departing threads' slot hand-overs.
          auto h = set->make_handle();
          for (long i = 0; i < 12000; ++i) {
            const long k = static_cast<long>(rng.below(kUniverse));
            const auto roll = rng.below(100);
            if (roll < 40)
              h->add(k);
            else if (roll < 80)
              h->remove(k);
            else
              h->contains(k);
          }
        } else {
          for (int c = 0; c < kCyclesPerThread; ++c) {
            auto h = set->make_handle();
            for (long i = 0; i < 40; ++i) {
              const long k = static_cast<long>(rng.below(kUniverse));
              if (rng.below(2) == 0)
                h->add(k);
              else
                h->remove(k);
            }
          }
        }
      },
      /*pin=*/false);

  std::string err;
  ASSERT_TRUE(set->validate(&err)) << err;
  EXPECT_LE(set->allocated_nodes(), quiescent_bound());
  EXPECT_LE(set->limbo_nodes(), quiescent_bound());
}

// Concurrent EBR orphan adoption: handle churn on one side, a
// continuously collecting survivor on the other. Departures park young
// bags in the orphan pool; the survivor's guard-release passes must
// drain it, or the footprint outgrows the bound.
TEST(ConcurrentSlotReuse, EbrHandleChurnIsAdoptedByTheSurvivor) {
  const std::uint64_t seed = test::env_seed(13);
  test::ReproOnFailure repro(seed);
  for (const std::string_view id :
       {std::string_view("singly/ebr"), std::string_view("doubly/ebr")}) {
    auto set = harness::make_set(id);
    harness::run_team(
        3,
        [&](int t) {
          workload::Rng rng(workload::thread_seed(seed, t));
          if (t == 0) {
            auto h = set->make_handle();
            for (long i = 0; i < 12000; ++i) {
              const long k = static_cast<long>(rng.below(kUniverse));
              if (rng.below(2) == 0)
                h->add(k);
              else
                h->remove(k);
            }
          } else {
            for (int c = 0; c < 150; ++c) {
              auto h = set->make_handle();
              for (long i = 0; i < 40; ++i) {
                const long k = static_cast<long>(rng.below(kUniverse));
                if (rng.below(2) == 0)
                  h->add(k);
                else
                  h->remove(k);
              }
            }
          }
        },
        /*pin=*/false);

    std::string err;
    ASSERT_TRUE(set->validate(&err)) << id << ": " << err;
    EXPECT_LE(set->allocated_nodes(), quiescent_bound()) << id;
    EXPECT_LE(set->limbo_nodes(), quiescent_bound()) << id;
  }
}

}  // namespace
}  // namespace pragmalist
