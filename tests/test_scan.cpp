// Tier-1 semantics for the range-scan API: range_scan()/ascend() vs a
// std::set oracle over every catalog id (including hash-sharded sets,
// whose scans are k-way merges and must come back globally sorted),
// the paging contract, the scans/scan_calls counter ledger, and the
// quiescent identity full-range scan == snapshot(). Concurrency is the
// stress tier's job (test_linearizability, test_reclaim_churn).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/harness/catalog.hpp"
#include "src/workload/rng.hpp"
#include "tests/test_util.hpp"

namespace pragmalist {
namespace {

constexpr long kUniverse = 512;

/// Every unsharded catalog id plus a sharded sample of each merge
/// flavor (arena, EBR, HP, and the Michael baselines).
std::vector<std::string_view> scan_ids() {
  std::vector<std::string_view> ids = harness::all_variant_ids();
  static const std::vector<std::string> sharded = {
      "singly/ebr/sh4",  "singly_cursor/hp/sh4", "doubly_cursor/sh8",
      "hp_michael/sh4",  "ebr_michael/sh4",      "singly/sh3",
      "unrolled_k8/ebr/sh4",  // fat-node pages feeding the k-way merge
  };
  for (const auto& s : sharded) ids.push_back(s);
  return ids;
}

class EveryScannable : public ::testing::TestWithParam<std::string_view> {};

INSTANTIATE_TEST_SUITE_P(
    Catalog, EveryScannable, ::testing::ValuesIn(scan_ids()),
    [](const ::testing::TestParamInfo<std::string_view>& info) {
      std::string name(info.param);
      for (char& c : name)
        if (c == '/') c = '_';
      return name;
    });

/// Random membership churn mirrored into a std::set oracle.
std::set<long> populate(core::ISetHandle& h, std::uint64_t seed) {
  std::set<long> oracle;
  workload::Rng rng(seed);
  for (int i = 0; i < 600; ++i) {
    const long k = static_cast<long>(rng.below(kUniverse));
    if (rng.below(4) == 0) {
      h.remove(k);
      oracle.erase(k);
    } else {
      h.add(k);
      oracle.insert(k);
    }
  }
  return oracle;
}

TEST_P(EveryScannable, RangeScanMatchesASetOracle) {
  auto set = harness::make_set(GetParam());
  auto h = set->make_handle();
  const std::uint64_t seed = test::env_seed(7);
  test::ReproOnFailure repro(seed);
  const std::set<long> oracle = populate(*h, seed);

  const std::pair<long, long> windows[] = {
      {0, kUniverse - 1},                     // the whole universe
      {17, 93},                               // interior window
      {100, 100},                             // single key
      {200, 150},                             // empty: lo > hi
      {-50, 40},                              // partially below range
      {kUniverse - 30, kUniverse + 100},      // past the top
      {std::numeric_limits<long>::min(),
       std::numeric_limits<long>::max()},     // full range
  };
  for (const auto& [lo, hi] : windows) {
    std::vector<long> got;
    const long n = h->range_scan(lo, hi, [&](long k) { got.push_back(k); });
    EXPECT_EQ(n, static_cast<long>(got.size())) << GetParam();
    std::vector<long> want;
    for (const long k : oracle)
      if (k >= lo && k <= hi) want.push_back(k);
    EXPECT_EQ(got, want) << GetParam() << " window [" << lo << ", " << hi
                         << "]";
  }
}

TEST_P(EveryScannable, QuiescentFullScanIsTheSnapshot) {
  auto set = harness::make_set(GetParam());
  auto h = set->make_handle();
  const std::uint64_t seed = test::env_seed(11);
  test::ReproOnFailure repro(seed);
  populate(*h, seed);
  std::vector<long> scanned;
  h->range_scan(std::numeric_limits<long>::min(),
                std::numeric_limits<long>::max(),
                [&](long k) { scanned.push_back(k); });
  EXPECT_EQ(scanned, set->snapshot()) << GetParam();
  EXPECT_TRUE(std::is_sorted(scanned.begin(), scanned.end()));
}

TEST_P(EveryScannable, AscendPagesTheWholeKeySpace) {
  auto set = harness::make_set(GetParam());
  auto h = set->make_handle();
  const std::uint64_t seed = test::env_seed(13);
  test::ReproOnFailure repro(seed);
  populate(*h, seed);

  // Page with an odd size so the last page is short; the concatenation
  // must be exactly the snapshot, each page internally sorted and
  // strictly after the previous one.
  constexpr std::size_t kPage = 37;
  std::vector<long> paged;
  long from = std::numeric_limits<long>::min();
  for (;;) {
    const std::vector<long> page = h->ascend(from, kPage);
    ASSERT_TRUE(std::is_sorted(page.begin(), page.end())) << GetParam();
    if (!paged.empty() && !page.empty()) {
      ASSERT_GT(page.front(), paged.back()) << GetParam();
    }
    paged.insert(paged.end(), page.begin(), page.end());
    if (page.size() < kPage) break;  // key space exhausted
    from = page.back() + 1;
  }
  EXPECT_EQ(paged, set->snapshot()) << GetParam();

  // Degenerate pages.
  EXPECT_TRUE(h->ascend(0, 0).empty());
  EXPECT_TRUE(h->ascend(kUniverse + 1000, 8).empty());
}

TEST_P(EveryScannable, ScanCountersLedger) {
  auto set = harness::make_set(GetParam());
  auto h = set->make_handle();
  for (long k = 0; k < 10; ++k) ASSERT_TRUE(h->add(k));

  const core::OpCounters before = h->counters();
  EXPECT_EQ(h->range_scan(2, 5, [](long) {}), 4);
  EXPECT_EQ(h->ascend(0, 3), (std::vector<long>{0, 1, 2}));
  const core::OpCounters after = h->counters();

  EXPECT_EQ(after.scan_calls - before.scan_calls, 2) << GetParam();
  EXPECT_EQ(after.scans - before.scans, 7) << GetParam();
  // Scan calls are operations: the throughput ledger counts them.
  EXPECT_EQ(after.total_ops() - before.total_ops(), 2) << GetParam();
  // Point-op ledgers are untouched by scanning.
  EXPECT_EQ(after.adds, before.adds);
  EXPECT_EQ(after.cons, before.cons);
}

// The k-way merge must interleave shards, not concatenate them: with a
// dense key range over 8 shards, consecutive scanned keys come from
// different shards (the hash partition scatters neighbors), so a
// per-shard-concatenation bug cannot produce a sorted result.
TEST(ShardedScan, MergeInterleavesShardsGloballySorted) {
  auto sharded = harness::make_set("singly/ebr/sh8");
  auto oracle = harness::make_set("singly");
  auto sh = sharded->make_handle();
  auto oh = oracle->make_handle();
  for (long k = 0; k < 256; ++k) {
    ASSERT_TRUE(sh->add(k));
    ASSERT_TRUE(oh->add(k));
  }
  for (const auto& [lo, hi] :
       std::vector<std::pair<long, long>>{{0, 255}, {31, 97}, {250, 900}}) {
    std::vector<long> got, want;
    sh->range_scan(lo, hi, [&](long k) { got.push_back(k); });
    oh->range_scan(lo, hi, [&](long k) { want.push_back(k); });
    EXPECT_EQ(got, want) << "[" << lo << ", " << hi << "]";
  }
  // Paging across shard boundaries: page size far below the per-shard
  // key count forces multiple refills per shard cursor.
  std::vector<long> paged;
  long from = 0;
  for (;;) {
    const auto page = sh->ascend(from, 10);
    paged.insert(paged.end(), page.begin(), page.end());
    if (page.size() < 10) break;
    from = page.back() + 1;
  }
  EXPECT_EQ(paged, sharded->snapshot());
}

}  // namespace
}  // namespace pragmalist
