// Tier-1 units for the shard layer:
//  * shard_map -- deterministic, in-range, every shard reachable, and
//    roughly uniform over the dense key ranges the benches use (the
//    reason the mapper mixes instead of key % shards);
//  * ShardedSet -- one ISet over N lists: membership/size/snapshot
//    aggregation matches an unsharded oracle, snapshot() is globally
//    sorted, validate() runs every shard;
//  * per-shard ledgers -- shard_ops() sums to the attempts routed and
//    every op lands on shard_of(key); shard_sizes() sums to size();
//  * catalog ids -- `<base>/shN` parses for any N, name() keeps the
//    full id, shard_count() reports N, unsharded ids report the
//    defaults; zipf-skewed streams concentrate on hot shards (the
//    shard-load report the skew benches print).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "src/harness/catalog.hpp"
#include "src/harness/table.hpp"
#include "src/shard/shard_map.hpp"
#include "src/shard/sharded_set.hpp"
#include "src/workload/distributions.hpp"
#include "src/workload/rng.hpp"

namespace pragmalist {
namespace {

// --- the mapper ------------------------------------------------------

TEST(ShardMap, DeterministicAndInRange) {
  for (const std::size_t shards : {1u, 2u, 7u, 8u, 16u}) {
    for (long key = -100; key < 4096; ++key) {
      const std::size_t s = shard::shard_of(key, shards);
      ASSERT_LT(s, shards);
      ASSERT_EQ(s, shard::shard_of(key, shards)) << "not a pure function";
    }
  }
}

TEST(ShardMap, EveryShardReachableOverADenseRange) {
  for (const std::size_t shards : {2u, 4u, 8u, 16u, 64u}) {
    std::set<std::size_t> hit;
    for (long key = 0; key < 1024; ++key)
      hit.insert(shard::shard_of(key, shards));
    EXPECT_EQ(hit.size(), shards) << shards << " shards";
  }
}

TEST(ShardMap, RoughlyUniformOverDenseKeys) {
  // The bench universes are dense [0, u); the mixed map must spread
  // them within ~25% of the ideal per-shard share.
  constexpr std::size_t kShards = 8;
  constexpr long kKeys = 64 * 1024;
  std::vector<long> count(kShards, 0);
  for (long key = 0; key < kKeys; ++key)
    ++count[shard::shard_of(key, kShards)];
  const long ideal = kKeys / kShards;
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(count[s], ideal * 3 / 4) << "shard " << s;
    EXPECT_LT(count[s], ideal * 5 / 4) << "shard " << s;
  }
}

// --- aggregation over the catalog ------------------------------------

TEST(ShardedSet, MembershipAndSnapshotMatchAnUnshardedOracle) {
  for (const auto& id :
       {std::string("singly/ebr/sh4"), std::string("singly_cursor/hp/sh4"),
        std::string("doubly_cursor/sh8")}) {
    auto sharded = harness::make_set(id);
    auto oracle = harness::make_set("singly");
    auto sh = sharded->make_handle();
    auto oh = oracle->make_handle();
    workload::Rng rng(17);
    for (int i = 0; i < 4000; ++i) {
      const long key = static_cast<long>(rng.below(256));
      if (rng.below(3) == 0)
        ASSERT_EQ(sh->remove(key), oh->remove(key)) << id << " op " << i;
      else
        ASSERT_EQ(sh->add(key), oh->add(key)) << id << " op " << i;
    }
    for (long key = 0; key < 256; ++key)
      ASSERT_EQ(sh->contains(key), oh->contains(key)) << id << " key " << key;

    std::string err;
    ASSERT_TRUE(sharded->validate(&err)) << id << ": " << err;
    EXPECT_EQ(sharded->size(), oracle->size()) << id;
    const auto snap = sharded->snapshot();
    EXPECT_EQ(snap, oracle->snapshot()) << id;
    EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end())) << id;
  }
}

TEST(ShardedSet, PerShardLedgersSumAndRouteByTheMapper) {
  auto set = harness::make_set("singly/ebr/sh8");
  ASSERT_EQ(set->shard_count(), 8);
  constexpr long kOps = 3000;
  std::vector<long> expected(8, 0);
  {
    auto h = set->make_handle();
    workload::Rng rng(23);
    for (long i = 0; i < kOps; ++i) {
      const long key = static_cast<long>(rng.below(512));
      ++expected[shard::shard_of(key, 8)];
      switch (rng.below(3)) {
        case 0: h->add(key); break;
        case 1: h->remove(key); break;
        default: h->contains(key); break;
      }
    }
  }  // handle closed: ledgers folded

  const auto ops = set->shard_ops();
  ASSERT_EQ(ops.size(), 8u);
  EXPECT_EQ(ops, expected);  // every op routed exactly by shard_of
  EXPECT_EQ(std::accumulate(ops.begin(), ops.end(), 0L), kOps);

  const auto sizes = set->shard_sizes();
  ASSERT_EQ(sizes.size(), 8u);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}),
            set->size());
}

TEST(ShardedSet, CatalogIdsParseAndReport) {
  for (const auto& [id, shards] :
       std::vector<std::pair<std::string, int>>{{"singly/ebr/sh4", 4},
                                                {"draconic/hp/sh16", 16},
                                                {"singly_fetch_or/sh2", 2},
                                                {"hp_michael/sh8", 8},
                                                {"ebr_michael/sh8", 8},
                                                {"doubly/ebr/sh1", 1}}) {
    auto set = harness::make_set(id);
    EXPECT_EQ(set->name(), id);
    EXPECT_EQ(set->shard_count(), shards) << id;
    auto h = set->make_handle();
    EXPECT_TRUE(h->add(7));
    EXPECT_TRUE(h->contains(7));
    EXPECT_TRUE(h->remove(7));
  }
  // Every id of the sharded showcase grid constructs.
  for (const auto id : harness::sharded_variant_ids()) {
    auto set = harness::make_set(id);
    EXPECT_EQ(set->shard_count(), 4) << id;
  }
  // Unsharded structures keep the defaults.
  auto plain = harness::make_set("singly");
  EXPECT_EQ(plain->shard_count(), 1);
  EXPECT_TRUE(plain->shard_ops().empty());
  EXPECT_TRUE(plain->shard_sizes().empty());
  EXPECT_FALSE(harness::shard_load(*plain).sharded());
  EXPECT_TRUE(harness::shard_load_line(*plain).empty());
}

// A zipf-skewed stream must concentrate on hot shards: the per-shard
// load report exists to make that visible, so pin the mechanism --
// same keys -> same shards, hot ranks -> few shards.
TEST(ShardedSet, ZipfSkewConcentratesOnHotShards) {
  auto set = harness::make_set("singly/ebr/sh8");
  {
    auto h = set->make_handle();
    const workload::ZipfKeys zipf(4096, 0.99);
    workload::Rng rng(31);
    for (int i = 0; i < 20000; ++i) h->contains(zipf(rng));
  }
  const harness::ShardLoad load = harness::shard_load(*set);
  ASSERT_TRUE(load.sharded());
  // Rank 1 alone carries ~11% of a theta=0.99 stream over 4096 keys,
  // so the shard it hashes to must clearly dominate the coldest shard
  // (the same stream spread uniformly lands near max/min = 1.03).
  EXPECT_GT(load.max_ops, 2 * std::max(load.min_ops, 1L));
  EXPECT_GT(load.imbalance(), 1.8);
}

}  // namespace
}  // namespace pragmalist
