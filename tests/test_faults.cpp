// The deterministic fault tier (tier1 + `faults` labels, re-run under
// ASan and TSan in CI): crash-faulty workers against every reclaim
// policy, with hand-computed blast-radius ledgers at the domain level
// and a short fault-soak across the whole <variant>/ebr|hp grid.
//
// The taxonomy under test (src/faults/faults.hpp):
//   guard-held abort   -- EBR's horizon stalls until the lease is
//                         reaped; HP merely quarantines what the dead
//                         cells name.
//   depart-no-release  -- parked limbo is unadoptable until the reap;
//                         under HP exactly the persistent cursor cell
//                         stays published.
//   retire-skipped     -- a real leak, attributed (never in limbo) and
//                         freed only at teardown.
//   mid-op abandon     -- a marked-but-linked node only the survivors'
//                         cooperative helping ever cleans up.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/iset.hpp"
#include "src/faults/faults.hpp"
#include "src/harness/catalog.hpp"
#include "src/reclaim/ebr.hpp"
#include "src/reclaim/hp.hpp"
#include "src/service/soak.hpp"
#include "tests/test_util.hpp"

namespace pragmalist {
namespace {

using faults::FaultKind;

/// Node whose destructor reports into a shared counter, so the tests
/// observe exactly when the policy frees (same shape as the reclaim
/// unit tier in test_service_schedule.cpp).
struct CountingNode {
  explicit CountingNode(std::atomic<int>* f) : freed(f) {}
  ~CountingNode() { freed->fetch_add(1, std::memory_order_relaxed); }
  std::atomic<int>* freed;
  CountingNode* reg_next = nullptr;  // for the HP orphan stack
};

// --- FaultPlan ------------------------------------------------------

TEST(FaultPlan, MixIsDeterministicAndCoversEveryKind) {
  const auto a = faults::FaultPlan::mix(/*seed=*/99, /*n=*/8,
                                        /*max_worker=*/16,
                                        /*min_ordinal=*/10,
                                        /*max_ordinal=*/500);
  const auto b = faults::FaultPlan::mix(99, 8, 16, 10, 500);
  ASSERT_EQ(a.size(), 8u);
  // Same seed, same plan: entry-for-entry identical.
  auto ib = b.entries().begin();
  for (const auto& [w, spec] : a.entries()) {
    EXPECT_EQ(w, ib->first);
    EXPECT_EQ(spec.op_ordinal, ib->second.op_ordinal);
    EXPECT_EQ(spec.kind, ib->second.kind);
    ++ib;
  }
  // Kinds cycle: 8 faults over 4 kinds = exactly 2 of each; workers
  // are distinct (map keys) in range; ordinals in range.
  for (const FaultKind k : faults::kAllFaultKinds) EXPECT_EQ(a.count(k), 2);
  for (const auto& [w, spec] : a.entries()) {
    EXPECT_GE(w, 0);
    EXPECT_LT(w, 16);
    EXPECT_GE(spec.op_ordinal, 10);
    EXPECT_LE(spec.op_ordinal, 500);
  }
  // Unplanned workers are well-behaved.
  int planned = 0;
  for (int w = 0; w < 16; ++w) planned += a.find(w) != nullptr;
  EXPECT_EQ(planned, 8);
  EXPECT_EQ(a.find(16), nullptr);
}

// --- EBR blast radius (hand-computed ledgers) -----------------------

// A guard-held abort pins the dead slot at the current epoch: the
// horizon may advance at most once past the pin and then stalls, so
// nothing retired at or after the crash frees -- until reap_crashed
// unpins the lease and hands its parked limbo to the orphan pool,
// where a survivor's collect() adopts and frees it.
TEST(EbrFaults, GuardHeldStallsHorizonUntilReapThenResumes) {
  std::atomic<int> freed{0};
  reclaim::Ebr<CountingNode> d;
  auto survivor = d.make_handle();
  auto victim = d.make_handle();

  // The victim has one node of its own in limbo when it crashes.
  auto* parked = new CountingNode(&freed);
  d.track(parked);
  {
    auto g = victim.guard();
    victim.retire(parked);
  }
  victim.abandon(FaultKind::kAbortWithGuardHeld);

  // Ledger after the crash: one crashed slot, its one node parked
  // (still counted by limbo_nodes), nothing attributed as leaked.
  faults::BlastStats b = d.blast_stats();
  EXPECT_EQ(b.crashed_slots, 1u);
  EXPECT_EQ(b.parked_limbo, 1u);
  EXPECT_EQ(b.leaked_nodes, 0u);
  EXPECT_EQ(d.limbo_nodes(), 1u);

  // The survivor retires a node and collects hard: the dead pin caps
  // min_pinned_epoch, so the bag can never age two epochs and nothing
  // frees. The horizon lag is visible and persistent.
  auto* stalled = new CountingNode(&freed);
  d.track(stalled);
  {
    auto g = survivor.guard();
    survivor.retire(stalled);
  }
  for (int i = 0; i < 10; ++i) survivor.collect();
  EXPECT_EQ(freed.load(), 0);
  EXPECT_GE(d.blast_stats().horizon_lag, 1u);

  // Supervisor reap: the pin lifts, the parked node joins the orphan
  // pool, and the survivor's next collects free both nodes.
  EXPECT_EQ(d.reap_crashed(), 1u);
  b = d.blast_stats();
  EXPECT_EQ(b.crashed_slots, 0u);
  EXPECT_EQ(b.parked_limbo, 0u);
  for (int i = 0; i < 5; ++i) survivor.collect();
  EXPECT_EQ(freed.load(), 2);
  EXPECT_EQ(d.limbo_nodes(), 0u);
  EXPECT_EQ(d.reap_crashed(), 0u);  // nothing left to reap
}

// Depart-without-release does not stall the horizon (no pin), but the
// crashed lease's limbo is parked where no survivor can adopt it: only
// the reap hands it over.
TEST(EbrFaults, DepartWithoutReleaseParksLimboUnadoptable) {
  std::atomic<int> freed{0};
  reclaim::Ebr<CountingNode> d;
  auto survivor = d.make_handle();
  auto victim = d.make_handle();

  auto* parked = new CountingNode(&freed);
  d.track(parked);
  {
    auto g = victim.guard();
    victim.retire(parked);
  }
  victim.abandon(FaultKind::kDepartWithoutRelease);

  // No pin left behind: the epoch advances freely... but the parked
  // node is not in any survivor's bag or the orphan pool, so no amount
  // of collecting reaches it.
  for (int i = 0; i < 10; ++i) survivor.collect();
  EXPECT_EQ(freed.load(), 0);
  EXPECT_EQ(d.limbo_nodes(), 1u);
  EXPECT_EQ(d.blast_stats().parked_limbo, 1u);
  EXPECT_EQ(d.blast_stats().crashed_slots, 1u);

  EXPECT_EQ(d.reap_crashed(), 1u);
  for (int i = 0; i < 5; ++i) survivor.collect();
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(d.limbo_nodes(), 0u);
}

// A reaped slot is re-leasable: the crashed worker's replacement gets
// a working lease (regression guard for the slot-release ordering in
// reap_crashed).
TEST(EbrFaults, ReapedSlotCanBeReLeased) {
  reclaim::Ebr<CountingNode> d;
  std::vector<reclaim::Ebr<CountingNode>::Handle> handles;
  for (int i = 0; i < reclaim::Ebr<CountingNode>::kMaxHandles - 1; ++i)
    handles.push_back(d.make_handle());
  auto victim = d.make_handle();  // the last free slot
  victim.abandon(FaultKind::kAbortWithGuardHeld);
  EXPECT_EQ(d.reap_crashed(), 1u);
  auto replacement = d.make_handle();  // would abort if the slot leaked
  { auto g = replacement.guard(); }
}

// --- HP blast radius (hand-computed ledgers) ------------------------

// Guard-held abort under HP: every published cell of the dead lease
// keeps quarantining its node -- and *only* its node; unprotected
// retirees free as usual. This is the whole blast radius (contrast the
// EBR horizon stall above).
TEST(HpFaults, GuardHeldCellsQuarantineExactlyTheirNodes) {
  std::atomic<int> freed{0};
  reclaim::Hp<CountingNode> d;
  auto survivor = d.make_handle();
  auto victim = d.make_handle();

  auto* pinned = new CountingNode(&freed);
  auto* unpinned = new CountingNode(&freed);
  d.track(pinned);
  d.track(unpinned);
  victim.protect(0, pinned);  // mid-traversal when the crash hits
  victim.abandon(FaultKind::kAbortWithGuardHeld);

  faults::BlastStats b = d.blast_stats();
  EXPECT_EQ(b.crashed_slots, 1u);
  EXPECT_EQ(b.leaked_cells, 1u);  // exactly the one published cell
  EXPECT_EQ(b.parked_limbo, 0u);  // the victim had retired nothing

  // The survivor retires both: the dead cell saves its node from every
  // scan, the other frees immediately.
  survivor.retire(pinned);
  survivor.retire(unpinned);
  survivor.collect();
  EXPECT_EQ(freed.load(), 1);
  EXPECT_EQ(d.limbo_nodes(), 1u);

  // Reap clears the dead cells; the quarantined node frees on the next
  // scan.
  EXPECT_EQ(d.reap_crashed(), 1u);
  EXPECT_EQ(d.blast_stats().leaked_cells, 0u);
  survivor.collect();
  EXPECT_EQ(freed.load(), 2);
  EXPECT_EQ(d.limbo_nodes(), 0u);
}

// Depart-without-release under HP: the worker died *between*
// operations, so the traversal cells are clear but the persistent
// cursor cell (highest slot, by convention) is still published, and
// the parked retire bag is unadoptable until the reap.
TEST(HpFaults, DepartWithoutReleaseLeaksOnlyTheCursorCell) {
  constexpr int kSlots = reclaim::Hp<CountingNode>::kSlots;
  std::atomic<int> freed{0};
  reclaim::Hp<CountingNode> d;
  auto survivor = d.make_handle();
  auto victim = d.make_handle();

  auto* cursor_node = new CountingNode(&freed);
  auto* walk_node = new CountingNode(&freed);
  auto* bagged = new CountingNode(&freed);
  d.track(cursor_node);
  d.track(walk_node);
  d.track(bagged);
  victim.protect(0, walk_node);             // stale traversal cell
  victim.protect(kSlots - 1, cursor_node);  // persistent cursor cell
  victim.retire(bagged);
  victim.abandon(FaultKind::kDepartWithoutRelease);

  faults::BlastStats b = d.blast_stats();
  EXPECT_EQ(b.crashed_slots, 1u);
  EXPECT_EQ(b.leaked_cells, 1u);  // the cursor cell alone survived
  EXPECT_EQ(b.parked_limbo, 1u);  // the bagged node, still in limbo
  EXPECT_EQ(d.limbo_nodes(), 1u);

  // walk_node's cell was cleared by the crash path, so it frees; the
  // cursor node stays quarantined; the parked bag is out of reach.
  survivor.retire(cursor_node);
  survivor.retire(walk_node);
  survivor.collect();
  EXPECT_EQ(freed.load(), 1);

  EXPECT_EQ(d.reap_crashed(), 1u);
  survivor.collect();  // adopts the orphaned bag + un-quarantined node
  EXPECT_EQ(freed.load(), 3);
  EXPECT_EQ(d.limbo_nodes(), 0u);
  EXPECT_EQ(d.blast_stats().parked_limbo, 0u);
}

// --- engine-level op faults over the catalog ------------------------

// The unrolled fat-node engine packs up to 8 keys per node, so a
// faulty remove only leaks (or abandons) a *node* when it empties one.
// To put the unrolled ids through the same node-level blast shapes as
// the singly families, drain the 0..9 prefill down to {3, 5}: the
// split left A{0,1,2,3} anchored at 0 and B{4..9} anchored at 4, and
// this removal order never empties a node and never makes a merge
// eligible (one side always holds too many keys for the both-fit
// ceiling, and the tail node has no right sibling to absorb). End
// state: key 3 alone in A, key 5 alone in B -- a faulty remove of 5 is
// exactly a node-emptying remove.
bool is_unrolled(std::string_view id) {
  return id.find("unrolled") != std::string_view::npos;
}

void drain_to_singleton_nodes(core::ISetHandle& h) {
  for (const long k : {0L, 1L, 2L, 4L, 6L, 7L, 8L, 9L})
    ASSERT_TRUE(h.remove(k)) << k;
}

class EveryFaultCombo : public ::testing::TestWithParam<std::string_view> {};

INSTANTIATE_TEST_SUITE_P(
    Catalog, EveryFaultCombo,
    ::testing::ValuesIn(harness::reclaim_variant_ids()),
    [](const ::testing::TestParamInfo<std::string_view>& info) {
      std::string name(info.param);
      for (char& c : name)
        if (c == '/') c = '_';
      return name;
    });

// kRetireSkipped: a full remove whose retire never happened. The node
// leaves the set and the *limbo ledger never sees it* -- it is
// attributed as leaked instead, so footprint = live + limbo + leaked
// still balances (delta form below; freed at domain teardown, which
// ASan verifies).
TEST_P(EveryFaultCombo, RetireSkippedLeaksOutsideLimbo) {
  const bool unrolled = is_unrolled(GetParam());
  auto set = harness::make_set(GetParam());
  {
    auto h = set->make_handle();
    for (long k = 0; k < 10; ++k) ASSERT_TRUE(h->add(k));
    if (unrolled) drain_to_singleton_nodes(*h);
  }
  const std::size_t live_before = unrolled ? 2u : 10u;
  ASSERT_EQ(set->size(), live_before);
  const std::size_t allocated_before = set->allocated_nodes();
  const std::size_t limbo_before = set->limbo_nodes();

  auto victim = set->make_handle();
  victim->abandon(FaultKind::kRetireSkipped, 5);
  // The botched remove still counts as a remove, so the population
  // ledger balances across the crash.
  EXPECT_EQ(victim->counters().rem_calls, 1);
  EXPECT_EQ(victim->counters().rems, 1);
  victim.reset();

  EXPECT_EQ(set->size(), live_before - 1);
  std::string err;
  ASSERT_TRUE(set->validate(&err)) << err;
  EXPECT_EQ(set->allocated_nodes(), allocated_before);  // nothing freed
  EXPECT_EQ(set->limbo_nodes(), limbo_before);          // nothing retired
  EXPECT_EQ(set->blast_stats().leaked_nodes, 1u);       // ...attributed
  // Slab-leak attribution: the catalog default is slab mode, so that
  // one leaked node pins exactly one 16 KiB slab out of
  // release_empty_slabs() until domain teardown.
  EXPECT_EQ(set->blast_stats().leaked_slabs, 1u);
  {
    auto h = set->make_handle();
    EXPECT_FALSE(h->contains(5));
    EXPECT_TRUE(h->add(5));  // the key is genuinely gone, not hidden
  }
}

// kMidOpAbandon: the crash wins the marking CAS and vanishes before
// the unlink. The node is logically deleted but physically linked --
// excluded from size() and unremovable, and only the survivors'
// cooperative helping (the paper's core mechanism) ever unlinks it.
TEST_P(EveryFaultCombo, MidOpAbandonLeavesMarkedNodeForTheHelpers) {
  const bool unrolled = is_unrolled(GetParam());
  auto set = harness::make_set(GetParam());
  {
    auto h = set->make_handle();
    for (long k = 0; k < 10; ++k) ASSERT_TRUE(h->add(k));
    // For unrolled this makes the abandoned remove of 5 empty its fat
    // node, so the crash leaves a marked-but-linked *node* corpse just
    // like the singly families (a non-emptying remove would leave
    // nothing for the helpers to do).
    if (unrolled) drain_to_singleton_nodes(*h);
  }
  const std::size_t live_before = unrolled ? 2u : 10u;
  auto victim = set->make_handle();
  victim->abandon(FaultKind::kMidOpAbandon, 5);
  EXPECT_EQ(victim->counters().rems, 1);  // the marked key left the set
  victim.reset();

  EXPECT_EQ(set->size(), live_before - 1);  // marked-but-linked not live
  std::string err;
  ASSERT_TRUE(set->validate(&err)) << err;

  auto h = set->make_handle();
  EXPECT_FALSE(h->remove(5));  // already logically deleted
  EXPECT_TRUE(h->add(5));      // survivors sweep past the corpse
  EXPECT_TRUE(h->contains(5));
  EXPECT_EQ(set->size(), live_before);
  ASSERT_TRUE(set->validate(&err)) << err;
}

// --- the arena is fault-oblivious -----------------------------------

// No guard to leak, no retire to skip, no departure protocol: every
// fault costs an arena worker exactly what a clean exit does. Blast
// stats stay all-zero and there is never a lease to reap. Holds for
// the per-key and the fat-node arena engines alike.
TEST(ArenaFaults, EveryFaultKindIsFreeByConstruction) {
  for (const std::string_view id :
       {std::string_view("singly"), std::string_view("unrolled_k8")}) {
    auto set = harness::make_set(id);
    {
      auto h = set->make_handle();
      for (long k = 0; k < 10; ++k) ASSERT_TRUE(h->add(k));
    }
    long removed = 0;
    for (const FaultKind k : faults::kAllFaultKinds) {
      auto victim = set->make_handle();
      victim->abandon(k, removed);  // op-level kinds remove 0 then 1
      removed += faults::is_op_fault(k);
    }
    EXPECT_EQ(set->size(), static_cast<std::size_t>(10 - removed)) << id;
    std::string err;
    ASSERT_TRUE(set->validate(&err)) << id << ": " << err;
    const faults::BlastStats b = set->blast_stats();
    EXPECT_EQ(b.leaked_nodes, 0u) << id;
    EXPECT_EQ(b.crashed_slots, 0u) << id;
    EXPECT_EQ(b.leaked_cells, 0u) << id;
    EXPECT_EQ(b.parked_limbo, 0u) << id;
    EXPECT_EQ(b.horizon_lag, 0u) << id;
    EXPECT_EQ(b.leaked_slabs, 0u) << id;
    EXPECT_EQ(set->reap_crashed(), 0u) << id;
  }
}

// --- the fault soak over the whole grid -----------------------------

constexpr int kMaxThreads = 4;
constexpr long kUniverse = 128;

/// End-of-run footprint ceiling with fault slack: the fault-free
/// quiescent bound of test_soak (universe + per-handle residue) plus
/// one more residue block -- the crashed leases' parked bags travel
/// through the orphan pool after the reap instead of being collected
/// by their (dead) owner, so they can linger one adoption cycle
/// longer. Still independent of op count and run length.
std::size_t faulted_quiescent_bound() {
  return static_cast<std::size_t>(kUniverse) + 2 * (kMaxThreads + 2) * 1500;
}

service::SoakConfig faulted_soak(std::uint64_t seed) {
  service::SoakConfig cfg;
  cfg.schedule = service::SoakSchedule::kSteady;  // workers 0..3 all live
  cfg.max_threads = kMaxThreads;
  cfg.ticks = 12;
  cfg.tick_ms = 25;
  cfg.universe = kUniverse;
  cfg.prefill = kUniverse / 4;
  cfg.seed = seed;
  cfg.pin = false;
  cfg.reap_delay_ticks = 1;
  // One fault of each kind, small staggered ordinals so all four fire
  // within the first ticks and recovery happens on-series.
  cfg.faults.at(0, 50, FaultKind::kAbortWithGuardHeld)
      .at(1, 100, FaultKind::kRetireSkipped)
      .at(2, 150, FaultKind::kDepartWithoutRelease)
      .at(3, 200, FaultKind::kMidOpAbandon);
  return cfg;
}

void run_fault_soak(std::string_view id, std::uint64_t seed) {
  test::ReproOnFailure repro(seed);
  auto set = harness::make_set(id);
  const auto cfg = faulted_soak(seed);
  const auto r = service::run_soak(*set, cfg);

  // Every planned fault fired, once per kind, and the two lease-level
  // crashes were reaped (the op-level kinds never crash the lease).
  ASSERT_EQ(r.fault_events.size(), 4u) << id;
  for (const FaultKind k : faults::kAllFaultKinds) {
    int fired = 0;
    for (const auto& ev : r.fault_events) fired += ev.kind == k;
    EXPECT_EQ(fired, 1) << id << ": " << faults::fault_kind_name(k);
  }
  EXPECT_EQ(r.reaps, 2) << id;

  // Quiescent integrity and the population ledger survive the
  // crashes: op-level faults were counted as removes, the mid-op
  // corpse is excluded from size(), and helping swept what it could.
  std::string err;
  ASSERT_TRUE(set->validate(&err)) << id << ": " << err;
  EXPECT_EQ(static_cast<long>(set->size()),
            cfg.prefill + r.agg.adds - r.agg.rems)
      << id;

  // Recovery happened on-series: after the last fault there is a
  // sample with no crashed lease, no parked limbo, no leaked cell.
  const double last = r.last_fault_ms();
  ASSERT_GE(last, 0.0) << id;
  bool recovered = false;
  for (const auto& s : r.series)
    recovered = recovered || (s.t_ms >= last && s.crashed_slots == 0 &&
                              s.parked_limbo == 0 && s.leaked_cells == 0);
  EXPECT_TRUE(recovered) << id;

  // Blast radius is bounded and fully recovered at the end: at most
  // the one retire-skipped node attributed (0 when the drawn key was
  // absent -- a leaky remove of nothing leaks nothing), nothing else
  // outstanding.
  const faults::BlastStats end = set->blast_stats();
  EXPECT_LE(end.leaked_nodes, 1u) << id;
  EXPECT_EQ(end.crashed_slots, 0u) << id;
  EXPECT_EQ(end.parked_limbo, 0u) << id;
  EXPECT_EQ(end.leaked_cells, 0u) << id;
  EXPECT_LE(set->allocated_nodes(), faulted_quiescent_bound()) << id;
  EXPECT_LE(set->limbo_nodes(), faulted_quiescent_bound()) << id;
}

TEST_P(EveryFaultCombo, FaultSoakRecoversEveryKind) {
  run_fault_soak(GetParam(), test::env_seed(7));
}

// The sharded grid shares ONE domain across shards, so a crashed
// worker's lease covers every shard it touched; the same recovery
// contract must hold through the set-level reap_crashed/blast_stats
// forwarding.
TEST(ShardedFaultSoak, FaultSoakRecoversAcrossSharedDomain) {
  for (const std::string_view id : {std::string_view("singly/ebr/sh8"),
                                    std::string_view("singly_cursor/hp/sh8"),
                                    std::string_view("doubly/ebr/sh4"),
                                    std::string_view("unrolled_k8/ebr/sh4"),
                                    std::string_view("unrolled_k8/hp/sh4")})
    run_fault_soak(id, test::env_seed(7));
}

}  // namespace
}  // namespace pragmalist
