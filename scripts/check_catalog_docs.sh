#!/usr/bin/env bash
# Fail if a catalog id registered in src/harness/catalog.cpp is not
# documented in docs/CATALOG.md (as a backticked `id`). Run by the CI
# docs job; runnable locally from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

ids=$(grep -oE '^\s*\{"[a-z_/]+"' src/harness/catalog.cpp |
      sed -E 's/.*\{"([a-z_/]+)".*/\1/')
test -n "$ids" || { echo "no catalog ids parsed from catalog.cpp"; exit 1; }

missing=0
for id in $ids; do
  if ! grep -qF "\`$id\`" docs/CATALOG.md; then
    echo "catalog id '$id' is registered in catalog.cpp but missing from docs/CATALOG.md"
    missing=1
  fi
done
if [ "$missing" -eq 0 ]; then
  echo "docs/CATALOG.md covers all $(echo "$ids" | wc -l) catalog ids"
fi
exit "$missing"
