#!/usr/bin/env bash
# Fail if a catalog id registered in src/harness/catalog.cpp is not
# documented in docs/CATALOG.md (as a backticked `id`). Covers both the
# static kEntries ids and the shardable bases of kShardedEntries: every
# shardable base must be documented with its `/shN`-suffixed form
# (e.g. `singly/ebr/shN`). Run by the CI docs job; runnable locally
# from anywhere in the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

# Static ids: scan only the kEntries array so a clang-format wrap after
# the id string can never silently drop an id from enforcement.
ids=$(sed -n '/kEntries\[\]/,/^};/p' src/harness/catalog.cpp |
      grep -oE '\{"[a-z0-9_/]+"' |
      sed -E 's/\{"([a-z0-9_/]+)"/\1/')
test -n "$ids" || { echo "no catalog ids parsed from catalog.cpp"; exit 1; }

# Shardable bases: scan only the kShardedEntries array (its entries are
# {"base", &make_...}, possibly wrapped after the base by clang-format)
# so a wrapped kEntries line can never be misread as a base.
bases=$(sed -n '/kShardedEntries\[\]/,/^};/p' src/harness/catalog.cpp |
        grep -oE '\{"[a-z0-9_/]+"' |
        sed -E 's/\{"([a-z0-9_/]+)"/\1/')
test -n "$bases" || { echo "no shardable bases parsed from catalog.cpp"; exit 1; }

missing=0
for id in $ids; do
  if ! grep -qF "\`$id\`" docs/CATALOG.md; then
    echo "catalog id '$id' is registered in catalog.cpp but missing from docs/CATALOG.md"
    missing=1
  fi
done
for base in $bases; do
  if ! grep -qF "\`$base/shN\`" docs/CATALOG.md; then
    echo "shardable base '$base' is registered in catalog.cpp but '\`$base/shN\`' is missing from docs/CATALOG.md"
    missing=1
  fi
done
if [ "$missing" -eq 0 ]; then
  echo "docs/CATALOG.md covers all $(echo "$ids" | wc -l) catalog ids and $(echo "$bases" | wc -l) shardable bases"
fi
exit "$missing"
