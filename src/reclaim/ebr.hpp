// Epoch-based reclamation, extracted from the EBR Michael baseline so
// any list can use it: operations run inside an epoch-pinned critical
// section (Handle::guard()); detached nodes are retired into the
// current epoch's limbo bag and freed once every pinned handle has
// advanced at least two epochs past it.
//
//   Progress guarantee: operations stay lock-free (pin/unpin and
//     retire are wait-free; the free pass runs outside the pin), but
//     *reclamation* is only blocking-free in aggregate -- one thread
//     parked inside a critical section stalls the epoch and no node
//     retired since its pin can be freed until it unpins.
//   Memory bound: none in the worst case (a stalled epoch grows limbo
//     without limit); in steady state limbo per handle is bounded by
//     the retire rate of roughly three epochs plus kRetireThreshold.
//     The churn and soak tiers assert the steady-state bound.
//   Engine requirements: none beyond the retire contract -- traversals
//     are unchanged (no per-step protection, no marked-node
//     restrictions), which is why the pragmatic walk keeps its shape
//     under EBR. Cursors are disabled (kStableAddresses is false and
//     there is no hazard slot to pin them): a node pointer held across
//     an unpinned gap may be freed, so every operation starts from the
//     head.
//
// Limbo is **epoch-bucketed**: each handle owns kBags (= 3) rotating
// bags, one per epoch residue. retire() drops the node into the bag
// for the current epoch; because the global epoch can only advance
// when every pinned handle has caught up, by the time the rotation
// comes back around to a bag (three epochs later) no reader can still
// hold anything in it, and the whole bag is freed in O(|bag|) --
// nothing is ever re-examined or rebuilt, so the free-pass cost tracks
// the number of nodes actually freed, not the total limbo size (the
// old scheme rebuilt one flat limbo vector per pass, which is O(all
// of limbo) per pass under churn).
//
//   bag lifecycle (global epoch e, bags indexed e % 3):
//
//          retire() fills            collect() frees when
//               v                    min pinned epoch >= bag+2
//     +-----------------+
//     | bag[e % 3]      |  epoch e      (current: filling)
//     +-----------------+
//     | bag[(e-1) % 3]  |  epoch e-1    (cooling: readers from e-1
//     +-----------------+               may still hold pointers)
//     | bag[(e-2) % 3]  |  epoch e-2    (free as soon as every pinned
//     +-----------------+               handle reaches e, i.e. two
//                                       advances after retirement)
//
//     At epoch e+1 the rotation reuses bag[(e+1) % 3] == bag[(e-2) % 3];
//     if collect() has not already emptied it, retire() frees it whole
//     before refilling (same-residue reuse implies the bag is >= 3
//     epochs old, strictly older than the two-epoch grace period).
//
// Departure: a dying handle runs one last collect(), then hands its
// still-young bags (nodes tagged with their retire epoch) to a small
// mutex-guarded orphan pool that any survivor's collect() adopts under
// the same two-epoch rule -- so thread arrival/departure churn cannot
// grow memory toward teardown. The mutex is taken only at departures
// and try_locked from collect(); no list operation ever blocks on it.
//
// Reclamation runs at guard *release*, after the unpin: freeing while
// pinned is a death spiral -- a thread scanning with a pre-advance
// epoch blocks try_advance for everyone, epochs stall, limbo grows,
// scans get slower, pins get longer. Unpinned passes cannot block
// anything, so the epoch keeps moving no matter how churn-saturated
// the workload is (the churn test tier asserts exactly this).
//
// Collect cadence is **adaptive**: the per-handle trigger threshold
// tracks an EWMA of the handle's recent retire rate (floored at
// kRetireThreshold, capped at kCollectThresholdMax), and backs off
// exponentially while passes are futile -- under an oversubscribed
// scheduler a descheduled pinned thread stalls the horizon, and
// re-scanning the handle table at every guard release frees nothing
// while making the stall worse. The moment the global epoch moves
// again, the next guard release collects regardless of the backed-off
// threshold, so a spike drains as soon as it can instead of waiting
// for limbo to reach the raised trigger.
//
// One Ebr instance is a *domain*: it may back any number of lists of
// the same node type (the sharded set runs every shard against one
// domain), and handles are leased per *thread*, not per list -- one
// epoch slot covers a thread's operations on all of them.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "src/alloc/slab.hpp"
#include "src/common/debug.hpp"
#include "src/faults/faults.hpp"

namespace pragmalist::reclaim {

template <typename Node>
class Ebr {
 public:
  static constexpr bool kStableAddresses = false;
  static constexpr bool kHazards = false;
  static constexpr bool kReclaims = true;
  static constexpr int kMaxHandles = 256;
  static constexpr int kBags = 3;
  static constexpr std::size_t kRetireThreshold = 128;
  static constexpr std::size_t kCollectThresholdMax = 4096;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<bool> pinned{false};
    std::atomic<bool> active{false};
  };

  /// One epoch's worth of retired nodes. `epoch` is meaningful only
  /// while `nodes` is non-empty.
  struct Bag {
    std::vector<Node*> nodes;
    std::uint64_t epoch = 0;
  };

 public:
  class Handle {
   public:
    Handle(Handle&& o) noexcept
        : d_(o.d_),
          slot_(o.slot_),
          limbo_size_(o.limbo_size_),
          collect_threshold_(o.collect_threshold_),
          retired_since_collect_(o.retired_since_collect_),
          rate_ewma_(o.rate_ewma_),
          last_collect_epoch_(o.last_collect_epoch_),
          cache_(std::move(o.cache_)) {
      for (int b = 0; b < kBags; ++b) bags_[b] = std::move(o.bags_[b]);
      o.d_ = nullptr;
      o.limbo_size_ = 0;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() {
      if (d_ == nullptr) return;
      // One last unpinned free pass, then hand whatever is still too
      // young to the domain's orphan pool, where any survivor's next
      // collect() adopts and frees it. Departing threads therefore
      // never leak their limbo to the end of the run -- the service
      // tier's arrival/departure churn depends on this.
      collect();
      d_->orphan_bags(bags_, *this);
      d_->slots_[slot_].active.store(false, std::memory_order_release);
    }

    /// RAII epoch pin around one operation. See the file comment for
    /// why the free pass runs at release, never while pinned.
    class Guard {
     public:
      explicit Guard(Handle& h) : h_(h) {
        Slot& slot = h.d_->slots_[h.slot_];
        slot.pinned.store(true, std::memory_order_seq_cst);
        for (;;) {  // never publish a stale-at-birth epoch
          const std::uint64_t e =
              h.d_->global_epoch_.load(std::memory_order_seq_cst);
          slot.epoch.store(e, std::memory_order_seq_cst);
          if (h.d_->global_epoch_.load(std::memory_order_seq_cst) == e)
            break;
        }
      }
      Guard(const Guard&) = delete;
      Guard& operator=(const Guard&) = delete;
      ~Guard() {
        h_.d_->slots_[h_.slot_].pinned.store(false,
                                             std::memory_order_release);
        if (h_.collect_due()) h_.collect();
      }

     private:
      Handle& h_;
    };

    Guard guard() { return Guard(*this); }

    /// Node allocation, through the per-thread slot cache (a plain
    /// `new` when the domain runs in heap mode). The cache drains on
    /// handle destruction -- and on abandon: cached slots are clean
    /// memory, never protected state, so a crash leaks none of them.
    template <typename... Args>
    Node* construct(Args&&... args) {
      return cache_.construct(std::forward<Args>(args)...);
    }

    /// Free a never-published node (a lost insert race) immediately:
    /// no reader can hold it, so it skips limbo entirely.
    void dispose(Node* n) { cache_.destroy(n); }

    void retire(Node* n) {
      const std::uint64_t e =
          d_->global_epoch_.load(std::memory_order_acquire);
      Bag& bag = bags_[e % kBags];
      if (!bag.nodes.empty() && bag.epoch != e) {
        // Same residue, strictly older: the bag is >= kBags epochs old,
        // past the two-epoch grace period, free it whole before reuse.
        d_->free_bag(bag, *this);
      }
      bag.epoch = e;
      bag.nodes.push_back(n);
      ++limbo_size_;
      ++retired_since_collect_;
      d_->limbo_.fetch_add(1, std::memory_order_relaxed);
    }

    /// Adaptive cadence trigger, checked at guard release. Pressure is
    /// the worse of own limbo and the orphan pool (a straggler that
    /// barely retires must still adopt the garbage of departed
    /// threads, or a join/leave-heavy run leaks) -- both gated the
    /// same way: fire at the backed-off threshold, or at the base
    /// threshold as soon as the epoch has moved since the last pass
    /// (a backed-off spike must drain the moment the stall clears).
    /// Past the cap the trigger fires every release by design: those
    /// passes keep calling try_advance, which is what lets the epoch
    /// move promptly once a stalled straggler unpins.
    bool collect_due() const {
      const std::size_t pressure = std::max(
          limbo_size_, d_->orphan_count_.load(std::memory_order_relaxed));
      if (pressure >= collect_threshold_) return true;
      return pressure >= kRetireThreshold &&
             d_->global_epoch_.load(std::memory_order_relaxed) !=
                 last_collect_epoch_;
    }

    /// Free pass: advance the epoch if possible, then free every bag
    /// two epochs behind the slowest pinned handle. O(#bags freed +
    /// kMaxHandles), never O(total limbo). Intended to run unpinned
    /// (the guard destructor calls it after the unpin -- see file
    /// comment); calling it inside a live guard is safe but mostly
    /// futile, as the caller's own pin holds the horizon back. Public
    /// so departing service workers and the bucket-rotation tests can
    /// force a pass.
    void collect() {
      d_->try_advance();
      const std::uint64_t min_epoch = d_->min_pinned_epoch();
      const std::size_t limbo_before = limbo_size_;
      const std::size_t orphans_before =
          d_->orphan_count_.load(std::memory_order_relaxed);
      for (Bag& bag : bags_) {
        if (bag.nodes.empty()) continue;
        if (bag.epoch + 2 <= min_epoch) d_->free_bag(bag, *this);
      }
      d_->collect_orphans(min_epoch);
      adapt_cadence(limbo_before, orphans_before);
    }

    /// Retired-not-yet-freed nodes parked on this handle.
    std::size_t limbo_size() const { return limbo_size_; }

    /// Current adaptive trigger (tests/metrics only).
    std::size_t collect_threshold() const { return collect_threshold_; }

    /// Fault injection: the owning worker crashed.
    /// kAbortWithGuardHeld re-pins the slot at the current epoch and
    /// leaves it pinned -- the reclamation horizon can advance at most
    /// once and then stalls until the lease is reaped.
    /// kDepartWithoutRelease skips the departure protocol (no final
    /// collect, no orphan hand-off, slot kept leased). Either way the
    /// handle's limbo is parked on the domain -- still counted by
    /// limbo_nodes(), but unadoptable until reap_crashed() -- and the
    /// handle is dead afterwards (its destructor is a no-op).
    void abandon(faults::FaultKind k) {
      PRAGMALIST_CHECK(!faults::is_op_fault(k),
                       "op-level faults are injected by the engine, not "
                       "the reclaim handle");
      if (k == faults::FaultKind::kAbortWithGuardHeld) {
        Slot& slot = d_->slots_[slot_];
        slot.pinned.store(true, std::memory_order_seq_cst);
        for (;;) {  // same publish loop as Guard: never a stale pin
          const std::uint64_t e =
              d_->global_epoch_.load(std::memory_order_seq_cst);
          slot.epoch.store(e, std::memory_order_seq_cst);
          if (d_->global_epoch_.load(std::memory_order_seq_cst) == e)
            break;
        }
      }
      d_->park_crashed(slot_, bags_, *this);
      d_ = nullptr;
    }

    /// Fault injection (kRetireSkipped): `n` was unlinked but the
    /// crash skipped its retire. The domain attributes and owns it --
    /// counted by blast_stats().leaked_nodes, freed only at teardown,
    /// never part of limbo.
    void leak(Node* n) { d_->leak_node(n); }

   private:
    friend class Ebr;
    Handle(Ebr* d, int slot) : d_(d), slot_(slot), cache_(&d->pool_) {}

    /// Re-tune the trigger after a pass. A futile pass (freed nothing,
    /// own limbo or orphans alike) over above-threshold pressure means
    /// a stalled horizon: double the threshold up to the cap. A
    /// productive pass re-anchors it to the EWMA retire rate, floored
    /// at the base threshold. A futile pass *below* the threshold
    /// (only the epoch-moved clause fired) leaves it alone -- it is
    /// neither evidence of a stall nor of drainage.
    void adapt_cadence(std::size_t limbo_before,
                       std::size_t orphans_before) {
      rate_ewma_ = (3 * rate_ewma_ + retired_since_collect_) / 4;
      retired_since_collect_ = 0;
      last_collect_epoch_ =
          d_->global_epoch_.load(std::memory_order_relaxed);
      const std::size_t orphans_after =
          d_->orphan_count_.load(std::memory_order_relaxed);
      const bool futile =
          limbo_size_ == limbo_before && orphans_after >= orphans_before;
      const std::size_t pressure = std::max(limbo_size_, orphans_after);
      if (futile && pressure >= collect_threshold_) {
        if (collect_threshold_ < kCollectThresholdMax)
          collect_threshold_ =
              std::min(kCollectThresholdMax, collect_threshold_ * 2);
      } else if (!futile) {
        collect_threshold_ =
            std::max(kRetireThreshold,
                     std::min(kCollectThresholdMax, rate_ewma_));
      }
    }

    Ebr* d_;
    int slot_;
    Bag bags_[kBags];
    std::size_t limbo_size_ = 0;
    std::size_t collect_threshold_ = kRetireThreshold;
    std::size_t retired_since_collect_ = 0;
    std::size_t rate_ewma_ = kRetireThreshold;
    std::uint64_t last_collect_epoch_ = 0;
    alloc::ThreadCache<Node> cache_;
  };

  explicit Ebr(alloc::Mode mode = alloc::Mode::kHeap) : pool_(mode) {}
  Ebr(const Ebr&) = delete;
  Ebr& operator=(const Ebr&) = delete;

  ~Ebr() {
    for (const auto& entry : orphans_) pool_.destroy(entry.first);
    // Crashed leases nobody reaped, and attributed leaks: the domain
    // owns both, so even a faulted run tears down ASan-clean.
    for (const auto& lease : crashed_)
      for (const auto& entry : lease.nodes) pool_.destroy(entry.first);
    for (Node* n : leaked_) pool_.destroy(n);
  }

  Handle make_handle() {
    for (int i = 0; i < kMaxHandles; ++i) {
      bool expected = false;
      if (slots_[i].active.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel))
        return Handle(this, i);
    }
    PRAGMALIST_CHECK(false, "reclaim::Ebr: more than 256 live handles");
    __builtin_unreachable();
  }

  void track(Node*) { allocated_.fetch_add(1, std::memory_order_relaxed); }

  std::size_t live_nodes() const {
    return allocated_.load(std::memory_order_relaxed) -
           freed_.load(std::memory_order_relaxed);
  }

  /// Retired-not-yet-freed nodes across every handle plus the orphan
  /// pool left by departed handles. The soak harness samples this as
  /// the limbo-depth series.
  std::size_t limbo_nodes() const {
    return limbo_.load(std::memory_order_relaxed);
  }

  /// Current global epoch (metrics/tests only).
  std::uint64_t epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

  /// Supervisor recovery: release every crashed lease. Unpins the
  /// slot (the horizon resumes), moves the parked nodes into the
  /// orphan pool (any survivor's next collect adopts and frees them
  /// under the usual two-epoch rule), and frees the slot for
  /// re-lease. Returns the number of leases reaped. Safe to call from
  /// any thread while workers run.
  std::size_t reap_crashed() {
    std::vector<CrashedLease> leases;
    {
      std::lock_guard<std::mutex> lock(crashed_mu_);
      leases.swap(crashed_);
      crashed_count_.store(0, std::memory_order_relaxed);
    }
    if (leases.empty()) return 0;
    {
      std::lock_guard<std::mutex> lock(orphans_mu_);
      for (const auto& lease : leases)
        for (const auto& entry : lease.nodes) orphans_.push_back(entry);
      orphan_count_.store(orphans_.size(), std::memory_order_relaxed);
    }
    std::size_t parked = 0;
    for (const auto& lease : leases) {
      parked += lease.nodes.size();
      // Hand the nodes off *before* unpinning: the stalled horizon
      // keeps them unfreeable until this store, so adoption can never
      // free something the dead pin still covered.
      slots_[lease.slot].pinned.store(false, std::memory_order_seq_cst);
      slots_[lease.slot].active.store(false, std::memory_order_release);
    }
    parked_limbo_.fetch_sub(parked, std::memory_order_relaxed);
    return leases.size();
  }

  /// Blast-radius snapshot (see faults::BlastStats). Sampled per tick
  /// by the soak driver; horizon_lag > 0 with no crashed slots is just
  /// normal epoch skew, while a persistent lag under a crashed slot is
  /// the guard-held stall.
  faults::BlastStats blast_stats() const {
    faults::BlastStats b;
    b.leaked_nodes = leaked_count_.load(std::memory_order_relaxed);
    b.crashed_slots = crashed_count_.load(std::memory_order_relaxed);
    b.parked_limbo = parked_limbo_.load(std::memory_order_relaxed);
    const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    b.horizon_lag = e - min_pinned_epoch();
    b.leaked_slabs = leaked_slab_count();
    return b;
  }

  /// Domain-level allocation (sentinels, teardown paths).
  template <typename... Args>
  Node* construct(Args&&... args) {
    return pool_.construct(std::forward<Args>(args)...);
  }
  void destroy(Node* n) { pool_.destroy(n); }

  alloc::Mode alloc_mode() const { return pool_.mode(); }
  alloc::SlabStats slab_stats() const { return pool_.stats(); }
  alloc::SlabPool<Node>& pool() { return pool_; }

 private:
  friend class Handle;

  void free_bag(Bag& bag, Handle& h) {
    for (Node* n : bag.nodes) pool_.destroy(n);
    freed_.fetch_add(bag.nodes.size(), std::memory_order_relaxed);
    limbo_.fetch_sub(bag.nodes.size(), std::memory_order_relaxed);
    h.limbo_size_ -= bag.nodes.size();
    bag.nodes.clear();
  }

  /// Smallest epoch any pinned handle has published (the reclamation
  /// horizon); the global epoch when nothing is pinned.
  std::uint64_t min_pinned_epoch() const {
    std::uint64_t min_epoch = global_epoch_.load(std::memory_order_seq_cst);
    for (const auto& slot : slots_) {
      if (!slot.active.load(std::memory_order_acquire)) continue;
      if (!slot.pinned.load(std::memory_order_seq_cst)) continue;
      const std::uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
      if (e < min_epoch) min_epoch = e;
    }
    return min_epoch;
  }

  /// Bump the global epoch if every pinned handle caught up with it.
  void try_advance() {
    const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    for (const auto& slot : slots_) {
      if (!slot.active.load(std::memory_order_acquire)) continue;
      if (!slot.pinned.load(std::memory_order_seq_cst)) continue;
      if (slot.epoch.load(std::memory_order_seq_cst) != e) return;
    }
    std::uint64_t expected = e;
    global_epoch_.compare_exchange_strong(expected, e + 1,
                                          std::memory_order_seq_cst);
  }

  /// Departure path: move a dying handle's too-young bags into the
  /// orphan pool, keeping each node's retire epoch so adoption applies
  /// the same two-epoch rule. The mutex is only ever taken here (rare:
  /// schedule edges) and in collect_orphans (try_lock, off the
  /// operation path), so operations themselves stay lock-free.
  void orphan_bags(Bag (&bags)[kBags], Handle& h) {
    std::lock_guard<std::mutex> lock(orphans_mu_);
    for (Bag& bag : bags) {
      for (Node* n : bag.nodes) orphans_.emplace_back(n, bag.epoch);
      h.limbo_size_ -= bag.nodes.size();
      bag.nodes.clear();
    }
    orphan_count_.store(orphans_.size(), std::memory_order_relaxed);
  }

  /// Free every orphan whose epoch is two behind the horizon. Skips
  /// out immediately when the pool is empty or contended.
  void collect_orphans(std::uint64_t min_epoch) {
    if (orphan_count_.load(std::memory_order_relaxed) == 0) return;
    if (!orphans_mu_.try_lock()) return;
    std::size_t freed = 0;
    std::size_t w = 0;
    for (std::size_t r = 0; r < orphans_.size(); ++r) {
      if (orphans_[r].second + 2 <= min_epoch) {
        pool_.destroy(orphans_[r].first);
        ++freed;
      } else {
        orphans_[w++] = orphans_[r];
      }
    }
    orphans_.resize(w);
    orphan_count_.store(w, std::memory_order_relaxed);
    orphans_mu_.unlock();
    freed_.fetch_add(freed, std::memory_order_relaxed);
    limbo_.fetch_sub(freed, std::memory_order_relaxed);
  }

  /// One abandoned handle: the slot it still occupies and its parked
  /// limbo (with retire epochs, so adoption after reaping applies the
  /// normal two-epoch rule).
  struct CrashedLease {
    int slot;
    std::vector<std::pair<Node*, std::uint64_t>> nodes;
  };

  /// Park an abandoned handle's bags and record the lease. The slot
  /// stays active (and possibly pinned) until reap_crashed().
  void park_crashed(int slot, Bag (&bags)[kBags], Handle& h) {
    CrashedLease lease;
    lease.slot = slot;
    for (Bag& bag : bags) {
      for (Node* n : bag.nodes) lease.nodes.emplace_back(n, bag.epoch);
      h.limbo_size_ -= bag.nodes.size();
      bag.nodes.clear();
    }
    std::lock_guard<std::mutex> lock(crashed_mu_);
    parked_limbo_.fetch_add(lease.nodes.size(), std::memory_order_relaxed);
    crashed_.push_back(std::move(lease));
    crashed_count_.store(crashed_.size(), std::memory_order_relaxed);
  }

  /// Attribute a kRetireSkipped leak: the node stays allocated (it is
  /// outside limbo and the orphan pool) and is freed at teardown.
  void leak_node(Node* n) {
    std::lock_guard<std::mutex> lock(leaked_mu_);
    leaked_.push_back(n);
    leaked_count_.store(leaked_.size(), std::memory_order_relaxed);
  }

  /// Distinct slabs holding attributed leaks (slab-leak attribution
  /// for the fault tier; 0 in heap mode where there are no slabs).
  std::size_t leaked_slab_count() const {
    if (pool_.mode() != alloc::Mode::kSlab) return 0;
    std::lock_guard<std::mutex> lock(leaked_mu_);
    std::vector<const void*> slabs;
    for (const Node* n : leaked_) {
      const void* s = pool_.slab_of(n);
      if (std::find(slabs.begin(), slabs.end(), s) == slabs.end())
        slabs.push_back(s);
    }
    return slabs.size();
  }

  alloc::SlabPool<Node> pool_;  // first: every free above drains into it
  Slot slots_[kMaxHandles];
  std::atomic<std::uint64_t> global_epoch_{2};
  std::atomic<std::size_t> allocated_{0};
  std::atomic<std::size_t> freed_{0};
  std::atomic<std::size_t> limbo_{0};
  std::mutex orphans_mu_;
  std::vector<std::pair<Node*, std::uint64_t>> orphans_;  // guarded by mu
  std::atomic<std::size_t> orphan_count_{0};
  std::mutex crashed_mu_;
  std::vector<CrashedLease> crashed_;  // guarded by crashed_mu_
  std::atomic<std::size_t> crashed_count_{0};
  std::atomic<std::size_t> parked_limbo_{0};
  mutable std::mutex leaked_mu_;  // blast_stats() walks leaked_ (const)
  std::vector<Node*> leaked_;     // guarded by leaked_mu_
  std::atomic<std::size_t> leaked_count_{0};
};

}  // namespace pragmalist::reclaim
