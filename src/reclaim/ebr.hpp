// Epoch-based reclamation, extracted from the EBR Michael baseline so
// any list can use it: operations run inside an epoch-pinned critical
// section (Handle::guard()); detached nodes are retired with the epoch
// they died in and freed once every pinned handle has advanced at
// least two epochs past it. Cheaper per access than hazard pointers
// (no per-step publish/validate), at the cost of reclamation stalling
// whenever a thread parks inside a critical section — and of node
// pointers becoming poison the moment the guard is dropped, which is
// why kStableAddresses is false and cursor/back-pointer hints are
// disabled under this policy.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/debug.hpp"
#include "src/core/list_base.hpp"

namespace pragmalist::reclaim {

template <typename Node>
class Ebr {
 public:
  static constexpr bool kStableAddresses = false;
  static constexpr bool kHazards = false;
  static constexpr bool kReclaims = true;
  static constexpr int kMaxHandles = 256;
  static constexpr std::size_t kRetireThreshold = 128;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<bool> pinned{false};
    std::atomic<bool> active{false};
  };

 public:
  class Handle {
   public:
    Handle(Handle&& o) noexcept
        : d_(o.d_), slot_(o.slot_), limbo_(std::move(o.limbo_)) {
      o.d_ = nullptr;
      o.limbo_.clear();
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() {
      if (d_ == nullptr) return;
      // One last unpinned free pass, then park whatever is still too
      // young on the domain's leftover stack, freed at teardown.
      if (!limbo_.empty()) d_->reclaim(limbo_);
      for (const auto& [node, epoch] : limbo_) d_->push_leftover(node);
      d_->slots_[slot_].active.store(false, std::memory_order_release);
    }

    /// RAII epoch pin around one operation. Reclamation runs at guard
    /// *release*, after the unpin: the free pass rebuilds the limbo
    /// list in O(|limbo|), and doing that while pinned is a death
    /// spiral -- a thread scanning with a pre-advance epoch blocks
    /// try_advance for everyone, epochs stall, limbo grows, scans get
    /// slower, pins get longer. Unpinned scans cannot block anything,
    /// so the epoch keeps moving no matter how churn-saturated the
    /// workload is (the churn test tier asserts exactly this).
    class Guard {
     public:
      explicit Guard(Handle& h) : h_(h) {
        Slot& slot = h.d_->slots_[h.slot_];
        slot.pinned.store(true, std::memory_order_seq_cst);
        for (;;) {  // never publish a stale-at-birth epoch
          const std::uint64_t e =
              h.d_->global_epoch_.load(std::memory_order_seq_cst);
          slot.epoch.store(e, std::memory_order_seq_cst);
          if (h.d_->global_epoch_.load(std::memory_order_seq_cst) == e)
            break;
        }
      }
      Guard(const Guard&) = delete;
      Guard& operator=(const Guard&) = delete;
      ~Guard() {
        h_.d_->slots_[h_.slot_].pinned.store(false,
                                             std::memory_order_release);
        if (h_.limbo_.size() >= kRetireThreshold) h_.d_->reclaim(h_.limbo_);
      }

     private:
      Handle& h_;
    };

    Guard guard() { return Guard(*this); }

    void retire(Node* n) {
      limbo_.emplace_back(n,
                          d_->global_epoch_.load(std::memory_order_acquire));
    }

   private:
    friend class Ebr;
    Handle(Ebr* d, int slot) : d_(d), slot_(slot) {}

    Ebr* d_;
    int slot_;
    std::vector<std::pair<Node*, std::uint64_t>> limbo_;
  };

  Ebr() = default;
  Ebr(const Ebr&) = delete;
  Ebr& operator=(const Ebr&) = delete;

  ~Ebr() {
    Node* r = leftovers_.load(std::memory_order_acquire);
    while (r != nullptr) {
      Node* next = r->reg_next;
      delete r;
      r = next;
    }
  }

  Handle make_handle() {
    for (int i = 0; i < kMaxHandles; ++i) {
      bool expected = false;
      if (slots_[i].active.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel))
        return Handle(this, i);
    }
    PRAGMALIST_CHECK(false, "reclaim::Ebr: more than 256 live handles");
    __builtin_unreachable();
  }

  void track(Node*) { allocated_.fetch_add(1, std::memory_order_relaxed); }

  std::size_t live_nodes() const {
    return allocated_.load(std::memory_order_relaxed) -
           freed_.load(std::memory_order_relaxed);
  }

 private:
  friend class Handle;

  void reclaim(std::vector<std::pair<Node*, std::uint64_t>>& limbo) {
    try_advance();
    // A node retired in epoch e is free once every pinned handle has
    // observed an epoch > e + 1.
    std::uint64_t min_epoch = global_epoch_.load(std::memory_order_seq_cst);
    for (const auto& slot : slots_) {
      if (!slot.active.load(std::memory_order_acquire)) continue;
      if (!slot.pinned.load(std::memory_order_seq_cst)) continue;
      const std::uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
      if (e < min_epoch) min_epoch = e;
    }
    std::vector<std::pair<Node*, std::uint64_t>> keep;
    keep.reserve(limbo.size());
    std::size_t freed = 0;
    for (const auto& entry : limbo) {
      if (entry.second + 2 <= min_epoch) {
        delete entry.first;
        ++freed;
      } else {
        keep.push_back(entry);
      }
    }
    limbo = std::move(keep);
    freed_.fetch_add(freed, std::memory_order_relaxed);
  }

  /// Bump the global epoch if every pinned handle caught up with it.
  void try_advance() {
    const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    for (const auto& slot : slots_) {
      if (!slot.active.load(std::memory_order_acquire)) continue;
      if (!slot.pinned.load(std::memory_order_seq_cst)) continue;
      if (slot.epoch.load(std::memory_order_seq_cst) != e) return;
    }
    std::uint64_t expected = e;
    global_epoch_.compare_exchange_strong(expected, e + 1,
                                          std::memory_order_seq_cst);
  }

  void push_leftover(Node* n) { core::push_intrusive(leftovers_, n); }

  Slot slots_[kMaxHandles];
  std::atomic<std::uint64_t> global_epoch_{2};
  std::atomic<Node*> leftovers_{nullptr};
  std::atomic<std::size_t> allocated_{0};
  std::atomic<std::size_t> freed_{0};
};

}  // namespace pragmalist::reclaim
