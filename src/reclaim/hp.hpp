// Hazard-pointer reclamation (Michael, PODC'02/TPDS'04), extracted
// from the HP Michael baseline so any list can use it. Each handle
// owns kSlots hazard cells; a reader publishes the node it is about to
// dereference, revalidates reachability against a shared cell, and may
// then use the node until the cell is overwritten. scan() frees every
// retiree no cell currently protects.
//
// Slot-role conventions are the caller's business: the Michael
// baseline uses three (cur/succ/pred); the pragmatic engines use four
// (anchor/walk/succ + a persistent cursor slot, see singly_family.hpp).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/debug.hpp"
#include "src/core/list_base.hpp"

namespace pragmalist::reclaim {

template <typename Node>
class Hp {
 public:
  static constexpr bool kStableAddresses = false;
  static constexpr bool kHazards = true;
  static constexpr bool kReclaims = true;
  static constexpr int kMaxHandles = 256;
  static constexpr int kSlots = 4;
  static constexpr std::size_t kRetireThreshold = 64;

 private:
  struct alignas(64) Slot {
    std::array<std::atomic<Node*>, kSlots> hp{};
    std::atomic<bool> active{false};
  };

 public:
  class Handle {
   public:
    Handle(Handle&& o) noexcept
        : d_(o.d_), slot_(o.slot_), retired_(std::move(o.retired_)) {
      o.d_ = nullptr;
      o.retired_.clear();
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() {
      if (d_ == nullptr) return;
      // Remaining retirees may still be protected by other handles:
      // park them on the domain's leftover stack, freed at teardown.
      for (Node* n : retired_) d_->push_leftover(n);
      for (auto& h : d_->slots_[slot_].hp)
        h.store(nullptr, std::memory_order_release);
      d_->slots_[slot_].active.store(false, std::memory_order_release);
    }

    struct Guard {};
    Guard guard() { return {}; }

    /// Publish: the store must be ordered before the caller's
    /// revalidation read, hence seq_cst (a release store could be
    /// reordered past the subsequent load on x86 and elsewhere).
    void protect(int slot, Node* n) {
      d_->slots_[slot_].hp[static_cast<std::size_t>(slot)].store(
          n, std::memory_order_seq_cst);
    }

    void clear(int slot) {
      d_->slots_[slot_].hp[static_cast<std::size_t>(slot)].store(
          nullptr, std::memory_order_release);
    }

    void retire(Node* n) {
      retired_.push_back(n);
      if (retired_.size() >= kRetireThreshold) d_->scan(retired_);
    }

   private:
    friend class Hp;
    Handle(Hp* d, int slot) : d_(d), slot_(slot) {}

    Hp* d_;
    int slot_;
    std::vector<Node*> retired_;
  };

  Hp() = default;
  Hp(const Hp&) = delete;
  Hp& operator=(const Hp&) = delete;

  ~Hp() {
    Node* r = leftovers_.load(std::memory_order_acquire);
    while (r != nullptr) {
      Node* next = r->reg_next;
      delete r;
      r = next;
    }
  }

  Handle make_handle() {
    for (int i = 0; i < kMaxHandles; ++i) {
      bool expected = false;
      if (slots_[i].active.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel))
        return Handle(this, i);
    }
    PRAGMALIST_CHECK(false, "reclaim::Hp: more than 256 live handles");
    __builtin_unreachable();
  }

  void track(Node*) { allocated_.fetch_add(1, std::memory_order_relaxed); }

  std::size_t live_nodes() const {
    return allocated_.load(std::memory_order_relaxed) -
           freed_.load(std::memory_order_relaxed);
  }

 private:
  friend class Handle;

  /// Free every retiree no hazard pointer currently protects.
  void scan(std::vector<Node*>& retired) {
    std::unordered_set<Node*> protected_nodes;
    for (const auto& slot : slots_) {
      if (!slot.active.load(std::memory_order_acquire)) continue;
      for (const auto& hazard : slot.hp) {
        Node* n = hazard.load(std::memory_order_acquire);
        if (n != nullptr) protected_nodes.insert(n);
      }
    }
    std::vector<Node*> keep;
    keep.reserve(retired.size());
    std::size_t freed = 0;
    for (Node* n : retired) {
      if (protected_nodes.count(n) != 0) {
        keep.push_back(n);
      } else {
        delete n;
        ++freed;
      }
    }
    retired = std::move(keep);
    freed_.fetch_add(freed, std::memory_order_relaxed);
  }

  void push_leftover(Node* n) { core::push_intrusive(leftovers_, n); }

  Slot slots_[kMaxHandles];
  std::atomic<Node*> leftovers_{nullptr};
  std::atomic<std::size_t> allocated_{0};
  std::atomic<std::size_t> freed_{0};
};

}  // namespace pragmalist::reclaim
