// Hazard-pointer reclamation (Michael, PODC'02/TPDS'04), extracted
// from the HP Michael baseline so any list can use it. Each handle
// owns kSlots hazard cells; a reader publishes the node it is about to
// dereference, revalidates reachability against a shared cell, and may
// then use the node until the cell is overwritten. scan() frees every
// retiree no cell currently protects.
//
//   Progress guarantee: fully lock-free, including reclamation -- a
//     parked thread pins at most kSlots nodes forever; it can never
//     stall anyone else's frees the way a parked EBR pin stalls the
//     epoch.
//   Memory bound: per-domain garbage is bounded by
//     kMaxHandles * (kRetireThreshold + kSlots) regardless of how long
//     the run lasts or how threads come and go -- the strongest bound
//     of the three policies (the churn and soak tiers assert it).
//   Engine requirements: the engine must run a hazard traversal --
//     publish into a slot before every dereference and revalidate
//     afterwards. Stepping over marked nodes additionally requires the
//     anchored-validation walk (core::hazard::anchored_walk): plain HP
//     validation cannot detect that a marked node's frozen successor
//     chain was swept, see list_base.hpp. Per-handle cursors are
//     supported via a dedicated persistent slot (hazard::kCursor).
//
// Slot-role conventions are the caller's business: the Michael
// baseline uses three (cur/succ/pred); the pragmatic engines use four
// (anchor/walk/succ + a persistent cursor slot, see singly_family.hpp).
//
// Cursor-slot reuse (departure/arrival protocol): hazard slots are a
// fixed kMaxHandles-entry table, so a long-running service must
// re-lease the slots of departed threads to arrivals. A departing
// handle (destructor) does, in order:
//   1. one last scan(), freeing every retiree no cell protects;
//   2. hands survivors to the domain's lock-free *orphan* stack -- the
//      next scan() by any live handle adopts and frees them, so a
//      departed thread's garbage never waits for domain teardown;
//   3. clears all kSlots cells -- including the persistent kCursor
//      cell, which unlike the traversal cells is deliberately kept
//      published *between* operations and would otherwise pin its node
//      (and with it one list position) for the rest of the run;
//   4. releases the slot with a release-store that the arrival's
//      acquire-CAS in make_handle() synchronizes with, so a re-leased
//      slot is observed with all cells null and no stale protection
//      can leak from the previous owner into the new lease.
//
// One Hp instance is a *domain*: it may back any number of lists of
// the same node type (the sharded set runs every shard against one
// domain), and handles are leased per *thread*, not per list -- one
// kSlots-cell row covers a thread's traversals on all of them, which
// is what keeps the hazard-slot total O(threads) instead of
// O(threads x shards). Because the persistent kCursor cell is then a
// per-thread resource shared by every borrowing list, the handle
// carries a `cursor_owner` tag: the engine that last published a
// cursor stamps itself, and any engine finding another owner's stamp
// treats its own remembered cursor as lost instead of dereferencing a
// node the cell no longer protects (or clearing a cell that now
// guards someone else's cursor).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <mutex>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/alloc/slab.hpp"
#include "src/common/debug.hpp"
#include "src/core/list_base.hpp"
#include "src/faults/faults.hpp"

namespace pragmalist::reclaim {

template <typename Node>
class Hp {
 public:
  static constexpr bool kStableAddresses = false;
  static constexpr bool kHazards = true;
  static constexpr bool kReclaims = true;
  static constexpr int kMaxHandles = 256;
  static constexpr int kSlots = 4;
  static constexpr std::size_t kRetireThreshold = 64;

 private:
  struct alignas(64) Slot {
    std::array<std::atomic<Node*>, kSlots> hp{};
    std::atomic<bool> active{false};
  };

 public:
  class Handle {
   public:
    Handle(Handle&& o) noexcept
        : cursor_owner(o.cursor_owner),
          d_(o.d_),
          slot_(o.slot_),
          retired_(std::move(o.retired_)),
          cache_(std::move(o.cache_)) {
      o.d_ = nullptr;
      o.retired_.clear();
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() {
      if (d_ == nullptr) return;
      // Departure protocol -- see the file comment. The final scan runs
      // with our own cells still published, so a self-protected cursor
      // node correctly survives into the orphan stack rather than being
      // freed out from under a concurrent reader of the same node.
      d_->scan(retired_);
      d_->limbo_.fetch_sub(retired_.size(), std::memory_order_relaxed);
      for (Node* n : retired_) d_->push_orphan(n);
      retired_.clear();
      for (auto& h : d_->slots_[slot_].hp)
        h.store(nullptr, std::memory_order_release);
      d_->slots_[slot_].active.store(false, std::memory_order_release);
    }

    struct Guard {};
    Guard guard() { return {}; }

    /// Node allocation, through the per-thread slot cache (a plain
    /// `new` when the domain runs in heap mode). The cache drains on
    /// handle destruction -- and on abandon: cached slots are clean
    /// memory, never protected state, so a crash leaks none of them.
    template <typename... Args>
    Node* construct(Args&&... args) {
      return cache_.construct(std::forward<Args>(args)...);
    }

    /// Free a never-published node (a lost insert race) immediately:
    /// no reader can hold it, so it skips retire/scan entirely.
    void dispose(Node* n) { cache_.destroy(n); }

    /// Publish: the store must be ordered before the caller's
    /// revalidation read, hence seq_cst (a release store could be
    /// reordered past the subsequent load on x86 and elsewhere).
    void protect(int slot, Node* n) {
      d_->slots_[slot_].hp[static_cast<std::size_t>(slot)].store(
          n, std::memory_order_seq_cst);
    }

    void clear(int slot) {
      d_->slots_[slot_].hp[static_cast<std::size_t>(slot)].store(
          nullptr, std::memory_order_release);
    }

    void retire(Node* n) {
      retired_.push_back(n);
      d_->limbo_.fetch_add(1, std::memory_order_relaxed);
      if (retired_.size() >= kRetireThreshold) collect();
    }

    /// Scan now instead of waiting for the retire threshold (departing
    /// service workers and the slot-reuse tests force passes with it).
    void collect() { d_->scan(retired_); }

    /// Retired-not-yet-freed nodes parked on this handle.
    std::size_t limbo_size() const { return retired_.size(); }

    /// Fault injection: the owning worker crashed.
    /// kAbortWithGuardHeld leaves every published cell as-is -- each
    /// dead cell quarantines at most one node from every future scan,
    /// which is HP's whole blast radius (contrast the EBR horizon
    /// stall). kDepartWithoutRelease models a worker dying *between*
    /// operations: the traversal cells are empty but the persistent
    /// kCursor cell (by convention the highest slot) is still
    /// published, so exactly that one leaks. Either way the retire bag
    /// is parked on the domain -- counted by limbo_nodes(), but
    /// unadoptable -- and the slot stays leased until reap_crashed().
    /// The handle is dead afterwards (its destructor is a no-op).
    void abandon(faults::FaultKind k) {
      PRAGMALIST_CHECK(!faults::is_op_fault(k),
                       "op-level faults are injected by the engine, not "
                       "the reclaim handle");
      if (k == faults::FaultKind::kDepartWithoutRelease) {
        for (int s = 0; s + 1 < kSlots; ++s)
          d_->slots_[slot_].hp[static_cast<std::size_t>(s)].store(
              nullptr, std::memory_order_release);
      }
      d_->park_crashed(slot_, retired_);
      d_ = nullptr;
    }

    /// Fault injection (kRetireSkipped): `n` was unlinked but the
    /// crash skipped its retire. The domain attributes and owns it --
    /// counted by blast_stats().leaked_nodes, freed only at teardown,
    /// never part of limbo.
    void leak(Node* n) { d_->leak_node(n); }

    /// Which borrower (list engine) currently owns the persistent
    /// kCursor cell -- see the file comment. Only ever read/written by
    /// the handle's own thread; nullptr when the cell is unclaimed.
    const void* cursor_owner = nullptr;

   private:
    friend class Hp;
    Handle(Hp* d, int slot) : d_(d), slot_(slot), cache_(&d->pool_) {}

    Hp* d_;
    int slot_;
    std::vector<Node*> retired_;
    alloc::ThreadCache<Node> cache_;
  };

  explicit Hp(alloc::Mode mode = alloc::Mode::kHeap) : pool_(mode) {}
  Hp(const Hp&) = delete;
  Hp& operator=(const Hp&) = delete;

  ~Hp() {
    Node* r = orphans_.load(std::memory_order_acquire);
    while (r != nullptr) {
      Node* next = r->reg_next;
      pool_.destroy(r);
      r = next;
    }
    // Crashed leases nobody reaped, and attributed leaks: the domain
    // owns both, so even a faulted run tears down ASan-clean.
    for (const auto& lease : crashed_)
      for (Node* n : lease.retired) pool_.destroy(n);
    for (Node* n : leaked_) pool_.destroy(n);
  }

  Handle make_handle() {
    for (int i = 0; i < kMaxHandles; ++i) {
      bool expected = false;
      if (slots_[i].active.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        // Re-lease: the departed owner's release-store of `active`
        // ordered its cell clears before this CAS, so the cells are
        // null; re-null defensively so a fresh lease never starts with
        // stale protection even if the slot was never used before.
        for (auto& h : slots_[i].hp)
          h.store(nullptr, std::memory_order_relaxed);
        return Handle(this, i);
      }
    }
    PRAGMALIST_CHECK(false, "reclaim::Hp: more than 256 live handles");
    __builtin_unreachable();
  }

  void track(Node*) { allocated_.fetch_add(1, std::memory_order_relaxed); }

  std::size_t live_nodes() const {
    return allocated_.load(std::memory_order_relaxed) -
           freed_.load(std::memory_order_relaxed);
  }

  /// Retired-not-yet-freed nodes: every handle's retire bag plus the
  /// orphan stack. The soak harness samples this as the limbo-depth
  /// series.
  std::size_t limbo_nodes() const {
    return limbo_.load(std::memory_order_relaxed);
  }

  /// Supervisor recovery: release every crashed lease. Hands the
  /// parked retire bag to the orphan stack (the next scan by any live
  /// handle adopts it), clears the dead cells -- un-quarantining
  /// whatever they pinned -- and frees the slot for re-lease. Returns
  /// the number of leases reaped. Safe to call from any thread while
  /// workers run.
  std::size_t reap_crashed() {
    std::vector<CrashedLease> leases;
    {
      std::lock_guard<std::mutex> lock(crashed_mu_);
      leases.swap(crashed_);
    }
    if (leases.empty()) return 0;
    std::size_t parked = 0;
    for (auto& lease : leases) {
      parked += lease.retired.size();
      // Same order as a clean departure: orphan the bag first, clear
      // the cells, then the release-store of `active` publishes the
      // nulls to the next make_handle.
      for (Node* n : lease.retired) core::push_intrusive(orphans_, n);
      for (auto& h : slots_[lease.slot].hp)
        h.store(nullptr, std::memory_order_release);
      slots_[lease.slot].active.store(false, std::memory_order_release);
    }
    parked_limbo_.fetch_sub(parked, std::memory_order_relaxed);
    return leases.size();
  }

  /// Blast-radius snapshot (see faults::BlastStats): leaked_cells
  /// counts the non-null hazard cells of crashed leases -- the exact
  /// number of nodes a scan may have to quarantine because of the
  /// crashes. No horizon_lag: HP has no epoch to stall.
  faults::BlastStats blast_stats() const {
    faults::BlastStats b;
    b.leaked_nodes = leaked_count_.load(std::memory_order_relaxed);
    b.parked_limbo = parked_limbo_.load(std::memory_order_relaxed);
    b.leaked_slabs = leaked_slab_count();
    std::lock_guard<std::mutex> lock(crashed_mu_);
    b.crashed_slots = crashed_.size();
    for (const auto& lease : crashed_)
      for (const auto& cell : slots_[lease.slot].hp)
        if (cell.load(std::memory_order_acquire) != nullptr)
          ++b.leaked_cells;
    return b;
  }

  /// Domain-level allocation (sentinels, teardown paths).
  template <typename... Args>
  Node* construct(Args&&... args) {
    return pool_.construct(std::forward<Args>(args)...);
  }
  void destroy(Node* n) { pool_.destroy(n); }

  alloc::Mode alloc_mode() const { return pool_.mode(); }
  alloc::SlabStats slab_stats() const { return pool_.stats(); }
  alloc::SlabPool<Node>& pool() { return pool_; }

 private:
  friend class Handle;

  /// Free every retiree no hazard pointer currently protects. Adopts
  /// the orphan stack first (retirees of departed handles), so one
  /// surviving handle is enough to keep the whole domain's garbage
  /// bounded under thread churn.
  void scan(std::vector<Node*>& retired) {
    Node* o = orphans_.exchange(nullptr, std::memory_order_acq_rel);
    while (o != nullptr) {
      Node* next = o->reg_next;
      retired.push_back(o);
      o = next;
    }
    std::unordered_set<Node*> protected_nodes;
    for (const auto& slot : slots_) {
      if (!slot.active.load(std::memory_order_acquire)) continue;
      for (const auto& hazard : slot.hp) {
        Node* n = hazard.load(std::memory_order_acquire);
        if (n != nullptr) protected_nodes.insert(n);
      }
    }
    std::vector<Node*> keep;
    keep.reserve(retired.size());
    std::size_t freed = 0;
    for (Node* n : retired) {
      if (protected_nodes.count(n) != 0) {
        keep.push_back(n);
      } else {
        pool_.destroy(n);
        ++freed;
      }
    }
    retired = std::move(keep);
    freed_.fetch_add(freed, std::memory_order_relaxed);
    limbo_.fetch_sub(freed, std::memory_order_relaxed);
  }

  void push_orphan(Node* n) {
    limbo_.fetch_add(1, std::memory_order_relaxed);
    core::push_intrusive(orphans_, n);
  }

  /// One abandoned handle: the slot it still occupies (cells possibly
  /// still published) and its parked retire bag.
  struct CrashedLease {
    int slot;
    std::vector<Node*> retired;
  };

  /// Park an abandoned handle's retire bag and record the lease. The
  /// bag stays counted in limbo_ (retired, not freed); the slot stays
  /// active so its cells keep quarantining until reap_crashed().
  void park_crashed(int slot, std::vector<Node*>& retired) {
    CrashedLease lease;
    lease.slot = slot;
    lease.retired = std::move(retired);
    retired.clear();
    std::lock_guard<std::mutex> lock(crashed_mu_);
    parked_limbo_.fetch_add(lease.retired.size(),
                            std::memory_order_relaxed);
    crashed_.push_back(std::move(lease));
  }

  /// Attribute a kRetireSkipped leak: the node stays allocated (it is
  /// outside limbo and the orphan stack) and is freed at teardown.
  void leak_node(Node* n) {
    std::lock_guard<std::mutex> lock(leaked_mu_);
    leaked_.push_back(n);
    leaked_count_.store(leaked_.size(), std::memory_order_relaxed);
  }

  /// Slab-leak attribution: how many distinct slabs are pinned live by
  /// kRetireSkipped leaks. Zero in heap mode (no slabs to pin).
  std::size_t leaked_slab_count() const {
    if (pool_.mode() != alloc::Mode::kSlab) return 0;
    std::lock_guard<std::mutex> lock(leaked_mu_);
    std::vector<const void*> slabs;
    for (Node* n : leaked_) {
      const void* s = pool_.slab_of(n);
      if (std::find(slabs.begin(), slabs.end(), s) == slabs.end())
        slabs.push_back(s);
    }
    return slabs.size();
  }

  alloc::SlabPool<Node> pool_;  // first: every member above drains into it
  Slot slots_[kMaxHandles];
  std::atomic<Node*> orphans_{nullptr};
  std::atomic<std::size_t> allocated_{0};
  std::atomic<std::size_t> freed_{0};
  std::atomic<std::size_t> limbo_{0};
  mutable std::mutex crashed_mu_;
  std::vector<CrashedLease> crashed_;  // guarded by crashed_mu_
  std::atomic<std::size_t> parked_limbo_{0};
  mutable std::mutex leaked_mu_;
  std::vector<Node*> leaked_;  // guarded by leaked_mu_
  std::atomic<std::size_t> leaked_count_{0};
};

}  // namespace pragmalist::reclaim
