// Pluggable safe memory reclamation for the list variants.
//
// Every policy is a class template over the node type and exposes the
// same duck-typed surface, so the list engines can be parameterized on
// a `template <typename> class ReclaimPolicy` and select code paths
// with `if constexpr` on the policy's capability constants:
//
//   static constexpr bool kStableAddresses;
//       Nodes are never freed (or reused) while the list is alive, so
//       raw node pointers stay dereferenceable across operations. Only
//       the arena guarantees this; it is what makes per-handle cursors
//       and the doubly family's back-pointer hints safe without any
//       per-access protection.
//   static constexpr bool kHazards;
//       Traversals must publish a hazard pointer on every node before
//       dereferencing it and revalidate reachability afterwards (see
//       singly_family.hpp for the anchored-validation walk). Implies
//       per-access cost but per-thread bounded garbage.
//   static constexpr bool kReclaims;
//       retire() eventually frees nodes mid-run. When true the list
//       must retire every node it physically detaches and must free the
//       still-linked chain itself on destruction; when false the policy
//       owns every tracked node and frees the lot when it dies.
//
//   Handle make_handle();        // per-thread, move-only, released on
//                                // destruction; must not outlive the
//                                // policy object. Slots are re-leased:
//                                // a departed handle's slot (and its
//                                // hazard cells) may be handed to a
//                                // later arrival, see hp.hpp
//   void track(Node* n);         // called once per *published* node
//   std::size_t live_nodes();    // tracked minus freed: the node
//                                // footprint the churn tests bound
//   std::size_t limbo_nodes();   // reclaiming policies only: retired
//                                // but not yet freed -- the limbo
//                                // depth the soak harness samples
//
// Per-thread Handle surface:
//   auto guard();                // RAII critical section around one
//                                // operation (epoch pin for EBR, no-op
//                                // otherwise)
//   void retire(Node* n);        // n is detached and will never be
//                                // reached again except through stale
//                                // protected pointers; free it once no
//                                // reader can hold it
//   void collect();              // reclaiming policies only: force a
//                                // free pass now (departing service
//                                // workers, tests)
//   void protect(int slot, Node* n);  // hazard policies only
//   void clear(int slot);             //
//
// Fault-injection surface (src/faults/faults.hpp): every Handle has
//   void abandon(faults::FaultKind);  // the owner crashed: skip the
//                                     // departure protocol, possibly
//                                     // with a guard/cell still held;
//                                     // the handle is dead afterwards
// and the reclaiming policies add Handle::leak(Node*) (a
// retire-skipped node the domain attributes) plus domain-level
// reap_crashed() / blast_stats() for supervisor recovery and the
// blast-radius metrics. Arena's abandon is a no-op -- it is
// fault-oblivious by construction.
//
// Each policy header states its progress guarantee, worst-case memory
// bound, and the traversal capabilities it demands of the engine.
//
// The retire contract every caller upholds: a node is retired by
// exactly one thread -- the one whose CAS physically detached it --
// and only after that CAS succeeded. Arena's retire is a no-op;
// nothing in the shared code assumes retire implies free.
//
// A policy instance is a *domain*, not a per-list resource: the list
// engines hold their domain through a shared_ptr, so any number of
// same-node-type lists (the shards of shard::ShardedSet) can run
// against one epoch clock / hazard-slot table / registry, and a
// worker thread leases ONE handle from the domain and lends it to
// every shard's engine handle (Engine::make_handle(ReclaimHandle&)).
// That keeps per-process reclamation state O(threads), never
// O(threads x shards).
#pragma once

#include "src/reclaim/arena.hpp"        // IWYU pragma: export
#include "src/reclaim/ebr.hpp"          // IWYU pragma: export
#include "src/reclaim/hp.hpp"           // IWYU pragma: export
#include "src/reclaim/maybe_owned.hpp"  // IWYU pragma: export
