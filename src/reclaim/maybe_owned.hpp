// MaybeOwned<Handle>: the one place the owning-vs-borrowing reclaim
// handle distinction lives. A stand-alone list's handle *owns* its
// per-thread reclaim handle (leased from the list's own domain,
// departure protocol runs when the list handle dies); a shard's engine
// handle *borrows* the single reclaim handle its worker leased for the
// whole sharded set (shard::ShardedSet keeps it alive and on a stable
// heap address). Every list engine stores one of these and reaches the
// reclaim surface through operator-> -- and because the move
// constructor re-seats the pointer at the owned copy, the engine
// Handle's move constructor can stay defaulted.
#pragma once

#include <optional>
#include <utility>

namespace pragmalist::reclaim {

template <typename Handle>
class MaybeOwned {
 public:
  explicit MaybeOwned(Handle owned) : owned_(std::move(owned)), ptr_(&*owned_) {}
  explicit MaybeOwned(Handle* borrowed) : ptr_(borrowed) {}

  MaybeOwned(MaybeOwned&& o) noexcept
      : owned_(std::move(o.owned_)), ptr_(owned_ ? &*owned_ : o.ptr_) {}
  MaybeOwned& operator=(MaybeOwned&&) = delete;

  Handle* operator->() const { return ptr_; }
  Handle& operator*() const { return *ptr_; }

 private:
  std::optional<Handle> owned_;  // absent when borrowing
  Handle* ptr_;
};

}  // namespace pragmalist::reclaim
