// The paper's reclamation scheme as a policy: every published node is
// threaded onto a lock-free registry and freed only when the list dies.
// Nothing is freed (or reused) mid-run, so traversals may hold stale
// pointers, CAS never sees ABA, and cursors / back-pointer hints are
// safe with no per-access protection. The EBR and HP policies exist to
// price real mid-run reclamation against this choice.
//
//   Progress guarantee: wait-free -- track() is one lock-free push,
//     retire() and guard() are no-ops; reclamation cannot interfere
//     with operations because there is none until teardown.
//   Memory bound: none by design. The footprint is one node per
//     successful insert for the whole lifetime of the list (the churn
//     tier's ArenaContrast test measures exactly this), which is why
//     the arena is a benchmark-harness scheme and not a service-mode
//     one.
//   Engine requirements: none -- any traversal is safe as-is. This is
//     the only policy with kStableAddresses, the capability gate for
//     per-handle cursors without a hazard slot and for the doubly
//     family's back-pointer hints.
//
// Like the reclaiming policies, one Arena instance is a *domain*: a
// sharded set backs every shard with the same registry, so
// allocated_nodes() aggregates across shards for free and handles
// (stateless here) are leased per thread.
#pragma once

#include <cstddef>
#include <utility>

#include "src/alloc/slab.hpp"
#include "src/core/list_base.hpp"
#include "src/faults/faults.hpp"

namespace pragmalist::reclaim {

template <typename Node>
class Arena {
 public:
  static constexpr bool kStableAddresses = true;
  static constexpr bool kHazards = false;
  static constexpr bool kReclaims = false;

  class Handle {
   public:
    struct Guard {};
    Guard guard() { return {}; }
    void retire(Node*) {}  // the registry frees everything at teardown

    /// Node allocation, through the per-thread slot cache (a plain
    /// `new` when the domain runs in heap mode).
    template <typename... Args>
    Node* construct(Args&&... args) {
      return cache_.construct(std::forward<Args>(args)...);
    }

    /// Free a never-published node (a lost insert race). Published
    /// nodes are the registry's to free at teardown.
    void dispose(Node* n) { cache_.destroy(n); }

    /// Fault injection is a no-op: there is no guard to leak, no
    /// departure protocol to skip, and retires already do nothing.
    /// The arena is fault-oblivious by construction -- crashed workers
    /// cost exactly what well-behaved ones do (the fault tier asserts
    /// its blast stats stay all-zero). The slot cache still drains on
    /// destruction: cached slots are clean memory, not protected state.
    void abandon(faults::FaultKind) {}

   private:
    friend class Arena;
    explicit Handle(alloc::SlabPool<Node>* pool) : cache_(pool) {}
    alloc::ThreadCache<Node> cache_;
  };

  explicit Arena(alloc::Mode mode = alloc::Mode::kHeap) : pool_(mode) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Free every tracked node through the pool *before* the members
  /// destruct (the registry's own destructor would `delete` them).
  ~Arena() {
    registry_.free_all([this](Node* n) { pool_.destroy(n); });
  }

  Handle make_handle() { return Handle(&pool_); }

  void track(Node* n) { registry_.track(n); }

  std::size_t live_nodes() const { return registry_.count(); }

  /// Domain-level allocation (sentinels, teardown paths).
  template <typename... Args>
  Node* construct(Args&&... args) {
    return pool_.construct(std::forward<Args>(args)...);
  }
  void destroy(Node* n) { pool_.destroy(n); }

  alloc::Mode alloc_mode() const { return pool_.mode(); }
  alloc::SlabStats slab_stats() const { return pool_.stats(); }
  alloc::SlabPool<Node>& pool() { return pool_; }

 private:
  alloc::SlabPool<Node> pool_;  // first: nodes drain into it above
  core::AllocRegistry<Node> registry_;
};

}  // namespace pragmalist::reclaim
