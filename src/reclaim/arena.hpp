// The paper's reclamation scheme as a policy: every published node is
// threaded onto a lock-free registry and freed only when the list dies.
// Nothing is freed (or reused) mid-run, so traversals may hold stale
// pointers, CAS never sees ABA, and cursors / back-pointer hints are
// safe with no per-access protection. The EBR and HP policies exist to
// price real mid-run reclamation against this choice.
#pragma once

#include <cstddef>

#include "src/core/list_base.hpp"

namespace pragmalist::reclaim {

template <typename Node>
class Arena {
 public:
  static constexpr bool kStableAddresses = true;
  static constexpr bool kHazards = false;
  static constexpr bool kReclaims = false;

  class Handle {
   public:
    struct Guard {};
    Guard guard() { return {}; }
    void retire(Node*) {}  // the registry frees everything at teardown
  };

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  Handle make_handle() { return {}; }

  void track(Node* n) { registry_.track(n); }

  std::size_t live_nodes() const { return registry_.count(); }

 private:
  core::AllocRegistry<Node> registry_;
};

}  // namespace pragmalist::reclaim
