// Michael's list under epoch-based reclamation: every operation runs
// inside an epoch-pinned critical section; unlinked nodes are retired
// with the epoch they died in and freed once every pinned handle has
// moved at least two epochs past it. Cheaper per-access than hazard
// pointers (no per-step publish/validate), at the cost of reclamation
// stalling whenever a thread parks inside a critical section. The
// slot/epoch/limbo machinery lives in reclaim::Ebr, shared with the
// `<variant>/ebr` catalog combinations.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/iset.hpp"
#include "src/core/list_base.hpp"
#include "src/reclaim/ebr.hpp"
#include "src/reclaim/maybe_owned.hpp"

namespace pragmalist::baselines {

class EbrMichaelList {
  struct Node {
    long key;
    core::MarkPtr<Node> next;
    Node* reg_next = nullptr;

    explicit Node(long k, Node* succ = nullptr) : key(k), next(succ) {}
  };

  using Domain = reclaim::Ebr<Node>;

 public:
  /// Shared-domain aliases, same shape as the paper-variant engines, so
  /// shard::ShardedSet can run N Michael lists against one epoch clock.
  using Reclaim = Domain;
  using ReclaimHandle = Domain::Handle;

  class Handle {
   public:
    bool add(long key) {
      ++ctr_.add_calls;
      auto pin = rh_->guard();
      const bool ok = list_->do_add(*this, key);
      ctr_.adds += ok;
      return ok;
    }
    bool remove(long key) {
      ++ctr_.rem_calls;
      auto pin = rh_->guard();
      const bool ok = list_->do_remove(*this, key);
      ctr_.rems += ok;
      return ok;
    }
    bool contains(long key) {
      ++ctr_.con_calls;
      auto pin = rh_->guard();
      const bool ok = list_->do_contains(key);
      ctr_.cons += ok;
      return ok;
    }
    long range_scan(long lo, long hi, const core::KeySink& sink) {
      return core::counted_range_scan(*this, ctr_, lo, hi, sink);
    }
    std::vector<long> ascend(long from, std::size_t limit) {
      return core::counted_ascend(*this, ctr_, from, limit);
    }
    /// Uncounted paging primitive for the sharded k-way merge. One
    /// epoch pin covers the whole page -- the EBR scan protocol.
    long scan_raw(long from, long hi, long limit,
                  const core::KeySink& sink) {
      auto pin = rh_->guard();
      return core::scan::plain_scan(list_->head_, from, hi, limit, sink);
    }
    const core::OpCounters& counters() const { return ctr_; }

    Handle(Handle&&) = default;  // MaybeOwned re-seats its pointer
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

   private:
    friend class EbrMichaelList;
    Handle(EbrMichaelList* list, Domain::Handle rh)  // owning
        : list_(list), rh_(std::move(rh)) {}
    Handle(EbrMichaelList* list, Domain::Handle* rh)  // borrowing
        : list_(list), rh_(rh) {}

    EbrMichaelList* list_;
    reclaim::MaybeOwned<Domain::Handle> rh_;
    core::OpCounters ctr_;
  };

  explicit EbrMichaelList(std::shared_ptr<Domain> domain = nullptr)
      : domain_(domain ? std::move(domain) : std::make_shared<Domain>()),
        head_(new Node(std::numeric_limits<long>::min())) {
    domain_->track(head_);
  }
  EbrMichaelList(const EbrMichaelList&) = delete;
  EbrMichaelList& operator=(const EbrMichaelList&) = delete;

  ~EbrMichaelList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load().ptr;
      delete n;
      n = next;
    }
  }

  Handle make_handle() { return Handle(this, domain_->make_handle()); }

  /// Sharded use: borrow a per-thread reclaim handle leased from this
  /// list's (shared) domain.
  Handle make_handle(ReclaimHandle& shared) { return Handle(this, &shared); }

  bool validate(std::string* err) const {
    return core::quiescent::validate_chain(head_, domain_->live_nodes() + 1,
                                           err);
  }
  std::size_t size() const { return core::quiescent::size(head_); }
  std::vector<long> snapshot() const {
    return core::quiescent::snapshot(head_);
  }
  std::size_t allocated_nodes() const { return domain_->live_nodes(); }
  std::size_t limbo_nodes() const { return domain_->limbo_nodes(); }

 private:
  struct Pos {
    core::MarkPtr<Node>* prev;
    Node* cur;
    Node* succ;
  };

  /// Michael-style find (unlink marked nodes on sight, restart on CAS
  /// failure). No per-step protection needed: the caller is pinned.
  Pos find(Handle& h, long key) {
  try_again:
    core::MarkPtr<Node>* prev = &head_->next;
    Node* cur = prev->load().ptr;
    for (;;) {
      if (cur == nullptr) return {prev, nullptr, nullptr};
      const auto nv = cur->next.load();
      if (nv.marked) {
        if (!prev->cas_clean(cur, nv.ptr)) goto try_again;
        h.rh_->retire(cur);
        cur = nv.ptr;
        continue;
      }
      if (cur->key >= key) return {prev, cur, nv.ptr};
      prev = &cur->next;
      cur = nv.ptr;
    }
  }

  bool do_add(Handle& h, long key) {
    Node* node = nullptr;
    for (;;) {
      const Pos p = find(h, key);
      if (p.cur != nullptr && p.cur->key == key) {
        delete node;  // never published
        return false;
      }
      if (node == nullptr)
        node = new Node(key, p.cur);
      else
        node->next.store(p.cur);
      if (p.prev->cas_clean(p.cur, node)) {
        domain_->track(node);
        return true;
      }
    }
  }

  bool do_remove(Handle& h, long key) {
    for (;;) {
      const Pos p = find(h, key);
      if (p.cur == nullptr || p.cur->key != key) return false;
      if (!p.cur->next.cas_mark(p.succ)) continue;
      if (p.prev->cas_clean(p.cur, p.succ))
        h.rh_->retire(p.cur);
      else
        find(h, key);
      return true;
    }
  }

  bool do_contains(long key) {
    const Node* cur = head_->next.load().ptr;
    while (cur != nullptr) {
      const auto nv = cur->next.load();
      if (nv.marked) {
        cur = nv.ptr;
        continue;
      }
      if (cur->key >= key) break;
      cur = nv.ptr;
    }
    return cur != nullptr && cur->key == key;
  }

  std::shared_ptr<Domain> domain_;
  Node* head_;
};

}  // namespace pragmalist::baselines
