// Michael's list under epoch-based reclamation: every operation runs
// inside an epoch-pinned critical section; unlinked nodes are retired
// with the epoch they died in and freed once every pinned handle has
// moved at least two epochs past it. Cheaper per-access than hazard
// pointers (no per-step publish/validate), at the cost of reclamation
// stalling whenever a thread parks inside a critical section.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "src/common/debug.hpp"
#include "src/core/iset.hpp"
#include "src/core/list_base.hpp"

namespace pragmalist::baselines {

class EbrMichaelList {
  struct Node {
    long key;
    core::MarkPtr<Node> next;
    Node* reg_next = nullptr;

    explicit Node(long k, Node* succ = nullptr) : key(k), next(succ) {}
  };

  static constexpr int kMaxHandles = 256;
  static constexpr std::size_t kRetireThreshold = 128;

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<bool> pinned{false};
    std::atomic<bool> active{false};
  };

 public:
  class Handle {
   public:
    Handle(Handle&& o) noexcept
        : list_(o.list_), slot_(o.slot_), limbo_(std::move(o.limbo_)),
          ctr_(o.ctr_) {
      o.list_ = nullptr;
      o.limbo_.clear();
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() {
      if (list_ == nullptr) return;
      for (const auto& [node, epoch] : limbo_) list_->push_leftover(node);
      list_->slots_[slot_].active.store(false, std::memory_order_release);
    }

    bool add(long key) {
      ++ctr_.add_calls;
      Pin pin(*this);
      const bool ok = list_->do_add(*this, key);
      ctr_.adds += ok;
      return ok;
    }
    bool remove(long key) {
      ++ctr_.rem_calls;
      Pin pin(*this);
      const bool ok = list_->do_remove(*this, key);
      ctr_.rems += ok;
      return ok;
    }
    bool contains(long key) {
      ++ctr_.con_calls;
      Pin pin(*this);
      const bool ok = list_->do_contains(key);
      ctr_.cons += ok;
      return ok;
    }
    const core::OpCounters& counters() const { return ctr_; }

   private:
    friend class EbrMichaelList;
    Handle(EbrMichaelList* list, int slot) : list_(list), slot_(slot) {}

    /// RAII epoch pin around one operation.
    struct Pin {
      explicit Pin(Handle& h) : slot(h.list_->slots_[h.slot_]) {
        slot.pinned.store(true, std::memory_order_seq_cst);
        slot.epoch.store(
            h.list_->global_epoch_.load(std::memory_order_seq_cst),
            std::memory_order_seq_cst);
      }
      ~Pin() { slot.pinned.store(false, std::memory_order_release); }
      Slot& slot;
    };

    EbrMichaelList* list_;
    int slot_;
    std::vector<std::pair<Node*, std::uint64_t>> limbo_;
    core::OpCounters ctr_;
  };

  EbrMichaelList() : head_(new Node(std::numeric_limits<long>::min())) {}
  EbrMichaelList(const EbrMichaelList&) = delete;
  EbrMichaelList& operator=(const EbrMichaelList&) = delete;

  ~EbrMichaelList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load().ptr;
      delete n;
      n = next;
    }
    Node* r = leftovers_.load(std::memory_order_acquire);
    while (r != nullptr) {
      Node* next = r->reg_next;
      delete r;
      r = next;
    }
  }

  Handle make_handle() {
    for (int i = 0; i < kMaxHandles; ++i) {
      bool expected = false;
      if (slots_[i].active.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel))
        return Handle(this, i);
    }
    PRAGMALIST_CHECK(false, "EbrMichaelList: more than 256 live handles");
    __builtin_unreachable();
  }

  bool validate(std::string* err) const {
    return core::quiescent::validate_chain(head_, std::size_t{1} << 28, err);
  }
  std::size_t size() const { return core::quiescent::size(head_); }
  std::vector<long> snapshot() const {
    return core::quiescent::snapshot(head_);
  }

 private:
  struct Pos {
    core::MarkPtr<Node>* prev;
    Node* cur;
    Node* succ;
  };

  /// Michael-style find (unlink marked nodes on sight, restart on CAS
  /// failure). No per-step protection needed: the caller is pinned.
  Pos find(Handle& h, long key) {
  try_again:
    core::MarkPtr<Node>* prev = &head_->next;
    Node* cur = prev->load().ptr;
    for (;;) {
      if (cur == nullptr) return {prev, nullptr, nullptr};
      const auto nv = cur->next.load();
      if (nv.marked) {
        if (!prev->cas_clean(cur, nv.ptr)) goto try_again;
        retire(h, cur);
        cur = nv.ptr;
        continue;
      }
      if (cur->key >= key) return {prev, cur, nv.ptr};
      prev = &cur->next;
      cur = nv.ptr;
    }
  }

  bool do_add(Handle& h, long key) {
    Node* node = nullptr;
    for (;;) {
      const Pos p = find(h, key);
      if (p.cur != nullptr && p.cur->key == key) {
        delete node;  // never published
        return false;
      }
      if (node == nullptr) node = new Node(key, p.cur);
      node->next.store(p.cur);
      if (p.prev->cas_clean(p.cur, node)) return true;
    }
  }

  bool do_remove(Handle& h, long key) {
    for (;;) {
      const Pos p = find(h, key);
      if (p.cur == nullptr || p.cur->key != key) return false;
      if (!p.cur->next.cas_mark(p.succ)) continue;
      if (p.prev->cas_clean(p.cur, p.succ))
        retire(h, p.cur);
      else
        find(h, key);
      return true;
    }
  }

  bool do_contains(long key) {
    const Node* cur = head_->next.load().ptr;
    while (cur != nullptr) {
      const auto nv = cur->next.load();
      if (nv.marked) {
        cur = nv.ptr;
        continue;
      }
      if (cur->key >= key) break;
      cur = nv.ptr;
    }
    return cur != nullptr && cur->key == key;
  }

  void retire(Handle& h, Node* n) {
    h.limbo_.emplace_back(
        n, global_epoch_.load(std::memory_order_acquire));
    if (h.limbo_.size() >= kRetireThreshold) reclaim(h);
  }

  void reclaim(Handle& h) {
    try_advance();
    // A node retired in epoch e is free once every pinned handle has
    // observed an epoch > e + 1.
    std::uint64_t min_epoch = global_epoch_.load(std::memory_order_seq_cst);
    for (const auto& slot : slots_) {
      if (!slot.active.load(std::memory_order_acquire)) continue;
      if (!slot.pinned.load(std::memory_order_seq_cst)) continue;
      const std::uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
      if (e < min_epoch) min_epoch = e;
    }
    std::vector<std::pair<Node*, std::uint64_t>> keep;
    keep.reserve(h.limbo_.size());
    for (const auto& entry : h.limbo_) {
      if (entry.second + 2 <= min_epoch)
        delete entry.first;
      else
        keep.push_back(entry);
    }
    h.limbo_ = std::move(keep);
  }

  /// Bump the global epoch if every pinned handle caught up with it.
  void try_advance() {
    const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    for (const auto& slot : slots_) {
      if (!slot.active.load(std::memory_order_acquire)) continue;
      if (!slot.pinned.load(std::memory_order_seq_cst)) continue;
      if (slot.epoch.load(std::memory_order_seq_cst) != e) return;
    }
    std::uint64_t expected = e;
    global_epoch_.compare_exchange_strong(expected, e + 1,
                                          std::memory_order_seq_cst);
  }

  void push_leftover(Node* n) { core::push_intrusive(leftovers_, n); }

  Node* head_;
  std::array<Slot, kMaxHandles> slots_;
  std::atomic<std::uint64_t> global_epoch_{2};
  std::atomic<Node*> leftovers_{nullptr};
};

}  // namespace pragmalist::baselines
