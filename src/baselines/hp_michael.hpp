// Michael's lock-free list with hazard-pointer reclamation: nodes are
// retired at unlink time and physically freed during the run, unlike
// the paper variants' end-of-run arena. This is the price the paper's
// §2 says the mild improvements would tolerate; bench_reclaim measures
// it. The slot/retire/scan machinery lives in reclaim::Hp, shared with
// the `<variant>/hp` catalog combinations.
//
// Protocol (Michael, PODC'02/TPDS'04): three hazard pointers per
// handle -- slot 0 the current node, slot 1 its successor, slot 2 the
// predecessor node owning the `prev` cell. Every protection is
// published then revalidated against the shared cell before use; any
// mismatch restarts from the head (this list is draconic by
// construction, as Michael's must be).
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/iset.hpp"
#include "src/core/list_base.hpp"
#include "src/reclaim/hp.hpp"
#include "src/reclaim/maybe_owned.hpp"

namespace pragmalist::baselines {

class HpMichaelList {
  struct Node {
    long key;
    core::MarkPtr<Node> next;
    Node* reg_next = nullptr;  // leftover-stack linkage, not an arena

    explicit Node(long k, Node* succ = nullptr) : key(k), next(succ) {}
  };

  using Domain = reclaim::Hp<Node>;

 public:
  /// Shared-domain aliases, same shape as the paper-variant engines, so
  /// shard::ShardedSet can run N Michael lists against one slot table.
  using Reclaim = Domain;
  using ReclaimHandle = Domain::Handle;

  class Handle {
   public:
    bool add(long key) {
      ++ctr_.add_calls;
      const bool ok = list_->do_add(*this, key);
      ctr_.adds += ok;
      return ok;
    }
    bool remove(long key) {
      ++ctr_.rem_calls;
      const bool ok = list_->do_remove(*this, key);
      ctr_.rems += ok;
      return ok;
    }
    bool contains(long key) {
      ++ctr_.con_calls;
      const bool ok = list_->do_contains(*this, key);
      ctr_.cons += ok;
      return ok;
    }
    long range_scan(long lo, long hi, const core::KeySink& sink) {
      return core::counted_range_scan(*this, ctr_, lo, hi, sink);
    }
    std::vector<long> ascend(long from, std::size_t limit) {
      return core::counted_ascend(*this, ctr_, from, limit);
    }
    /// Uncounted paging primitive for the sharded k-way merge. Runs the
    /// shared re-anchoring hazard scan (slots 0-2; Michael's find uses
    /// the same cells, never concurrently on one handle). The scan
    /// steps over marked nodes -- safe under the anchored-validation
    /// argument even though this list's updates are draconic.
    long scan_raw(long from, long hi, long limit,
                  const core::KeySink& sink) {
      return core::scan::hazard_scan(*rh_, list_->head_, from, hi, limit,
                                     sink);
    }
    const core::OpCounters& counters() const { return ctr_; }

    Handle(Handle&&) = default;  // MaybeOwned re-seats its pointer
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

   private:
    friend class HpMichaelList;
    Handle(HpMichaelList* list, Domain::Handle rh)  // owning
        : list_(list), rh_(std::move(rh)) {}
    Handle(HpMichaelList* list, Domain::Handle* rh)  // borrowing
        : list_(list), rh_(rh) {}

    HpMichaelList* list_;
    reclaim::MaybeOwned<Domain::Handle> rh_;
    core::OpCounters ctr_;
  };

  explicit HpMichaelList(std::shared_ptr<Domain> domain = nullptr)
      : domain_(domain ? std::move(domain) : std::make_shared<Domain>()),
        head_(new Node(std::numeric_limits<long>::min())) {
    domain_->track(head_);
  }
  HpMichaelList(const HpMichaelList&) = delete;
  HpMichaelList& operator=(const HpMichaelList&) = delete;

  ~HpMichaelList() {
    // All handles are gone by now; the domain frees parked retirees,
    // the still-linked chain (live or marked) is ours.
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load().ptr;
      delete n;
      n = next;
    }
  }

  Handle make_handle() { return Handle(this, domain_->make_handle()); }

  /// Sharded use: borrow a per-thread reclaim handle leased from this
  /// list's (shared) domain.
  Handle make_handle(ReclaimHandle& shared) { return Handle(this, &shared); }

  bool validate(std::string* err) const {
    return core::quiescent::validate_chain(head_, domain_->live_nodes() + 1,
                                           err);
  }
  std::size_t size() const { return core::quiescent::size(head_); }
  std::vector<long> snapshot() const {
    return core::quiescent::snapshot(head_);
  }
  std::size_t allocated_nodes() const { return domain_->live_nodes(); }
  std::size_t limbo_nodes() const { return domain_->limbo_nodes(); }

 private:
  struct Pos {
    core::MarkPtr<Node>* prev;  // cell, protected via slot 2 unless head
    Node* cur;                  // protected via slot 0
    Node* succ;                 // protected via slot 1
  };

  /// Michael's find: returns with cur == first node with key >= target
  /// (or nullptr), *prev observed == cur, and hazards covering
  /// pred/cur/succ.
  Pos find(Handle& h, long key) {
    auto& rh = *h.rh_;
  try_again:
    core::MarkPtr<Node>* prev = &head_->next;
    rh.clear(2);  // pred is the head
    Node* cur = prev->load().ptr;
    for (;;) {
      if (cur == nullptr) return {prev, nullptr, nullptr};
      rh.protect(0, cur);
      {
        const auto v = prev->load();
        if (v.ptr != cur || v.marked) goto try_again;  // cur unprotected
      }
      const auto nv = cur->next.load();
      rh.protect(1, nv.ptr);
      const auto nv2 = cur->next.load();
      if (nv2.ptr != nv.ptr || nv2.marked != nv.marked) goto try_again;
      if (nv.marked) {
        if (!prev->cas_clean(cur, nv.ptr)) goto try_again;
        h.rh_->retire(cur);
        cur = nv.ptr;  // still protected by slot 1; re-pinned at loop top
        continue;
      }
      if (cur->key >= key) return {prev, cur, nv.ptr};
      prev = &cur->next;
      rh.protect(2, cur);  // protect the pred
      cur = nv.ptr;  // protected by slot 1; slot 0 re-pinned at loop top
    }
  }

  bool do_add(Handle& h, long key) {
    Node* node = nullptr;
    for (;;) {
      const Pos p = find(h, key);
      if (p.cur != nullptr && p.cur->key == key) {
        delete node;  // not yet published, private
        return false;
      }
      if (node == nullptr)
        node = new Node(key, p.cur);
      else
        node->next.store(p.cur);
      if (p.prev->cas_clean(p.cur, node)) {
        domain_->track(node);
        return true;
      }
    }
  }

  bool do_remove(Handle& h, long key) {
    for (;;) {
      const Pos p = find(h, key);
      if (p.cur == nullptr || p.cur->key != key) return false;
      if (!p.cur->next.cas_mark(p.succ)) continue;  // raced; re-find
      if (p.prev->cas_clean(p.cur, p.succ))
        h.rh_->retire(p.cur);
      else
        find(h, key);  // help: the next find sweeps and retires it
      return true;
    }
  }

  bool do_contains(Handle& h, long key) {
    const Pos p = find(h, key);
    return p.cur != nullptr && p.cur->key == key;
  }

  std::shared_ptr<Domain> domain_;
  Node* head_;
};

}  // namespace pragmalist::baselines
