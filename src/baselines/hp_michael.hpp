// Michael's lock-free list with hazard-pointer reclamation: nodes are
// retired at unlink time and physically freed during the run, unlike
// the paper variants' end-of-run arena. This is the price the paper's
// §2 says the mild improvements would tolerate; bench_reclaim measures
// it.
//
// Protocol (Michael, PODC'02/TPDS'04): three hazard pointers per
// handle -- hp[0] the current node, hp[1] its successor, hp[2] the
// predecessor node owning the `prev` cell. Every protection is
// published then revalidated against the shared cell before use; any
// mismatch restarts from the head (this list is draconic by
// construction, as Michael's must be).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <limits>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/common/debug.hpp"
#include "src/core/iset.hpp"
#include "src/core/list_base.hpp"

namespace pragmalist::baselines {

class HpMichaelList {
  struct Node {
    long key;
    core::MarkPtr<Node> next;
    Node* reg_next = nullptr;  // leftover-stack linkage, not an arena

    explicit Node(long k, Node* succ = nullptr) : key(k), next(succ) {}
  };

  static constexpr int kMaxHandles = 256;
  static constexpr int kHazardsPerHandle = 3;
  static constexpr std::size_t kRetireThreshold = 64;

  struct alignas(64) Slot {
    std::array<std::atomic<Node*>, kHazardsPerHandle> hp{};
    std::atomic<bool> active{false};
  };

 public:
  class Handle {
   public:
    Handle(Handle&& o) noexcept
        : list_(o.list_), slot_(o.slot_), retired_(std::move(o.retired_)),
          ctr_(o.ctr_) {
      o.list_ = nullptr;
      o.retired_.clear();
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() {
      if (list_ == nullptr) return;
      // Remaining retirees may still be protected by other handles:
      // park them on the list's leftover stack, freed at list teardown.
      for (Node* n : retired_) list_->push_leftover(n);
      for (auto& h : list_->slots_[slot_].hp)
        h.store(nullptr, std::memory_order_release);
      list_->slots_[slot_].active.store(false, std::memory_order_release);
    }

    bool add(long key) {
      ++ctr_.add_calls;
      const bool ok = list_->do_add(*this, key);
      ctr_.adds += ok;
      return ok;
    }
    bool remove(long key) {
      ++ctr_.rem_calls;
      const bool ok = list_->do_remove(*this, key);
      ctr_.rems += ok;
      return ok;
    }
    bool contains(long key) {
      ++ctr_.con_calls;
      const bool ok = list_->do_contains(*this, key);
      ctr_.cons += ok;
      return ok;
    }
    const core::OpCounters& counters() const { return ctr_; }

   private:
    friend class HpMichaelList;
    Handle(HpMichaelList* list, int slot) : list_(list), slot_(slot) {}

    HpMichaelList* list_;
    int slot_;
    std::vector<Node*> retired_;
    core::OpCounters ctr_;
  };

  HpMichaelList() : head_(new Node(std::numeric_limits<long>::min())) {}
  HpMichaelList(const HpMichaelList&) = delete;
  HpMichaelList& operator=(const HpMichaelList&) = delete;

  ~HpMichaelList() {
    // All handles are gone by now. Linked nodes (live or still-marked)
    // and parked retirees are disjoint sets; free both.
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load().ptr;
      delete n;
      n = next;
    }
    Node* r = leftovers_.load(std::memory_order_acquire);
    while (r != nullptr) {
      Node* next = r->reg_next;
      delete r;
      r = next;
    }
  }

  Handle make_handle() {
    for (int i = 0; i < kMaxHandles; ++i) {
      bool expected = false;
      if (slots_[i].active.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel))
        return Handle(this, i);
    }
    PRAGMALIST_CHECK(false, "HpMichaelList: more than 256 live handles");
    __builtin_unreachable();
  }

  bool validate(std::string* err) const {
    return core::quiescent::validate_chain(head_, std::size_t{1} << 28, err);
  }
  std::size_t size() const { return core::quiescent::size(head_); }
  std::vector<long> snapshot() const {
    return core::quiescent::snapshot(head_);
  }

 private:
  struct Pos {
    core::MarkPtr<Node>* prev;  // cell, protected via hp[2] unless head
    Node* cur;                  // protected via hp[0]
    Node* succ;                 // protected via hp[1]
  };

  /// Michael's find: returns with cur == first node with key >= target
  /// (or nullptr), *prev observed == cur, and hazards covering
  /// pred/cur/succ.
  Pos find(Handle& h, long key) {
    auto& hp = slots_[h.slot_].hp;
  try_again:
    core::MarkPtr<Node>* prev = &head_->next;
    hp[2].store(nullptr, std::memory_order_release);  // pred is the head
    Node* cur = prev->load().ptr;
    for (;;) {
      if (cur == nullptr) return {prev, nullptr, nullptr};
      hp[0].store(cur, std::memory_order_seq_cst);
      {
        const auto v = prev->load();
        if (v.ptr != cur || v.marked) goto try_again;  // cur unprotected
      }
      const auto nv = cur->next.load();
      hp[1].store(nv.ptr, std::memory_order_seq_cst);
      const auto nv2 = cur->next.load();
      if (nv2.ptr != nv.ptr || nv2.marked != nv.marked) goto try_again;
      if (nv.marked) {
        if (!prev->cas_clean(cur, nv.ptr)) goto try_again;
        retire(h, cur);
        cur = nv.ptr;  // still protected by hp[1]; re-pinned at loop top
        continue;
      }
      if (cur->key >= key) return {prev, cur, nv.ptr};
      prev = &cur->next;
      hp[2].store(cur, std::memory_order_seq_cst);  // protect the pred
      cur = nv.ptr;  // protected by hp[1]; hp[0] re-pinned at loop top
    }
  }

  bool do_add(Handle& h, long key) {
    Node* node = nullptr;
    for (;;) {
      const Pos p = find(h, key);
      if (p.cur != nullptr && p.cur->key == key) {
        delete node;  // not yet published, private
        return false;
      }
      if (node == nullptr) node = new Node(key, p.cur);
      node->next.store(p.cur);
      if (p.prev->cas_clean(p.cur, node)) return true;
    }
  }

  bool do_remove(Handle& h, long key) {
    for (;;) {
      const Pos p = find(h, key);
      if (p.cur == nullptr || p.cur->key != key) return false;
      if (!p.cur->next.cas_mark(p.succ)) continue;  // raced; re-find
      if (p.prev->cas_clean(p.cur, p.succ))
        retire(h, p.cur);
      else
        find(h, key);  // help: the next find sweeps and retires it
      return true;
    }
  }

  bool do_contains(Handle& h, long key) {
    const Pos p = find(h, key);
    return p.cur != nullptr && p.cur->key == key;
  }

  void retire(Handle& h, Node* n) {
    h.retired_.push_back(n);
    if (h.retired_.size() >= kRetireThreshold) scan(h);
  }

  /// Free every retiree no hazard pointer currently protects.
  void scan(Handle& h) {
    std::unordered_set<Node*> protected_nodes;
    for (const auto& slot : slots_) {
      if (!slot.active.load(std::memory_order_acquire)) continue;
      for (const auto& hazard : slot.hp) {
        Node* n = hazard.load(std::memory_order_acquire);
        if (n != nullptr) protected_nodes.insert(n);
      }
    }
    std::vector<Node*> keep;
    keep.reserve(h.retired_.size());
    for (Node* n : h.retired_) {
      if (protected_nodes.count(n) != 0)
        keep.push_back(n);
      else
        delete n;
    }
    h.retired_ = std::move(keep);
  }

  void push_leftover(Node* n) { core::push_intrusive(leftovers_, n); }

  Node* head_;
  std::array<Slot, kMaxHandles> slots_;
  std::atomic<Node*> leftovers_{nullptr};
};

}  // namespace pragmalist::baselines
