// Lock-based baselines for the --baselines rows of the paper tables:
//
//   CoarseLockList -- one mutex around a sequential list; the honest
//     "just use a lock" yardstick.
//   LazyLockList   -- Heller et al.'s lazy list: wait-free contains,
//     hand-over-hand-free updates that lock only (pred, cur) and
//     revalidate. Nodes carry an explicit `marked` flag; physical
//     unlinking happens inside the critical section. Unlinked nodes are
//     kept on a retire registry until list destruction because readers
//     traverse without locks.
#pragma once

#include <atomic>
#include <cstddef>
#include <limits>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/baselines/sequential_list.hpp"
#include "src/core/iset.hpp"
#include "src/core/list_base.hpp"

namespace pragmalist::baselines {

class CoarseLockList {
 public:
  class Handle {
   public:
    // The inner SequentialList keeps its own counters; those are
    // simply never read -- each handle's ledger is authoritative.
    bool add(long key) {
      ++ctr_.add_calls;
      std::lock_guard<std::mutex> g(list_->mu_);
      const bool ok = list_->inner_.add(key);
      ctr_.adds += ok;
      return ok;
    }
    bool remove(long key) {
      ++ctr_.rem_calls;
      std::lock_guard<std::mutex> g(list_->mu_);
      const bool ok = list_->inner_.remove(key);
      ctr_.rems += ok;
      return ok;
    }
    bool contains(long key) {
      ++ctr_.con_calls;
      std::lock_guard<std::mutex> g(list_->mu_);
      const bool ok = list_->inner_.contains(key);
      ctr_.cons += ok;
      return ok;
    }
    // Scans hold the one lock for the whole walk -- the coarse
    // baseline's honest price for a trivially atomic range read. The
    // sink must not reenter the set (it would self-deadlock).
    long range_scan(long lo, long hi, const core::KeySink& sink) {
      return core::counted_range_scan(*this, ctr_, lo, hi, sink);
    }
    std::vector<long> ascend(long from, std::size_t limit) {
      return core::counted_ascend(*this, ctr_, from, limit);
    }
    /// Uncounted paging primitive for the sharded k-way merge.
    long scan_raw(long from, long hi, long limit,
                  const core::KeySink& sink) {
      std::lock_guard<std::mutex> g(list_->mu_);
      return list_->inner_.range_scan(from, hi, limit, sink);
    }
    const core::OpCounters& counters() const { return ctr_; }

   private:
    friend class CoarseLockList;
    explicit Handle(CoarseLockList* list) : list_(list) {}
    CoarseLockList* list_;
    core::OpCounters ctr_;
  };

  Handle make_handle() { return Handle(this); }

  bool validate(std::string* err) const { return inner_.validate(err); }
  std::size_t size() const { return inner_.size(); }
  std::vector<long> snapshot() const { return inner_.snapshot(); }

 private:
  mutable std::mutex mu_;
  SequentialList inner_;
};

class LazyLockList {
  struct Node {
    long key;
    std::atomic<Node*> next{nullptr};
    std::atomic<bool> marked{false};
    std::mutex mu;
    Node* reg_next = nullptr;

    explicit Node(long k) : key(k) {}
  };

 public:
  class Handle {
   public:
    bool add(long key) {
      ++ctr_.add_calls;
      const bool ok = list_->do_add(key);
      ctr_.adds += ok;
      return ok;
    }
    bool remove(long key) {
      ++ctr_.rem_calls;
      const bool ok = list_->do_remove(key);
      ctr_.rems += ok;
      return ok;
    }
    bool contains(long key) {
      ++ctr_.con_calls;
      const bool ok = list_->do_contains(key);
      ctr_.cons += ok;
      return ok;
    }
    // Lock-free like the lazy list's contains: readers traverse
    // without locks and skip marked nodes; unlinked nodes stay on the
    // retire registry until teardown, so the walk never dangles.
    long range_scan(long lo, long hi, const core::KeySink& sink) {
      return core::counted_range_scan(*this, ctr_, lo, hi, sink);
    }
    std::vector<long> ascend(long from, std::size_t limit) {
      return core::counted_ascend(*this, ctr_, from, limit);
    }
    /// Uncounted paging primitive for the sharded k-way merge.
    long scan_raw(long from, long hi, long limit,
                  const core::KeySink& sink) {
      return list_->do_scan(from, hi, limit, sink);
    }
    const core::OpCounters& counters() const { return ctr_; }

   private:
    friend class LazyLockList;
    explicit Handle(LazyLockList* list) : list_(list) {}
    LazyLockList* list_;
    core::OpCounters ctr_;
  };

  LazyLockList() {
    tail_ = track(new Node(std::numeric_limits<long>::max()));
    head_ = track(new Node(std::numeric_limits<long>::min()));
    head_->next.store(tail_, std::memory_order_relaxed);
  }
  LazyLockList(const LazyLockList&) = delete;
  LazyLockList& operator=(const LazyLockList&) = delete;
  ~LazyLockList() {
    Node* n = retired_.load(std::memory_order_acquire);
    while (n != nullptr) {
      Node* next = n->reg_next;
      delete n;
      n = next;
    }
  }

  Handle make_handle() { return Handle(this); }

  bool validate(std::string* err) const {
    const Node* prev = head_;
    std::size_t steps = 0;
    for (const Node* n = head_->next.load(); n != tail_;
         n = n->next.load()) {
      if (n == nullptr) {
        if (err) *err = "lazy list chain broke before tail";
        return false;
      }
      if (++steps > 1u << 28) {
        if (err) *err = "lazy list cycle";
        return false;
      }
      if (prev != head_ && n->key <= prev->key) {
        if (err) *err = "lazy list out of order";
        return false;
      }
      prev = n;
    }
    return true;
  }

  std::size_t size() const {
    std::size_t count = 0;
    for (const Node* n = head_->next.load(); n != tail_;
         n = n->next.load())
      if (!n->marked.load(std::memory_order_relaxed)) ++count;
    return count;
  }

  std::vector<long> snapshot() const {
    // The quiescent snapshot is the full-range scan walk.
    std::vector<long> keys;
    do_scan(std::numeric_limits<long>::min(),
            std::numeric_limits<long>::max(), /*limit=*/-1,
            [&](long k) { keys.push_back(k); });
    return keys;
  }

 private:
  Node* track(Node* n) {
    core::push_intrusive(retired_, n);
    return n;
  }

  bool still_linked(Node* pred, Node* cur) const {
    return !pred->marked.load() && !cur->marked.load() &&
           pred->next.load() == cur;
  }

  bool do_add(long key) {
    for (;;) {
      Node* pred = head_;
      Node* cur = pred->next.load();
      while (cur->key < key) {
        pred = cur;
        cur = cur->next.load();
      }
      std::scoped_lock lk(pred->mu, cur->mu);
      if (!still_linked(pred, cur)) continue;
      if (cur != tail_ && cur->key == key) return false;
      Node* n = track(new Node(key));
      n->next.store(cur, std::memory_order_relaxed);
      pred->next.store(n, std::memory_order_release);
      return true;
    }
  }

  bool do_remove(long key) {
    for (;;) {
      Node* pred = head_;
      Node* cur = pred->next.load();
      while (cur->key < key) {
        pred = cur;
        cur = cur->next.load();
      }
      std::scoped_lock lk(pred->mu, cur->mu);
      if (!still_linked(pred, cur)) continue;
      if (cur == tail_ || cur->key != key) return false;
      cur->marked.store(true, std::memory_order_release);  // logical
      pred->next.store(cur->next.load(), std::memory_order_release);
      return true;
    }
  }

  bool do_contains(long key) const {
    const Node* cur = head_->next.load();
    while (cur->key < key) cur = cur->next.load();
    return cur != tail_ && cur->key == key &&
           !cur->marked.load(std::memory_order_acquire);
  }

  /// Lock-free scan walk (also the quiescent snapshot walk): a removed
  /// node's next pointer still leads onward into the list, so keys stay
  /// strictly ascending along any traversal path.
  long do_scan(long from, long hi, long limit,
               const core::KeySink& sink) const {
    long emitted = 0;
    for (const Node* n = head_->next.load(); n != tail_;
         n = n->next.load()) {
      if (n->marked.load(std::memory_order_acquire)) continue;
      if (n->key > hi || (limit >= 0 && emitted >= limit)) break;
      if (n->key >= from) {
        sink(n->key);
        ++emitted;
      }
    }
    return emitted;
  }

  Node* head_;
  Node* tail_;
  std::atomic<Node*> retired_{nullptr};  // doubles as the alloc registry
};

}  // namespace pragmalist::baselines
