// Sequential (single-threaded) ordered lists: the oracles for the
// correctness tests and the lower bound for the thread-private bench
// (what a list costs when you pay for no atomics at all).
//
// SequentialList is the plain sorted singly-linked list;
// SequentialCursorList adds the same last-position cursor the lock-free
// cursor variants use, so cursor *semantics* can be checked against it
// operation by operation.
#pragma once

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/iset.hpp"

namespace pragmalist::baselines {

class SequentialList {
  struct Node {
    long key;
    Node* next;
  };

 public:
  SequentialList() = default;
  SequentialList(SequentialList&& o) noexcept
      : head_(std::exchange(o.head_, nullptr)),
        size_(std::exchange(o.size_, 0)),
        ctr_(std::exchange(o.ctr_, {})) {}
  SequentialList(const SequentialList&) = delete;
  SequentialList& operator=(const SequentialList&) = delete;
  ~SequentialList() { clear(); }

  bool add(long key) {
    ++ctr_.add_calls;
    Node** slot = lower_bound(key);
    if (*slot != nullptr && (*slot)->key == key) return false;
    *slot = new Node{key, *slot};
    ++size_;
    ++ctr_.adds;
    return true;
  }

  bool remove(long key) {
    ++ctr_.rem_calls;
    Node** slot = lower_bound(key);
    Node* n = *slot;
    if (n == nullptr || n->key != key) return false;
    *slot = n->next;
    delete n;
    --size_;
    ++ctr_.rems;
    return true;
  }

  bool contains(long key) {
    ++ctr_.con_calls;
    const Node* n = head_;
    while (n != nullptr && n->key < key) n = n->next;
    const bool hit = n != nullptr && n->key == key;
    ctr_.cons += hit;
    return hit;
  }

  core::OpCounters counters() const { return ctr_; }
  std::size_t size() const { return size_; }

  /// Emit live keys in [from, hi] ascending, at most `limit` (< 0 =
  /// unbounded); returns the number emitted. The scan oracle for the
  /// concurrent structures' range_scan/ascend (and the walk behind
  /// snapshot() and CoarseLockList's scans).
  long range_scan(long from, long hi, long limit,
                  const core::KeySink& sink) const {
    long emitted = 0;
    for (const Node* n = head_; n != nullptr; n = n->next) {
      if (n->key > hi || (limit >= 0 && emitted >= limit)) break;
      if (n->key >= from) {
        sink(n->key);
        ++emitted;
      }
    }
    return emitted;
  }

  std::vector<long> snapshot() const {
    std::vector<long> keys;
    range_scan(std::numeric_limits<long>::min(),
               std::numeric_limits<long>::max(), /*limit=*/-1,
               [&](long k) { keys.push_back(k); });
    return keys;
  }

  bool validate(std::string* err) const {
    const Node* prev = nullptr;
    std::size_t count = 0;
    for (const Node* n = head_; n != nullptr; n = n->next) {
      if (prev != nullptr && n->key <= prev->key) {
        if (err) *err = "sequential list out of order";
        return false;
      }
      prev = n;
      ++count;
    }
    if (count != size_) {
      if (err) *err = "sequential list size mismatch";
      return false;
    }
    return true;
  }

 private:
  Node** lower_bound(long key) {
    Node** slot = &head_;
    while (*slot != nullptr && (*slot)->key < key) slot = &(*slot)->next;
    return slot;
  }

  void clear() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
    head_ = nullptr;
    size_ = 0;
  }

  Node* head_ = nullptr;
  std::size_t size_ = 0;
  core::OpCounters ctr_;
};

/// SequentialList plus the cursor optimisation: searches whose key is
/// at or past the remembered position start there instead of at the
/// head. The externally observable set semantics are identical to
/// SequentialList; only the traversal cost differs — which is exactly
/// what makes it the oracle for the cursor regression test.
class SequentialCursorList {
  struct Node {
    long key;
    Node* next;
  };

 public:
  SequentialCursorList() = default;
  SequentialCursorList(SequentialCursorList&& o) noexcept
      : head_(std::exchange(o.head_, nullptr)),
        cursor_(std::exchange(o.cursor_, nullptr)),
        size_(std::exchange(o.size_, 0)),
        ctr_(std::exchange(o.ctr_, {})) {}
  SequentialCursorList(const SequentialCursorList&) = delete;
  SequentialCursorList& operator=(const SequentialCursorList&) = delete;
  ~SequentialCursorList() { clear(); }

  bool add(long key) {
    ++ctr_.add_calls;
    Node* prev = start_for(key);
    Node* cur = prev == nullptr ? head_ : prev->next;
    while (cur != nullptr && cur->key < key) {
      prev = cur;
      cur = cur->next;
    }
    if (cur != nullptr && cur->key == key) {
      cursor_ = cur;
      return false;
    }
    Node* n = new Node{key, cur};
    if (prev == nullptr)
      head_ = n;
    else
      prev->next = n;
    cursor_ = n;
    ++size_;
    ++ctr_.adds;
    return true;
  }

  bool remove(long key) {
    ++ctr_.rem_calls;
    Node* prev = start_for(key);
    Node* cur = prev == nullptr ? head_ : prev->next;
    while (cur != nullptr && cur->key < key) {
      prev = cur;
      cur = cur->next;
    }
    if (cur == nullptr || cur->key != key) {
      cursor_ = prev;
      return false;
    }
    if (prev == nullptr)
      head_ = cur->next;
    else
      prev->next = cur->next;
    cursor_ = prev;
    delete cur;
    --size_;
    ++ctr_.rems;
    return true;
  }

  bool contains(long key) {
    ++ctr_.con_calls;
    Node* prev = start_for(key);
    Node* cur = prev == nullptr ? head_ : prev->next;
    while (cur != nullptr && cur->key < key) {
      prev = cur;
      cur = cur->next;
    }
    cursor_ = prev;
    const bool hit = cur != nullptr && cur->key == key;
    ctr_.cons += hit;
    return hit;
  }

  core::OpCounters counters() const { return ctr_; }
  std::size_t size() const { return size_; }

  std::vector<long> snapshot() const {
    std::vector<long> keys;
    for (const Node* n = head_; n != nullptr; n = n->next)
      keys.push_back(n->key);
    return keys;
  }

  bool validate(std::string* err) const {
    const Node* prev = nullptr;
    std::size_t count = 0;
    for (const Node* n = head_; n != nullptr; n = n->next) {
      if (prev != nullptr && n->key <= prev->key) {
        if (err) *err = "sequential cursor list out of order";
        return false;
      }
      prev = n;
      ++count;
    }
    if (count != size_) {
      if (err) *err = "sequential cursor list size mismatch";
      return false;
    }
    return true;
  }

 private:
  /// Last node strictly before `key` usable as a start, or nullptr for
  /// "start at head". The cursor is only trusted when its key is
  /// smaller than the target; removal keeps it on the predecessor, so
  /// it never dangles.
  Node* start_for(long key) const {
    if (cursor_ != nullptr && cursor_->key < key) return cursor_;
    return nullptr;
  }

  void clear() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
    head_ = nullptr;
    cursor_ = nullptr;
    size_ = 0;
  }

  Node* head_ = nullptr;
  Node* cursor_ = nullptr;
  std::size_t size_ = 0;
  core::OpCounters ctr_;
};

}  // namespace pragmalist::baselines
