#include "src/harness/catalog.hpp"

#include <functional>
#include <string>
#include <type_traits>
#include <utility>

#include "src/alloc/slab.hpp"
#include "src/baselines/ebr_michael.hpp"
#include "src/baselines/hp_michael.hpp"
#include "src/baselines/locked_lists.hpp"
#include "src/common/debug.hpp"
#include "src/core/unrolled_family.hpp"
#include "src/core/variants.hpp"
#include "src/shard/sharded_set.hpp"
#include "src/structures/skiplist.hpp"

namespace pragmalist::harness {
namespace {

template <typename T, typename = void>
struct HasAllocatedNodes : std::false_type {};
template <typename T>
struct HasAllocatedNodes<
    T, std::void_t<decltype(std::declval<const T&>().allocated_nodes())>>
    : std::true_type {};

template <typename T, typename = void>
struct HasLimboNodes : std::false_type {};
template <typename T>
struct HasLimboNodes<
    T, std::void_t<decltype(std::declval<const T&>().limbo_nodes())>>
    : std::true_type {};

template <typename T, typename = void>
struct HasShardCount : std::false_type {};
template <typename T>
struct HasShardCount<
    T, std::void_t<decltype(std::declval<const T&>().shard_count())>>
    : std::true_type {};

// Fault-injection surface: the engines and the sharded set have it;
// baselines/skiplist do not (ISetHandle::abandon's default no-op makes
// them fault-oblivious -- a "crash" is just a clean departure there).
template <typename T, typename = void>
struct HasAbandon : std::false_type {};
template <typename T>
struct HasAbandon<T, std::void_t<decltype(std::declval<T&>().abandon(
                         faults::FaultKind::kMidOpAbandon, 0L))>>
    : std::true_type {};

template <typename T, typename = void>
struct HasReapCrashed : std::false_type {};
template <typename T>
struct HasReapCrashed<
    T, std::void_t<decltype(std::declval<T&>().reap_crashed())>>
    : std::true_type {};

template <typename T, typename = void>
struct HasBlastStats : std::false_type {};
template <typename T>
struct HasBlastStats<
    T, std::void_t<decltype(std::declval<const T&>().blast_stats())>>
    : std::true_type {};

/// Adapts any concrete structure with the
/// make_handle()/validate()/size()/snapshot() shape to core::ISet.
/// Owns its id as a string: sharded ids (`.../shN`) are composed at
/// parse time and have no static storage to point into.
template <typename Structure>
class SetAdapter final : public core::ISet {
  class HandleAdapter final : public core::ISetHandle {
   public:
    explicit HandleAdapter(typename Structure::Handle h)
        : h_(std::move(h)) {}
    bool add(long key) override { return h_.add(key); }
    bool remove(long key) override { return h_.remove(key); }
    bool contains(long key) override { return h_.contains(key); }
    long range_scan(long lo, long hi, const core::KeySink& sink) override {
      return h_.range_scan(lo, hi, sink);
    }
    std::vector<long> ascend(long from, std::size_t limit) override {
      return h_.ascend(from, limit);
    }
    core::OpCounters counters() const override { return h_.counters(); }
    void abandon(faults::FaultKind k, long key) override {
      if constexpr (HasAbandon<typename Structure::Handle>::value)
        h_.abandon(k, key);
    }

   private:
    typename Structure::Handle h_;
  };

 public:
  template <typename... Args>
  explicit SetAdapter(std::string id, Args&&... args)
      : id_(std::move(id)), inner_(std::forward<Args>(args)...) {}

  std::unique_ptr<core::ISetHandle> make_handle() override {
    return std::make_unique<HandleAdapter>(inner_.make_handle());
  }
  bool validate(std::string* err) const override {
    return inner_.validate(err);
  }
  std::size_t size() const override { return inner_.size(); }
  std::vector<long> snapshot() const override { return inner_.snapshot(); }
  std::size_t allocated_nodes() const override {
    if constexpr (HasAllocatedNodes<Structure>::value)
      return inner_.allocated_nodes();
    else
      return 0;
  }
  std::size_t limbo_nodes() const override {
    if constexpr (HasLimboNodes<Structure>::value)
      return inner_.limbo_nodes();
    else
      return 0;
  }
  int shard_count() const override {
    if constexpr (HasShardCount<Structure>::value)
      return inner_.shard_count();
    else
      return 1;
  }
  std::vector<long> shard_ops() const override {
    if constexpr (HasShardCount<Structure>::value)
      return inner_.shard_ops();
    else
      return {};
  }
  std::vector<std::size_t> shard_sizes() const override {
    if constexpr (HasShardCount<Structure>::value)
      return inner_.shard_sizes();
    else
      return {};
  }
  std::size_t reap_crashed() override {
    if constexpr (HasReapCrashed<Structure>::value)
      return inner_.reap_crashed();
    else
      return 0;
  }
  faults::BlastStats blast_stats() const override {
    if constexpr (HasBlastStats<Structure>::value)
      return inner_.blast_stats();
    else
      return {};
  }
  std::string_view name() const override { return id_; }

 private:
  std::string id_;
  Structure inner_;
};

struct Entry {
  std::string_view id;
  std::string_view letter;
  std::unique_ptr<core::ISet> (*make)(std::string id, alloc::Mode mode,
                                      bool hints);
};

// Pool-allocating structures (the engines: Engine::kPoolAllocates,
// surfaced as an alloc::Mode constructor) honor the catalog's node-
// memory mode; everything else -- baselines, skiplist -- news its own
// nodes, so the mode is silently irrelevant for them. The hint-index
// switch (`/nohint`) is engine-only too, but NOT silently: a baseline
// has no hint index to disable, so asking for its `/nohint` twin would
// silently benchmark the baseline against itself -- reject instead.
template <typename Structure>
std::unique_ptr<core::ISet> make_adapter(std::string id, alloc::Mode mode,
                                         bool hints) {
  if constexpr (std::is_constructible_v<Structure, alloc::Mode, bool>) {
    return std::make_unique<SetAdapter<Structure>>(std::move(id), mode, hints);
  } else {
    PRAGMALIST_CHECK(
        hints, "'/nohint' needs an engine id: this structure has no hint "
               "index to disable");
    if constexpr (std::is_constructible_v<Structure, alloc::Mode>)
      return std::make_unique<SetAdapter<Structure>>(std::move(id), mode);
    else
      return std::make_unique<SetAdapter<Structure>>(std::move(id));
  }
}

constexpr Entry kEntries[] = {
    {"draconic", "a", &make_adapter<core::DraconicList>},
    {"singly", "b", &make_adapter<core::SinglyList>},
    {"doubly", "c", &make_adapter<core::DoublyList>},
    {"singly_cursor", "d", &make_adapter<core::SinglyCursorList>},
    {"singly_fetch_or", "e", &make_adapter<core::SinglyFetchOrList>},
    {"doubly_cursor", "f", &make_adapter<core::DoublyCursorList>},
    {"doubly_cursor_noprec", "-",
     &make_adapter<core::DoublyCursorNoPrecList>},
    {"singly_cursor_backoff", "-",
     &make_adapter<core::SinglyCursorBackoffList>},
    // The variant x reclaimer grid: the paper rows under real mid-run
    // reclamation (the bare ids above are the paper's arena scheme).
    {"draconic/ebr", "-", &make_adapter<core::DraconicListEbr>},
    {"singly/ebr", "-", &make_adapter<core::SinglyListEbr>},
    {"doubly/ebr", "-", &make_adapter<core::DoublyListEbr>},
    {"singly_cursor/ebr", "-", &make_adapter<core::SinglyCursorListEbr>},
    {"singly_fetch_or/ebr", "-", &make_adapter<core::SinglyFetchOrListEbr>},
    {"doubly_cursor/ebr", "-", &make_adapter<core::DoublyCursorListEbr>},
    {"draconic/hp", "-", &make_adapter<core::DraconicListHp>},
    {"singly/hp", "-", &make_adapter<core::SinglyListHp>},
    {"doubly/hp", "-", &make_adapter<core::DoublyListHp>},
    {"singly_cursor/hp", "-", &make_adapter<core::SinglyCursorListHp>},
    {"singly_fetch_or/hp", "-", &make_adapter<core::SinglyFetchOrListHp>},
    {"doubly_cursor/hp", "-", &make_adapter<core::DoublyCursorListHp>},
    // Unrolled fat-node family: K=8 sorted keys per cache-line-sized
    // node (src/core/unrolled_family.hpp). Also reachable as
    // `unrolled-k8/...` (dashes normalize to underscores in make_set).
    {"unrolled_k8", "-", &make_adapter<core::UnrolledK8List>},
    {"unrolled_k8/ebr", "-", &make_adapter<core::UnrolledK8ListEbr>},
    {"unrolled_k8/hp", "-", &make_adapter<core::UnrolledK8ListHp>},
    {"coarse_lock", "g", &make_adapter<baselines::CoarseLockList>},
    {"lazy_lock", "h", &make_adapter<baselines::LazyLockList>},
    {"hp_michael", "i", &make_adapter<baselines::HpMichaelList>},
    {"ebr_michael", "j", &make_adapter<baselines::EbrMichaelList>},
    {"skiplist", "k", &make_adapter<structures::SkipList>},
    {"skiplist_draconic", "l", &make_adapter<structures::SkipListDraconic>},
};

// --- sharding: `<base>/shN` ids --------------------------------------
//
// Any of the bases below accepts a `/shN` suffix and is then built as
// shard::ShardedSet<Engine> -- N hash-partitioned lists over one
// shared reclamation domain. Parsed dynamically so every N works; the
// fixed `sharded_variant_ids()` list below is what the test tiers and
// docs enumerate.

struct ShardedEntry {
  std::string_view base;
  std::unique_ptr<core::ISet> (*make)(std::string id, int shards,
                                      alloc::Mode mode, bool hints);
};

template <typename Engine>
std::unique_ptr<core::ISet> make_sharded_adapter(std::string id, int shards,
                                                 alloc::Mode mode,
                                                 bool hints) {
  // ShardedSet clamps the mode to heap itself when the engine is not
  // pool-allocating, so passing it unconditionally is safe. The hint
  // switch is NOT clamped: a base with no hint index (the Michael
  // baselines) rejects `/nohint` rather than aliasing the hinted id.
  if constexpr (!std::is_constructible_v<
                    Engine, std::shared_ptr<typename Engine::Reclaim>, bool>)
    PRAGMALIST_CHECK(
        hints, "'/nohint' needs an engine base: this structure has no hint "
               "index to disable");
  return std::make_unique<SetAdapter<shard::ShardedSet<Engine>>>(
      std::move(id), shards, mode, hints);
}

constexpr ShardedEntry kShardedEntries[] = {
    {"draconic", &make_sharded_adapter<core::DraconicList>},
    {"singly", &make_sharded_adapter<core::SinglyList>},
    {"doubly", &make_sharded_adapter<core::DoublyList>},
    {"singly_cursor", &make_sharded_adapter<core::SinglyCursorList>},
    {"singly_fetch_or", &make_sharded_adapter<core::SinglyFetchOrList>},
    {"doubly_cursor", &make_sharded_adapter<core::DoublyCursorList>},
    {"draconic/ebr", &make_sharded_adapter<core::DraconicListEbr>},
    {"singly/ebr", &make_sharded_adapter<core::SinglyListEbr>},
    {"doubly/ebr", &make_sharded_adapter<core::DoublyListEbr>},
    {"singly_cursor/ebr", &make_sharded_adapter<core::SinglyCursorListEbr>},
    {"singly_fetch_or/ebr",
     &make_sharded_adapter<core::SinglyFetchOrListEbr>},
    {"doubly_cursor/ebr", &make_sharded_adapter<core::DoublyCursorListEbr>},
    {"draconic/hp", &make_sharded_adapter<core::DraconicListHp>},
    {"singly/hp", &make_sharded_adapter<core::SinglyListHp>},
    {"doubly/hp", &make_sharded_adapter<core::DoublyListHp>},
    {"singly_cursor/hp", &make_sharded_adapter<core::SinglyCursorListHp>},
    {"singly_fetch_or/hp", &make_sharded_adapter<core::SinglyFetchOrListHp>},
    {"doubly_cursor/hp", &make_sharded_adapter<core::DoublyCursorListHp>},
    {"unrolled_k8", &make_sharded_adapter<core::UnrolledK8List>},
    {"unrolled_k8/ebr", &make_sharded_adapter<core::UnrolledK8ListEbr>},
    {"unrolled_k8/hp", &make_sharded_adapter<core::UnrolledK8ListHp>},
    {"hp_michael", &make_sharded_adapter<baselines::HpMichaelList>},
    {"ebr_michael", &make_sharded_adapter<baselines::EbrMichaelList>},
};

/// Split `<base>/shN` into base and shard count. Returns false when the
/// id has no well-formed `/sh<digits>` suffix.
bool split_sharded_id(std::string_view id, std::string_view* base,
                      int* shards) {
  const auto pos = id.rfind("/sh");
  if (pos == std::string_view::npos) return false;
  const std::string_view digits = id.substr(pos + 3);
  if (digits.empty() || digits.size() > 4) return false;
  int n = 0;
  for (const char ch : digits) {
    if (ch < '0' || ch > '9') return false;
    n = n * 10 + (ch - '0');
  }
  *base = id.substr(0, pos);
  *shards = n;
  return true;
}

std::unique_ptr<core::ISet> make_sharded_set(std::string_view id,
                                             std::string_view base,
                                             int shards, alloc::Mode mode,
                                             bool hints) {
  PRAGMALIST_CHECK(shards >= 1 && shards <= 1024,
                   "shard count must be in [1, 1024]");
  for (const auto& entry : kShardedEntries)
    if (entry.base == base)
      return entry.make(std::string(id), shards, mode, hints);
  std::string msg = "id '" + std::string(id) + "' has a /shN suffix but '" +
                    std::string(base) + "' is not shardable; bases:";
  for (const auto& entry : kShardedEntries) {
    msg += ' ';
    msg += entry.base;
  }
  PRAGMALIST_CHECK(false, msg.c_str());
  __builtin_unreachable();
}

}  // namespace

std::unique_ptr<core::ISet> make_set(std::string_view id) {
  // Dashes are id-alias sugar (`unrolled-k8` == `unrolled_k8`): the
  // docs spell the family with a dash, the catalog key with an
  // underscore.
  std::string norm(id);
  for (char& ch : norm) {
    if (ch == '-') ch = '_';
  }
  // Hint-index switch: a final `/nohint` segment builds the same cell
  // with the shortcut-hint index disabled (readers always start from
  // head/cursor) -- the ablation twin the read-path benches and the CI
  // contains-heavy gate compare against. Outermost suffix, stripped
  // before `/heap`: `singly/ebr/heap/nohint`. Engine ids only; the
  // adapters reject it for structures without a hint index.
  bool hints = true;
  std::string_view lookup = norm;
  constexpr std::string_view kNoHintSuffix = "/nohint";
  if (lookup.size() > kNoHintSuffix.size() &&
      lookup.substr(lookup.size() - kNoHintSuffix.size()) == kNoHintSuffix) {
    hints = false;
    lookup.remove_suffix(kNoHintSuffix.size());
  }
  // Node-memory mode: catalog ids allocate from per-domain slabs by
  // default; a final `/heap` segment requests the plain-malloc twin
  // (`singly/ebr/heap`, `unrolled_k8/hp/sh4/heap`). Engines only --
  // structures that new their own nodes ignore the mode either way.
  alloc::Mode mode = alloc::Mode::kSlab;
  constexpr std::string_view kHeapSuffix = "/heap";
  if (lookup.size() > kHeapSuffix.size() &&
      lookup.substr(lookup.size() - kHeapSuffix.size()) == kHeapSuffix) {
    mode = alloc::Mode::kHeap;
    lookup.remove_suffix(kHeapSuffix.size());
  }
  {
    std::string_view base;
    int shards = 0;
    if (split_sharded_id(lookup, &base, &shards))
      return make_sharded_set(id, base, shards, mode, hints);
  }
  for (const auto& entry : kEntries)
    if (entry.id == lookup) return entry.make(std::string(id), mode, hints);
  std::string msg = "unknown variant '" + std::string(id) + "'; known:";
  for (const auto& entry : kEntries) {
    msg += ' ';
    msg += entry.id;
  }
  msg +=
      " (plus any shardable id with a /shN suffix, e.g. singly/ebr/sh8, a"
      " trailing /heap for the malloc twin of any engine id, and a trailing"
      " /nohint for an engine's hint-index-disabled twin)";
  PRAGMALIST_CHECK(false, msg.c_str());
  __builtin_unreachable();
}

const std::vector<std::string_view>& paper_variant_ids() {
  static const std::vector<std::string_view> ids = {
      "draconic",      "singly",          "doubly",
      "singly_cursor", "singly_fetch_or", "doubly_cursor",
  };
  return ids;
}

const std::vector<std::string_view>& figure_variant_ids() {
  static const std::vector<std::string_view> ids = {
      "draconic", "singly", "doubly", "singly_cursor", "doubly_cursor",
  };
  return ids;
}

const std::vector<std::string_view>& reclaim_variant_ids() {
  static const std::vector<std::string_view> ids = [] {
    std::vector<std::string_view> v;
    for (const auto& entry : kEntries) {
      const auto id = entry.id;
      if (id.find('/') != std::string_view::npos) v.push_back(id);
    }
    return v;
  }();
  return ids;
}

const std::vector<std::string_view>& sharded_variant_ids() {
  // Backing strings first, views second: both static, so the views
  // stay valid for the program's lifetime.
  static const std::vector<std::string>* storage = [] {
    auto* v = new std::vector<std::string>;
    for (const auto id : reclaim_variant_ids())
      v->push_back(std::string(id) + "/sh4");
    return v;
  }();
  static const std::vector<std::string_view> views = [] {
    std::vector<std::string_view> v;
    for (const auto& s : *storage) v.push_back(s);
    return v;
  }();
  return views;
}

const std::vector<std::string_view>& all_variant_ids() {
  static const std::vector<std::string_view> ids = [] {
    std::vector<std::string_view> v;
    for (const auto& entry : kEntries) v.push_back(entry.id);
    return v;
  }();
  return ids;
}

std::string_view variant_letter(std::string_view id) {
  for (const auto& entry : kEntries)
    if (entry.id == id) return entry.letter;
  return "-";
}

}  // namespace pragmalist::harness
