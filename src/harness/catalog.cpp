#include "src/harness/catalog.hpp"

#include <functional>
#include <string>
#include <type_traits>
#include <utility>

#include "src/baselines/ebr_michael.hpp"
#include "src/baselines/hp_michael.hpp"
#include "src/baselines/locked_lists.hpp"
#include "src/common/debug.hpp"
#include "src/core/variants.hpp"
#include "src/structures/skiplist.hpp"

namespace pragmalist::harness {
namespace {

template <typename T, typename = void>
struct HasAllocatedNodes : std::false_type {};
template <typename T>
struct HasAllocatedNodes<
    T, std::void_t<decltype(std::declval<const T&>().allocated_nodes())>>
    : std::true_type {};

template <typename T, typename = void>
struct HasLimboNodes : std::false_type {};
template <typename T>
struct HasLimboNodes<
    T, std::void_t<decltype(std::declval<const T&>().limbo_nodes())>>
    : std::true_type {};

/// Adapts any concrete structure with the
/// make_handle()/validate()/size()/snapshot() shape to core::ISet.
template <typename Structure>
class SetAdapter final : public core::ISet {
  class HandleAdapter final : public core::ISetHandle {
   public:
    explicit HandleAdapter(typename Structure::Handle h)
        : h_(std::move(h)) {}
    bool add(long key) override { return h_.add(key); }
    bool remove(long key) override { return h_.remove(key); }
    bool contains(long key) override { return h_.contains(key); }
    core::OpCounters counters() const override { return h_.counters(); }

   private:
    typename Structure::Handle h_;
  };

 public:
  explicit SetAdapter(std::string_view id) : id_(id) {}

  std::unique_ptr<core::ISetHandle> make_handle() override {
    return std::make_unique<HandleAdapter>(inner_.make_handle());
  }
  bool validate(std::string* err) const override {
    return inner_.validate(err);
  }
  std::size_t size() const override { return inner_.size(); }
  std::vector<long> snapshot() const override { return inner_.snapshot(); }
  std::size_t allocated_nodes() const override {
    if constexpr (HasAllocatedNodes<Structure>::value)
      return inner_.allocated_nodes();
    else
      return 0;
  }
  std::size_t limbo_nodes() const override {
    if constexpr (HasLimboNodes<Structure>::value)
      return inner_.limbo_nodes();
    else
      return 0;
  }
  std::string_view name() const override { return id_; }

 private:
  std::string_view id_;
  Structure inner_;
};

struct Entry {
  std::string_view id;
  std::string_view letter;
  std::unique_ptr<core::ISet> (*make)(std::string_view);
};

template <typename Structure>
std::unique_ptr<core::ISet> make_adapter(std::string_view id) {
  return std::make_unique<SetAdapter<Structure>>(id);
}

constexpr Entry kEntries[] = {
    {"draconic", "a", &make_adapter<core::DraconicList>},
    {"singly", "b", &make_adapter<core::SinglyList>},
    {"doubly", "c", &make_adapter<core::DoublyList>},
    {"singly_cursor", "d", &make_adapter<core::SinglyCursorList>},
    {"singly_fetch_or", "e", &make_adapter<core::SinglyFetchOrList>},
    {"doubly_cursor", "f", &make_adapter<core::DoublyCursorList>},
    {"doubly_cursor_noprec", "-",
     &make_adapter<core::DoublyCursorNoPrecList>},
    {"singly_cursor_backoff", "-",
     &make_adapter<core::SinglyCursorBackoffList>},
    // The variant x reclaimer grid: the paper rows under real mid-run
    // reclamation (the bare ids above are the paper's arena scheme).
    {"draconic/ebr", "-", &make_adapter<core::DraconicListEbr>},
    {"singly/ebr", "-", &make_adapter<core::SinglyListEbr>},
    {"doubly/ebr", "-", &make_adapter<core::DoublyListEbr>},
    {"singly_cursor/ebr", "-", &make_adapter<core::SinglyCursorListEbr>},
    {"singly_fetch_or/ebr", "-", &make_adapter<core::SinglyFetchOrListEbr>},
    {"doubly_cursor/ebr", "-", &make_adapter<core::DoublyCursorListEbr>},
    {"draconic/hp", "-", &make_adapter<core::DraconicListHp>},
    {"singly/hp", "-", &make_adapter<core::SinglyListHp>},
    {"doubly/hp", "-", &make_adapter<core::DoublyListHp>},
    {"singly_cursor/hp", "-", &make_adapter<core::SinglyCursorListHp>},
    {"singly_fetch_or/hp", "-", &make_adapter<core::SinglyFetchOrListHp>},
    {"doubly_cursor/hp", "-", &make_adapter<core::DoublyCursorListHp>},
    {"coarse_lock", "g", &make_adapter<baselines::CoarseLockList>},
    {"lazy_lock", "h", &make_adapter<baselines::LazyLockList>},
    {"hp_michael", "i", &make_adapter<baselines::HpMichaelList>},
    {"ebr_michael", "j", &make_adapter<baselines::EbrMichaelList>},
    {"skiplist", "k", &make_adapter<structures::SkipList>},
    {"skiplist_draconic", "l", &make_adapter<structures::SkipListDraconic>},
};

}  // namespace

std::unique_ptr<core::ISet> make_set(std::string_view id) {
  for (const auto& entry : kEntries)
    if (entry.id == id) return entry.make(entry.id);
  std::string msg = "unknown variant '" + std::string(id) + "'; known:";
  for (const auto& entry : kEntries) {
    msg += ' ';
    msg += entry.id;
  }
  PRAGMALIST_CHECK(false, msg.c_str());
  __builtin_unreachable();
}

const std::vector<std::string_view>& paper_variant_ids() {
  static const std::vector<std::string_view> ids = {
      "draconic",      "singly",          "doubly",
      "singly_cursor", "singly_fetch_or", "doubly_cursor",
  };
  return ids;
}

const std::vector<std::string_view>& figure_variant_ids() {
  static const std::vector<std::string_view> ids = {
      "draconic", "singly", "doubly", "singly_cursor", "doubly_cursor",
  };
  return ids;
}

const std::vector<std::string_view>& reclaim_variant_ids() {
  static const std::vector<std::string_view> ids = [] {
    std::vector<std::string_view> v;
    for (const auto& entry : kEntries) {
      const auto id = entry.id;
      if (id.find('/') != std::string_view::npos) v.push_back(id);
    }
    return v;
  }();
  return ids;
}

const std::vector<std::string_view>& all_variant_ids() {
  static const std::vector<std::string_view> ids = [] {
    std::vector<std::string_view> v;
    for (const auto& entry : kEntries) v.push_back(entry.id);
    return v;
  }();
  return ids;
}

std::string_view variant_letter(std::string_view id) {
  for (const auto& entry : kEntries)
    if (entry.id == id) return entry.letter;
  return "-";
}

}  // namespace pragmalist::harness
