// Per-operation latency histograms -- the tail-latency yardstick the
// throughput tables cannot provide. Träff & Pöter's pragmatic cursor
// reuse trades occasional long revalidation walks for cheap common-case
// ops; that trade is invisible in a mean and lives entirely in
// p99/p999, so every measurement driver can now record per-op-class
// (add/remove/contains/scan) latencies into a LatHistogram.
//
// Design, HdrHistogram-style:
//   * log-bucketed nanosecond bins -- exact below 64 ns, then 32 linear
//     sub-buckets per power-of-two octave, so the relative quantization
//     error is bounded by 1/32 (~3.1%) at every scale from ns to
//     minutes, with a fixed 1920-bucket footprint (~15 KB);
//   * single-writer wait-free recording -- each worker owns its
//     instance and record() is two relaxed fetch_adds plus a relaxed
//     CAS-max, no locks anywhere;
//   * concurrent readers -- counts are relaxed atomics, so the soak
//     sampler may merge a worker's histogram mid-run and sees a
//     slightly stale but never torn view;
//   * mergeable -- operator+= folds per-thread instances into one;
//     operator-= subtracts an earlier cumulative snapshot, which is how
//     the soak harness turns cumulative histograms into per-tick
//     interval views.
//
// Gating: recording is runtime-optional (drivers take a nullable
// profile; a null pointer costs one predicted branch per op and zero
// clock reads) and compile-out-able (-DPRAGMALIST_LATENCY=OFF defines
// PRAGMALIST_NO_LATENCY, turning record() and lat_now_ns() into
// constant no-ops), so throughput benches stay honest.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <thread>

namespace pragmalist::harness {

/// False when the whole recording layer is compiled out
/// (-DPRAGMALIST_LATENCY=OFF); tests that need real recording skip.
#ifdef PRAGMALIST_NO_LATENCY
inline constexpr bool kLatencyCompiled = false;
#else
inline constexpr bool kLatencyCompiled = true;
#endif

/// Nanosecond reading of the steady clock (0 when compiled out). All
/// latency recording uses this clock and no other: it is monotonic,
/// unaffected by NTP, and the same clock run_team/run_soak measure
/// their windows with, so op latencies and window durations are
/// directly comparable.
inline std::uint64_t lat_now_ns() {
  if constexpr (!kLatencyCompiled) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class LatHistogram {
 public:
  // Values < kLinear get an exact bucket each; above, each power-of-two
  // octave splits into kSub linear sub-buckets (quantization error <=
  // 1/kSub). 58 octaves cover the full uint64 ns range.
  static constexpr int kLinear = 64;
  static constexpr int kSubBits = 5;
  static constexpr int kSub = 1 << kSubBits;  // 32
  static constexpr int kOctaves = 58;
  static constexpr int kBuckets = kLinear + kOctaves * kSub;

  LatHistogram() { clear(); }

  LatHistogram(const LatHistogram& o) { copy_from(o); }
  LatHistogram& operator=(const LatHistogram& o) {
    if (this != &o) copy_from(o);
    return *this;
  }

  /// Bucket of a nanosecond value. Exposed (with bucket_min/bucket_max)
  /// so the boundary tests can pin the scheme.
  static int bucket_index(std::uint64_t ns) {
    if (ns < static_cast<std::uint64_t>(kLinear))
      return static_cast<int>(ns);
    const int msb = 63 - __builtin_clzll(ns);
    const int g = msb - kSubBits;  // >= 1 because ns >= kLinear = 2^6
    return kLinear + (g - 1) * kSub +
           static_cast<int>((ns >> g) - static_cast<std::uint64_t>(kSub));
  }

  /// Smallest value mapping to bucket i.
  static std::uint64_t bucket_min(int i) {
    if (i < kLinear) return static_cast<std::uint64_t>(i);
    const int g = (i - kLinear) / kSub + 1;
    const auto sub = static_cast<std::uint64_t>((i - kLinear) % kSub);
    return (static_cast<std::uint64_t>(kSub) + sub) << g;
  }

  /// Largest value mapping to bucket i (inclusive). Percentiles report
  /// this bound, so they overestimate by at most one bucket width.
  static std::uint64_t bucket_max(int i) {
    if (i < kLinear) return static_cast<std::uint64_t>(i);
    const int g = (i - kLinear) / kSub + 1;
    return bucket_min(i) + ((1ull << g) - 1);
  }

  /// Record one latency. Wait-free; single writer per instance, any
  /// number of concurrent readers.
  void record(std::uint64_t ns) {
    if constexpr (!kLatencyCompiled) {
      (void)ns;
      return;
    }
    counts_[static_cast<std::size_t>(bucket_index(ns))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t m = max_.load(std::memory_order_relaxed);
    while (ns > m &&
           !max_.compare_exchange_weak(m, ns, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Largest recorded value (exact for cumulative histograms; after
  /// operator-= it is clamped to the interval's highest non-empty
  /// bucket bound, i.e. bucket resolution).
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  std::uint64_t bucket_count(int i) const {
    return counts_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }

  /// Value at quantile q in [0, 1]: the inclusive upper bound of the
  /// bucket holding the ceil(q*count)-th smallest sample, clamped to
  /// max() so percentile(q) <= max() always holds. 0 when empty.
  std::uint64_t percentile(double q) const {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    if (q >= 1.0) return max();
    if (q < 0.0) q = 0.0;
    auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(n)));
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    std::uint64_t cum = 0;
    for (int i = 0; i < kBuckets; ++i) {
      cum += bucket_count(i);
      if (cum >= rank) return std::min(bucket_max(i), max());
    }
    // A concurrent reader can see count_ ahead of the bucket counts;
    // the highest bound we know is the running max.
    return max();
  }

  /// Fold another histogram in (cross-thread merge). Safe against a
  /// concurrent writer on `o` (relaxed snapshot), single-threaded on
  /// *this.
  LatHistogram& operator+=(const LatHistogram& o) {
    for (int i = 0; i < kBuckets; ++i) {
      const std::uint64_t theirs = o.bucket_count(i);
      if (theirs)
        counts_[static_cast<std::size_t>(i)].store(
            bucket_count(i) + theirs, std::memory_order_relaxed);
    }
    count_.store(count() + o.count(), std::memory_order_relaxed);
    if (o.max() > max()) max_.store(o.max(), std::memory_order_relaxed);
    return *this;
  }

  /// Subtract an earlier cumulative snapshot of the same stream(s),
  /// leaving the interval histogram. Counts saturate at 0; max() is
  /// re-derived as the interval's highest non-empty bucket bound
  /// (clamped by the cumulative max), since the true interval max is
  /// not recoverable from two cumulative views.
  LatHistogram& operator-=(const LatHistogram& o) {
    std::uint64_t total = 0;
    int highest = -1;
    for (int i = 0; i < kBuckets; ++i) {
      const std::uint64_t mine = bucket_count(i);
      const std::uint64_t theirs = o.bucket_count(i);
      const std::uint64_t left = mine > theirs ? mine - theirs : 0;
      counts_[static_cast<std::size_t>(i)].store(left,
                                                 std::memory_order_relaxed);
      total += left;
      if (left) highest = i;
    }
    count_.store(total, std::memory_order_relaxed);
    max_.store(highest < 0 ? 0 : std::min(bucket_max(highest), max()),
               std::memory_order_relaxed);
    return *this;
  }

  void clear() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void copy_from(const LatHistogram& o) {
    for (int i = 0; i < kBuckets; ++i)
      counts_[static_cast<std::size_t>(i)].store(o.bucket_count(i),
                                                 std::memory_order_relaxed);
    count_.store(o.count(), std::memory_order_relaxed);
    max_.store(o.max(), std::memory_order_relaxed);
  }

  std::array<std::atomic<std::uint64_t>, kBuckets> counts_;
  std::atomic<std::uint64_t> count_;
  std::atomic<std::uint64_t> max_;
};

/// The four op classes every driver distinguishes. Indices are stable
/// (CSV columns and the per-class array depend on them).
enum class OpClass : int { kAdd = 0, kRemove = 1, kContains = 2, kScan = 3 };
inline constexpr int kNumOpClasses = 4;

inline const char* op_class_name(OpClass c) {
  switch (c) {
    case OpClass::kAdd: return "add";
    case OpClass::kRemove: return "remove";
    case OpClass::kContains: return "contains";
    case OpClass::kScan: return "scan";
  }
  return "?";
}

/// One histogram per op class; the unit every driver records into and
/// every bench renders from.
struct LatencyProfile {
  std::array<LatHistogram, kNumOpClasses> per_class;

  LatHistogram& of(OpClass c) { return per_class[static_cast<std::size_t>(c)]; }
  const LatHistogram& of(OpClass c) const {
    return per_class[static_cast<std::size_t>(c)];
  }

  LatencyProfile& operator+=(const LatencyProfile& o) {
    for (int c = 0; c < kNumOpClasses; ++c)
      per_class[static_cast<std::size_t>(c)] +=
          o.per_class[static_cast<std::size_t>(c)];
    return *this;
  }

  LatencyProfile& operator-=(const LatencyProfile& o) {
    for (int c = 0; c < kNumOpClasses; ++c)
      per_class[static_cast<std::size_t>(c)] -=
          o.per_class[static_cast<std::size_t>(c)];
    return *this;
  }

  std::uint64_t total_count() const {
    std::uint64_t n = 0;
    for (const auto& h : per_class) n += h.count();
    return n;
  }

  /// All classes folded into one histogram (the "any op" tail view the
  /// soak tick columns report).
  LatHistogram merged() const {
    LatHistogram m;
    for (const auto& h : per_class) m += h;
    return m;
  }
};

/// Fixed-rate pacing core, the coordinated-omission-aware loop under
/// bench_latency's --rate mode. Op i's *intended* start is
/// t0 + i*period: the loop sleeps until the intended start when ahead
/// but never shifts the schedule when behind, and hands `op` the
/// intended start so the caller records completion - intended. A stall
/// inside op k therefore charges its full duration to op k *and* the
/// queueing delay to every op whose intended start passed while k ran
/// -- exactly the samples a free-running (observed-start) loop omits.
/// Returns the number of ops that began a full period or more after
/// their intended start (the visible backlog).
template <typename Op>
long run_paced(long n, std::uint64_t period_ns, Op&& op) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  const auto period = std::chrono::nanoseconds(period_ns);
  long behind = 0;
  for (long i = 0; i < n; ++i) {
    const auto intended =
        t0 + std::chrono::nanoseconds(
                 period_ns * static_cast<std::uint64_t>(i));
    const auto now = Clock::now();
    if (now < intended)
      std::this_thread::sleep_until(intended);
    else if (now - intended >= period)
      ++behind;
    op(i, intended);
  }
  return behind;
}

/// completion - intended in ns, the CO-aware latency sample (0 if the
/// clock reads out of order, which relaxed platforms permit only across
/// threads -- both reads here are same-thread, so this is belt and
/// braces).
inline std::uint64_t co_latency_ns(
    std::chrono::steady_clock::time_point intended,
    std::chrono::steady_clock::time_point completion) {
  if (completion <= intended) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(completion -
                                                           intended)
          .count());
}

}  // namespace pragmalist::harness
