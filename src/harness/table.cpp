#include "src/harness/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

namespace pragmalist::harness {

void print_paper_table(std::ostream& os, const std::string& title,
                       const std::vector<TableRow>& rows) {
  std::size_t label_width = 12;
  for (const auto& row : rows)
    label_width = std::max(label_width, row.label.size());

  os << "== " << title << " ==\n";
  os << std::left << std::setw(static_cast<int>(label_width + 2)) << "variant"
     << std::right << std::setw(12) << "ms" << std::setw(14) << "ops"
     << std::setw(12) << "Kops/s" << std::setw(10) << "adds" << std::setw(10)
     << "rems" << std::setw(12) << "con-hits" << "\n";
  for (const auto& row : rows) {
    const auto& r = row.result;
    os << std::left << std::setw(static_cast<int>(label_width + 2))
       << row.label << std::right << std::setw(12) << std::fixed
       << std::setprecision(2) << r.ms << std::setw(14) << r.total_ops
       << std::setw(12) << std::fixed << std::setprecision(1)
       << r.kops_per_sec() << std::setw(10) << r.agg.adds << std::setw(10)
       << r.agg.rems << std::setw(12) << r.agg.cons << "\n";
  }
}

void write_csv(std::ostream& os, const std::vector<TableRow>& rows) {
  os << "variant,ms,ops,kops_per_sec,adds,rems,con_hits,scan_calls,"
        "scanned_keys\n";
  for (const auto& row : rows) {
    const auto& r = row.result;
    os << row.label << ',' << r.ms << ',' << r.total_ops << ','
       << r.kops_per_sec() << ',' << r.agg.adds << ',' << r.agg.rems << ','
       << r.agg.cons << ',' << r.agg.scan_calls << ',' << r.agg.scans
       << "\n";
  }
}

namespace {

double us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

}  // namespace

void print_latency_table(std::ostream& os, const std::string& title,
                         const std::vector<LatencyRow>& rows) {
  std::size_t label_width = 12;
  for (const auto& row : rows)
    label_width = std::max(label_width, row.label.size());

  os << "== " << title << " ==\n";
  os << std::left << std::setw(static_cast<int>(label_width + 2)) << "variant"
     << std::setw(10) << "class" << std::right << std::setw(10) << "count"
     << std::setw(11) << "p50(us)" << std::setw(11) << "p90(us)"
     << std::setw(11) << "p99(us)" << std::setw(11) << "p999(us)"
     << std::setw(11) << "max(us)" << std::setw(11) << "Kops/s"
     << std::setw(11) << "hints" << std::setw(10) << "restarts" << "\n";
  for (const auto& row : rows) {
    for (int c = 0; c < kNumOpClasses; ++c) {
      const auto cls = static_cast<OpClass>(c);
      const LatHistogram& h = row.profile.of(cls);
      if (h.count() == 0) continue;
      os << std::left << std::setw(static_cast<int>(label_width + 2))
         << row.label << std::setw(10) << op_class_name(cls) << std::right
         << std::setw(10) << h.count() << std::fixed << std::setprecision(1)
         << std::setw(11) << us(h.percentile(0.50)) << std::setw(11)
         << us(h.percentile(0.90)) << std::setw(11)
         << us(h.percentile(0.99)) << std::setw(11)
         << us(h.percentile(0.999)) << std::setw(11) << us(h.max())
         << std::setw(11) << row.kops << std::setw(11) << row.hint_hits
         << std::setw(10) << row.restarts << "\n";
    }
  }
}

void write_latency_csv(std::ostream& os, const std::vector<LatencyRow>& rows) {
  os << "id,class,count,p50_ns,p90_ns,p99_ns,p999_ns,max_ns,kops_per_sec,"
        "hint_hits,restarts\n";
  for (const auto& row : rows) {
    for (int c = 0; c < kNumOpClasses; ++c) {
      const auto cls = static_cast<OpClass>(c);
      const LatHistogram& h = row.profile.of(cls);
      if (h.count() == 0) continue;
      os << row.label << ',' << op_class_name(cls) << ',' << h.count() << ','
         << h.percentile(0.50) << ',' << h.percentile(0.90) << ','
         << h.percentile(0.99) << ',' << h.percentile(0.999) << ','
         << h.max() << ',' << row.kops << ',' << row.hint_hits << ','
         << row.restarts << "\n";
    }
  }
}

std::string latency_summary_line(const LatencyProfile& profile) {
  const LatHistogram all = profile.merged();
  if (all.count() == 0) return {};
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << "p50=" << us(all.percentile(0.50))
     << "us p99=" << us(all.percentile(0.99)) << "us p999="
     << us(all.percentile(0.999)) << "us max=" << us(all.max()) << "us";
  return os.str();
}

std::string summary_cell(const Summary& s, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << s.mean << " "
     << stddev_cell(s, precision);
  return os.str();
}

std::string stddev_cell(const Summary& s, int precision) {
  if (!s.stddev_defined()) return "—";  // em dash: no spread exists
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << "±" << s.stddev;
  return os.str();
}

std::string summary_csv_fields(const Summary& s, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << s.mean << ",";
  if (s.stddev_defined()) os << s.stddev;
  return os.str();
}

double ShardLoad::imbalance() const {
  if (!sharded()) return 0.0;
  if (max_ops == 0) return 1.0;  // no traffic anywhere: degenerate spread
  if (min_ops <= 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(max_ops) / static_cast<double>(min_ops);
}

ShardLoad shard_load(const core::ISet& set) {
  ShardLoad load;
  load.ops = set.shard_ops();
  if (load.ops.empty()) return load;
  load.max_ops = *std::max_element(load.ops.begin(), load.ops.end());
  load.min_ops = *std::min_element(load.ops.begin(), load.ops.end());
  return load;
}

std::string shard_load_line(const core::ISet& set) {
  const ShardLoad load = shard_load(set);
  if (!load.sharded()) return {};
  std::ostringstream os;
  os << "shards=" << load.ops.size() << " ops[min " << load.min_ops
     << " max " << load.max_ops << " max/min ";
  const double imbalance = load.imbalance();
  if (std::isinf(imbalance))
    os << "inf";  // a shard saw no traffic at all
  else
    os << std::fixed << std::setprecision(2) << imbalance;
  os << "] per-shard:";
  for (const long ops : load.ops) os << ' ' << ops;
  return os.str();
}

}  // namespace pragmalist::harness
