// Summary statistics for repeated benchmark runs.
#pragma once

#include <vector>

namespace pragmalist::harness {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;
};

Summary summarize(const std::vector<double>& xs);

}  // namespace pragmalist::harness
