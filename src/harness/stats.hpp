// Summary statistics for repeated benchmark runs.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace pragmalist::harness {

struct Summary {
  double mean = 0.0;
  // Sample standard deviation. NaN when fewer than two samples: a
  // single run carries no dispersion information, and reporting 0.0
  // there (as this used to) is indistinguishable from true zero
  // variance. Consumers check stddev_defined() (or std::isnan) before
  // printing.
  double stddev = std::numeric_limits<double>::quiet_NaN();
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;

  bool stddev_defined() const { return n >= 2; }
};

Summary summarize(const std::vector<double>& xs);

}  // namespace pragmalist::harness
