// Thread-team runners.
//
//   run_team     -- the fixed-membership runner behind every paper
//     table: spawn p workers, line them up behind a start gate so
//     thread creation is excluded from the measurement, release them
//     together, and report the wall time from release to the *last
//     body return* (each worker stamps a timestamp the moment its body
//     returns; the window is the max-reduce of those stamps). Joining
//     happens after the stamps, so thread teardown -- TLS destructors,
//     kernel exit, join scheduling skew -- is excluded: measuring to
//     the last join used to inflate short runs by the slowest thread's
//     exit path, which is noise, not workload.
//   DynamicTeam  -- the service-mode runner: workers arrive and depart
//     mid-run under resize(), each driving its loop body until its
//     personal stop token flips. Worker ids are arrival ids and are
//     never reused, so every arrival opens a fresh structure handle
//     (and every departure closes one) -- exactly the handle-slot
//     churn the reclaimers' re-lease paths exist for.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/affinity.hpp"

namespace pragmalist::harness {

/// Run `body(t)` on p threads (t = 0..p-1), optionally pinning thread t
/// to CPU t modulo the machine size. Returns elapsed milliseconds over
/// the measured region.
template <typename Body>
double run_team(int p, Body&& body, bool pin) {
  if (p <= 0) return 0.0;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  // Stamped by each worker the instant its body returns; the measured
  // window ends at the max of these, not at the last join, so thread
  // teardown (TLS destructors, exit, join skew) never counts.
  std::vector<std::chrono::steady_clock::time_point> done(
      static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  for (int t = 0; t < p; ++t) {
    threads.emplace_back([&, t] {
      if (pin) pin_current_thread(t);
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      body(t);
      done[static_cast<std::size_t>(t)] = std::chrono::steady_clock::now();
    });
  }
  while (ready.load(std::memory_order_acquire) != p)
    std::this_thread::yield();
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  // join() synchronizes with each thread's completion, so the stamps
  // are safely visible here.
  const auto stop = *std::max_element(done.begin(), done.end());
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

/// Dynamic-membership worker pool for the soak harness. Not a
/// measurement gate like run_team: workers start the moment they are
/// spawned and stop when resize() (or the destructor) tells them to.
/// Departures are LIFO -- the newest arrivals leave first -- so a
/// ramp-down schedule leaves the longest-lived workers (the
/// "stragglers") running. Single-owner: resize() and the destructor
/// must be called from one controlling thread.
class DynamicTeam {
 public:
  /// `body(worker_id, stop)` runs on each worker thread and must
  /// return promptly once `stop` becomes true. `worker_id` increments
  /// with every arrival and is never reused.
  DynamicTeam(std::function<void(int, const std::atomic<bool>&)> body,
              bool pin)
      : body_(std::move(body)), pin_(pin) {}
  DynamicTeam(const DynamicTeam&) = delete;
  DynamicTeam& operator=(const DynamicTeam&) = delete;

  ~DynamicTeam() { resize(0); }

  /// Grow or shrink the live worker set to `target` (>= 0). Shrinking
  /// joins the departing workers before returning, so their structure
  /// handles are fully closed (slots released, limbo handed over) by
  /// the time resize() returns; all departing stop tokens flip before
  /// the first join, so a mass departure costs the slowest single
  /// worker's wind-down, not the sum of them.
  void resize(int target) {
    for (std::size_t i = static_cast<std::size_t>(target < 0 ? 0 : target);
         i < workers_.size(); ++i)
      workers_[i].stop->store(true, std::memory_order_release);
    while (static_cast<int>(workers_.size()) > target) {
      workers_.back().thread.join();
      workers_.pop_back();
    }
    while (static_cast<int>(workers_.size()) < target) {
      const int id = next_id_++;
      // Pin by live position, not arrival id: LIFO departures keep
      // positions 0..n-1 occupied, so live workers always sit on
      // distinct CPUs no matter how many arrivals came before.
      const int cpu = static_cast<int>(workers_.size());
      auto stop = std::make_unique<std::atomic<bool>>(false);
      std::atomic<bool>* stop_raw = stop.get();
      std::thread thread([this, id, cpu, stop_raw] {
        if (pin_) pin_current_thread(cpu);
        body_(id, *stop_raw);
      });
      workers_.push_back(Worker{std::move(thread), std::move(stop)});
    }
  }

  /// Live workers right now.
  int size() const { return static_cast<int>(workers_.size()); }

  /// Total arrivals so far (== the next worker id).
  int arrivals() const { return next_id_; }

 private:
  struct Worker {
    std::thread thread;
    // Heap-allocated so resize()'s vector growth never moves a token a
    // running worker is polling.
    std::unique_ptr<std::atomic<bool>> stop;
  };

  std::function<void(int, const std::atomic<bool>&)> body_;
  bool pin_;
  int next_id_ = 0;
  std::vector<Worker> workers_;
};

}  // namespace pragmalist::harness
