// Thread-team runner: spawn p workers, line them up behind a start
// gate so thread creation is excluded from the measurement, release
// them together, and report the wall time from release to last join.
#pragma once

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/common/affinity.hpp"

namespace pragmalist::harness {

/// Run `body(t)` on p threads (t = 0..p-1), optionally pinning thread t
/// to CPU t modulo the machine size. Returns elapsed milliseconds over
/// the measured region.
template <typename Body>
double run_team(int p, Body&& body, bool pin) {
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  for (int t = 0; t < p; ++t) {
    threads.emplace_back([&, t] {
      if (pin) pin_current_thread(t);
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      body(t);
    });
  }
  while (ready.load(std::memory_order_acquire) != p)
    std::this_thread::yield();
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace pragmalist::harness
