#include "src/harness/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pragmalist::harness {

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  double sum = 0.0;
  for (const double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  // n < 2 leaves stddev at its NaN default: one sample has no
  // dispersion estimate (0.0 would masquerade as zero variance).
  if (xs.size() > 1) {
    double ss = 0.0;
    for (const double x : xs) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(xs.size() - 1));
  }
  return s;
}

}  // namespace pragmalist::harness
