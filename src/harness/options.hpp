// Tiny CLI parser for the bench binaries. Flags are `--name value`,
// `--name=value`, or bare `--name` (boolean). Unknown flags warn but do
// not abort, so every binary accepts the shared flag vocabulary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pragmalist::harness {

class Options {
 public:
  static Options parse(int argc, char** argv);

  /// Value of --name as int/long, or `def` when absent.
  int get_int(const std::string& name, int def) const;
  long get_long(const std::string& name, long def) const;

  /// Value of --name as double (e.g. --theta 0.99), or `def`.
  double get_double(const std::string& name, double def) const;

  /// True when --name was given (with no value, or a value other than
  /// "0"/"false"/"no").
  bool get_bool(const std::string& name) const;

  /// Raw string value of --name, or `def` when absent or bare.
  std::string get_string(const std::string& name,
                         const std::string& def) const;

  /// Comma-separated list of longs (e.g. --threads 1,2,4), or `def`
  /// when the flag is absent, bare, or yields no items. Empty items
  /// ("1,,2") are skipped; non-integer items warn and parse as 0 (the
  /// same contract as get_long). One splitter serves this and
  /// get_string_list -- the comma-list parsing the bench binaries used
  /// to hand-roll lives here exactly once.
  std::vector<long> get_longs(const std::string& name,
                              const std::vector<long>& def) const;

  /// Comma-separated list of strings (e.g. --ids a,b/ebr), or `def`.
  std::vector<std::string> get_string_list(
      const std::string& name, const std::vector<std::string>& def) const;

  /// "host:port" flag value (e.g. --listen 0.0.0.0:7111). Either side
  /// may be omitted: ":7111" keeps def.host, "10.0.0.1" or "10.0.0.1:"
  /// keeps def.port. A non-numeric or out-of-range port warns and
  /// returns `def` whole (the get_long contract).
  struct HostPort {
    std::string host;
    int port = 0;
  };
  HostPort get_host_port(const std::string& name, const HostPort& def) const;

  /// Duration flag with unit suffix: "500ms", "5s", "2m", "1h"; a bare
  /// number means SECONDS (so the historical `--duration 5` keeps
  /// meaning five seconds). Returns milliseconds. Fractions work
  /// ("0.5s" = 500); junk or negative values warn and return `def_ms`.
  long get_duration_ms(const std::string& name, long def_ms) const;

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  struct Flag {
    std::string name;
    std::string value;  // empty for bare flags
    bool has_value = false;
  };

  const Flag* lookup(const std::string& name) const;

  std::string program_;
  std::vector<Flag> flags_;
};

}  // namespace pragmalist::harness
