// The two workload drivers behind every paper table and figure:
//
//   run_deterministic -- the worst-case benchmark: every thread adds
//     its n scheduled keys, then removes them (same or disjoint key
//     schedules). Always drains the set.
//   run_random_mix    -- prefill f keys, then p threads each run c
//     operations drawn from an OpMix over a key universe, uniform or
//     zipfian.
//
// Both create one handle per worker via ISet::make_handle() and
// aggregate the handles' OpCounters into the RunResult.
#pragma once

#include <cstdint>

#include "src/core/iset.hpp"
#include "src/harness/latency.hpp"
#include "src/workload/op_mix.hpp"
#include "src/workload/schedule.hpp"

namespace pragmalist::harness {

struct RunResult {
  double ms = 0.0;
  long total_ops = 0;
  core::OpCounters agg;

  /// Thousands of operations per second (ops per millisecond).
  double kops_per_sec() const {
    return ms > 0.0 ? static_cast<double>(total_ops) / ms : 0.0;
  }
};

/// Key distribution selector for run_random_mix.
struct KeyDist {
  enum class Kind { kUniform, kZipf };
  Kind kind = Kind::kUniform;
  double theta = 0.0;

  static KeyDist uniform() { return {}; }
  static KeyDist zipf(double theta) {
    return {Kind::kZipf, theta};
  }
};

RunResult run_deterministic(core::ISet& set, int p, long n,
                            workload::KeySchedule sched, bool pin);

/// Execute one range scan with the emission contract checked on every
/// key (ascending, inside [lo, hi]); aborts via PRAGMALIST_CHECK on a
/// violation. Both workload drivers (random mix and soak) issue their
/// scan ops through this, so no driver can report numbers from a
/// misbehaving scan.
long checked_range_scan(core::ISetHandle& h, long lo, long hi);

/// `widths` is the range-width distribution for scan operations (only
/// consulted when mix.scan_pct > 0): a scan op draws its key like any
/// other op and reads [key, key + width - 1]. Every scan's emission is
/// checked in-line (ascending, in range) -- a scan bug aborts the run
/// rather than producing numbers.
///
/// `lat`, when non-null, receives per-op-class latencies (observed
/// start -> completion, merged across workers). A null pointer is the
/// default and costs one predicted branch per op -- no clock reads --
/// so throughput numbers stay comparable with pre-latency runs.
RunResult run_random_mix(core::ISet& set, int p, long c, long prefill,
                         long universe, workload::OpMix mix,
                         std::uint64_t seed, bool pin,
                         KeyDist dist = KeyDist::uniform(),
                         workload::ScanWidths widths = {},
                         LatencyProfile* lat = nullptr);

/// Fixed-rate (coordinated-omission-aware) mix driver behind
/// bench_latency --rate: each of the p workers issues its ops on an
/// absolute schedule of `rate` intended starts per second and records
/// completion - *intended* start into `lat`, so a stall charges its
/// full duration to the stalled op and the queueing delay to every op
/// scheduled behind it (a free-running loop silently omits exactly
/// those samples). `behind`, when non-null, receives the total number
/// of ops that started a full period or more late. RunResult.ms is the
/// usual run_team window, which here includes pacing sleeps -- kops/s
/// reports the *offered* rate, the latency profile carries the story.
RunResult run_fixed_rate(core::ISet& set, int p, long c, long prefill,
                         long universe, workload::OpMix mix,
                         std::uint64_t seed, bool pin, double rate,
                         LatencyProfile& lat, long* behind = nullptr,
                         KeyDist dist = KeyDist::uniform(),
                         workload::ScanWidths widths = {});

}  // namespace pragmalist::harness
