// Variant catalog: maps the string ids the bench binaries use to
// concrete structures, type-erased behind core::ISet.
//
// Paper variants (table rows a-f):
//   draconic, singly, doubly, singly_cursor, singly_fetch_or,
//   doubly_cursor
// Reclaimer combinations: every paper variant also exists as
//   `<variant>/ebr` and `<variant>/hp` (epoch-based and hazard-pointer
//   reclamation from src/reclaim/; the bare id is the paper's arena)
// Sharding: any paper variant or Michael baseline id -- with or
//   without a reclaimer segment -- additionally accepts a `/shN`
//   suffix (`singly/ebr/sh8`, `draconic/hp/sh16`, `singly_cursor/sh4`,
//   `hp_michael/sh8`): N hash-partitioned lists behind one set,
//   sharing one reclamation domain (src/shard/). Parsed dynamically,
//   any N in [1, 1024].
// Unrolled family: unrolled_k8 (+ /ebr, /hp, /shN) -- K=8 sorted keys
//   per cache-line-sized fat node; `unrolled-k8` is accepted as an
//   alias (dashes normalize to underscores).
// Node memory: engine ids allocate nodes from per-domain slabs
//   (src/alloc/) by default; appending a final `/heap` segment builds
//   the plain-malloc twin of the same id (`singly/ebr/heap`,
//   `unrolled_k8/hp/sh4/heap`). Non-engine structures ignore the mode.
// Ablation-only: doubly_cursor_noprec, singly_cursor_backoff
// Baselines: coarse_lock, lazy_lock, hp_michael, ebr_michael
// Structures: skiplist, skiplist_draconic
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "src/core/iset.hpp"

namespace pragmalist::harness {

/// Construct the structure registered under `id`; aborts with the list
/// of known ids on a typo.
std::unique_ptr<core::ISet> make_set(std::string_view id);

/// The six variants of the paper tables, in row order a-f.
const std::vector<std::string_view>& paper_variant_ids();

/// The five variants of the scaling figures (a, b, c, d, f).
const std::vector<std::string_view>& figure_variant_ids();

/// Every id make_set accepts (tests iterate this).
const std::vector<std::string_view>& all_variant_ids();

/// The `<variant>/<reclaimer>` grid: every paper variant under ebr and
/// hp reclamation (the stress tier and bench_reclaim iterate this).
const std::vector<std::string_view>& reclaim_variant_ids();

/// The sharded showcase grid: every `<variant>/<reclaimer>` id behind
/// a 4-way hash-sharded set (`<id>/sh4`). make_set accepts any
/// `<base>/shN`; this fixed list is what the stress tiers iterate.
const std::vector<std::string_view>& sharded_variant_ids();

/// Paper row letter for an id ("a".."f"), successive letters for the
/// baselines, "-" for anything unlettered.
std::string_view variant_letter(std::string_view id);

}  // namespace pragmalist::harness
