#include "src/harness/drivers.hpp"

#include <limits>
#include <memory>
#include <vector>

#include "src/common/debug.hpp"
#include "src/harness/thread_team.hpp"
#include "src/workload/distributions.hpp"
#include "src/workload/rng.hpp"

namespace pragmalist::harness {
namespace {

/// Prefill on a scratch handle whose counters stay out of the
/// aggregate: the population ledger is prefill + adds - rems.
void prefill_set(core::ISet& set, long prefill, long universe,
                 std::uint64_t seed) {
  auto handle = set.make_handle();
  workload::Rng rng(workload::thread_seed(seed, -1));
  long inserted = 0;
  while (inserted < prefill) {
    const auto key =
        static_cast<long>(rng.below(static_cast<std::uint64_t>(universe)));
    inserted += handle->add(key);
  }
}

void check_mix(long prefill, long universe, const workload::OpMix& mix,
               const workload::ScanWidths& widths) {
  PRAGMALIST_CHECK(prefill <= universe,
                   "cannot prefill more distinct keys than the universe");
  PRAGMALIST_CHECK(
      mix.add_pct >= 0 && mix.rem_pct >= 0 && mix.con_pct >= 0 &&
          mix.scan_pct >= 0 &&
          mix.add_pct + mix.rem_pct + mix.con_pct + mix.scan_pct == 100,
      "op mix percentages must be non-negative and sum to 100");
  PRAGMALIST_CHECK(widths.min_width >= 1 &&
                       widths.max_width >= widths.min_width,
                   "scan widths must satisfy 1 <= min <= max");
}

/// Execute one mix operation; `width` is only meaningful for scans.
/// Returns the op's latency class.
OpClass execute_op(core::ISetHandle& h, workload::OpKind kind, long key,
                   long width) {
  switch (kind) {
    case workload::OpKind::kAdd:
      h.add(key);
      return OpClass::kAdd;
    case workload::OpKind::kRemove:
      h.remove(key);
      return OpClass::kRemove;
    case workload::OpKind::kContains:
      h.contains(key);
      return OpClass::kContains;
    case workload::OpKind::kScan:
      checked_range_scan(h, key, key + width - 1);
      return OpClass::kScan;
  }
  return OpClass::kContains;  // unreachable
}

}  // namespace

long checked_range_scan(core::ISetHandle& h, long lo, long hi) {
  struct ScanState {
    long lo, hi, last;
  } s{lo, hi, std::numeric_limits<long>::min()};
  return h.range_scan(lo, hi, [&s](long k) {
    PRAGMALIST_CHECK(k >= s.lo && k <= s.hi && k > s.last,
                     "scan emitted an out-of-order or out-of-range key");
    s.last = k;
  });
}

RunResult run_deterministic(core::ISet& set, int p, long n,
                            workload::KeySchedule sched, bool pin) {
  std::vector<core::OpCounters> counters(static_cast<std::size_t>(p));
  const double ms = run_team(
      p,
      [&](int t) {
        auto handle = set.make_handle();
        for (long i = 0; i < n; ++i)
          handle->add(workload::schedule_key(sched, t, i, p));
        for (long i = 0; i < n; ++i)
          handle->remove(workload::schedule_key(sched, t, i, p));
        counters[static_cast<std::size_t>(t)] = handle->counters();
      },
      pin);

  RunResult r;
  r.ms = ms;
  for (const auto& c : counters) r.agg += c;
  r.total_ops = r.agg.total_ops();
  return r;
}

RunResult run_random_mix(core::ISet& set, int p, long c, long prefill,
                         long universe, workload::OpMix mix,
                         std::uint64_t seed, bool pin, KeyDist dist,
                         workload::ScanWidths widths, LatencyProfile* lat) {
  check_mix(prefill, universe, mix, widths);
  prefill_set(set, prefill, universe, seed);

  // The zipf generator's O(universe) setup must stay outside the timed
  // region (it would be charged to the zipf rows but not the uniform
  // ones); draws are const and stateless, so one instance is shared.
  const workload::UniformKeys uniform(static_cast<std::uint64_t>(universe));
  std::unique_ptr<const workload::ZipfKeys> zipf;
  if (dist.kind == KeyDist::Kind::kZipf)
    zipf = std::make_unique<workload::ZipfKeys>(
        static_cast<std::uint64_t>(universe), dist.theta);

  // Per-worker profiles (LatHistogram is non-movable), merged after the
  // join; only allocated when recording is on.
  std::vector<std::unique_ptr<LatencyProfile>> parts;
  if (lat)
    for (int t = 0; t < p; ++t)
      parts.push_back(std::make_unique<LatencyProfile>());

  std::vector<core::OpCounters> counters(static_cast<std::size_t>(p));
  const double ms = run_team(
      p,
      [&](int t) {
        auto handle = set.make_handle();
        workload::Rng rng(workload::thread_seed(seed, t));
        LatencyProfile* lp =
            lat ? parts[static_cast<std::size_t>(t)].get() : nullptr;
        for (long i = 0; i < c; ++i) {
          const long key = zipf ? (*zipf)(rng) : uniform(rng);
          const workload::OpKind kind = mix.pick(rng);
          // Draw the width only for scans so the pre-scan RNG streams
          // (and their golden tests) stay bit-identical.
          const long width =
              kind == workload::OpKind::kScan ? widths.pick(rng) : 1;
          if (lp) {
            const std::uint64_t t0 = lat_now_ns();
            const OpClass cls = execute_op(*handle, kind, key, width);
            lp->of(cls).record(lat_now_ns() - t0);
          } else {
            execute_op(*handle, kind, key, width);
          }
        }
        counters[static_cast<std::size_t>(t)] = handle->counters();
      },
      pin);

  if (lat)
    for (const auto& part : parts) *lat += *part;

  RunResult r;
  r.ms = ms;
  for (const auto& c2 : counters) r.agg += c2;
  r.total_ops = r.agg.total_ops();
  return r;
}

RunResult run_fixed_rate(core::ISet& set, int p, long c, long prefill,
                         long universe, workload::OpMix mix,
                         std::uint64_t seed, bool pin, double rate,
                         LatencyProfile& lat, long* behind, KeyDist dist,
                         workload::ScanWidths widths) {
  check_mix(prefill, universe, mix, widths);
  PRAGMALIST_CHECK(rate > 0.0, "fixed-rate mode needs a positive --rate");
  prefill_set(set, prefill, universe, seed);

  const workload::UniformKeys uniform(static_cast<std::uint64_t>(universe));
  std::unique_ptr<const workload::ZipfKeys> zipf;
  if (dist.kind == KeyDist::Kind::kZipf)
    zipf = std::make_unique<workload::ZipfKeys>(
        static_cast<std::uint64_t>(universe), dist.theta);

  const auto period_ns = static_cast<std::uint64_t>(1e9 / rate);
  std::vector<std::unique_ptr<LatencyProfile>> parts;
  for (int t = 0; t < p; ++t)
    parts.push_back(std::make_unique<LatencyProfile>());
  std::vector<long> behinds(static_cast<std::size_t>(p), 0);

  std::vector<core::OpCounters> counters(static_cast<std::size_t>(p));
  const double ms = run_team(
      p,
      [&](int t) {
        auto handle = set.make_handle();
        workload::Rng rng(workload::thread_seed(seed, t));
        LatencyProfile& lp = *parts[static_cast<std::size_t>(t)];
        behinds[static_cast<std::size_t>(t)] = run_paced(
            c, period_ns,
            [&](long, std::chrono::steady_clock::time_point intended) {
              const long key = zipf ? (*zipf)(rng) : uniform(rng);
              const workload::OpKind kind = mix.pick(rng);
              const long width =
                  kind == workload::OpKind::kScan ? widths.pick(rng) : 1;
              const OpClass cls = execute_op(*handle, kind, key, width);
              lp.of(cls).record(co_latency_ns(
                  intended, std::chrono::steady_clock::now()));
            });
        counters[static_cast<std::size_t>(t)] = handle->counters();
      },
      pin);

  long total_behind = 0;
  for (int t = 0; t < p; ++t) {
    lat += *parts[static_cast<std::size_t>(t)];
    total_behind += behinds[static_cast<std::size_t>(t)];
  }
  if (behind) *behind = total_behind;

  RunResult r;
  r.ms = ms;
  for (const auto& c2 : counters) r.agg += c2;
  r.total_ops = r.agg.total_ops();
  return r;
}

}  // namespace pragmalist::harness
