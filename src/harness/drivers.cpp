#include "src/harness/drivers.hpp"

#include <limits>
#include <memory>
#include <vector>

#include "src/common/debug.hpp"
#include "src/harness/thread_team.hpp"
#include "src/workload/distributions.hpp"
#include "src/workload/rng.hpp"

namespace pragmalist::harness {

long checked_range_scan(core::ISetHandle& h, long lo, long hi) {
  struct ScanState {
    long lo, hi, last;
  } s{lo, hi, std::numeric_limits<long>::min()};
  return h.range_scan(lo, hi, [&s](long k) {
    PRAGMALIST_CHECK(k >= s.lo && k <= s.hi && k > s.last,
                     "scan emitted an out-of-order or out-of-range key");
    s.last = k;
  });
}

RunResult run_deterministic(core::ISet& set, int p, long n,
                            workload::KeySchedule sched, bool pin) {
  std::vector<core::OpCounters> counters(static_cast<std::size_t>(p));
  const double ms = run_team(
      p,
      [&](int t) {
        auto handle = set.make_handle();
        for (long i = 0; i < n; ++i)
          handle->add(workload::schedule_key(sched, t, i, p));
        for (long i = 0; i < n; ++i)
          handle->remove(workload::schedule_key(sched, t, i, p));
        counters[static_cast<std::size_t>(t)] = handle->counters();
      },
      pin);

  RunResult r;
  r.ms = ms;
  for (const auto& c : counters) r.agg += c;
  r.total_ops = r.agg.total_ops();
  return r;
}

RunResult run_random_mix(core::ISet& set, int p, long c, long prefill,
                         long universe, workload::OpMix mix,
                         std::uint64_t seed, bool pin, KeyDist dist,
                         workload::ScanWidths widths) {
  PRAGMALIST_CHECK(prefill <= universe,
                   "cannot prefill more distinct keys than the universe");
  PRAGMALIST_CHECK(
      mix.add_pct >= 0 && mix.rem_pct >= 0 && mix.con_pct >= 0 &&
          mix.scan_pct >= 0 &&
          mix.add_pct + mix.rem_pct + mix.con_pct + mix.scan_pct == 100,
      "op mix percentages must be non-negative and sum to 100");
  PRAGMALIST_CHECK(widths.min_width >= 1 &&
                       widths.max_width >= widths.min_width,
                   "scan widths must satisfy 1 <= min <= max");
  {
    // Prefill on a scratch handle whose counters stay out of the
    // aggregate: the population ledger is prefill + adds - rems.
    auto handle = set.make_handle();
    workload::Rng rng(workload::thread_seed(seed, -1));
    long inserted = 0;
    while (inserted < prefill) {
      const auto key =
          static_cast<long>(rng.below(static_cast<std::uint64_t>(universe)));
      inserted += handle->add(key);
    }
  }

  // The zipf generator's O(universe) setup must stay outside the timed
  // region (it would be charged to the zipf rows but not the uniform
  // ones); draws are const and stateless, so one instance is shared.
  const workload::UniformKeys uniform(static_cast<std::uint64_t>(universe));
  std::unique_ptr<const workload::ZipfKeys> zipf;
  if (dist.kind == KeyDist::Kind::kZipf)
    zipf = std::make_unique<workload::ZipfKeys>(
        static_cast<std::uint64_t>(universe), dist.theta);

  std::vector<core::OpCounters> counters(static_cast<std::size_t>(p));
  const double ms = run_team(
      p,
      [&](int t) {
        auto handle = set.make_handle();
        workload::Rng rng(workload::thread_seed(seed, t));
        for (long i = 0; i < c; ++i) {
          const long key = zipf ? (*zipf)(rng) : uniform(rng);
          switch (mix.pick(rng)) {
            case workload::OpKind::kAdd:
              handle->add(key);
              break;
            case workload::OpKind::kRemove:
              handle->remove(key);
              break;
            case workload::OpKind::kContains:
              handle->contains(key);
              break;
            case workload::OpKind::kScan:
              checked_range_scan(*handle, key, key + widths.pick(rng) - 1);
              break;
          }
        }
        counters[static_cast<std::size_t>(t)] = handle->counters();
      },
      pin);

  RunResult r;
  r.ms = ms;
  for (const auto& c2 : counters) r.agg += c2;
  r.total_ops = r.agg.total_ops();
  return r;
}

}  // namespace pragmalist::harness
