#include "src/harness/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace pragmalist::harness {

Options Options::parse(int argc, char** argv) {
  Options opt;
  if (argc > 0) opt.program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "options: ignoring stray argument '%s'\n",
                   arg.c_str());
      continue;
    }
    Flag flag;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flag.name = arg.substr(2, eq - 2);
      flag.value = arg.substr(eq + 1);
      flag.has_value = true;
    } else {
      flag.name = arg.substr(2);
      // A following token that is not itself a flag is this flag's
      // value ("--threads 8").
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flag.value = argv[++i];
        flag.has_value = true;
      }
    }
    opt.flags_.push_back(std::move(flag));
  }
  return opt;
}

const Options::Flag* Options::lookup(const std::string& name) const {
  for (const auto& flag : flags_)
    if (flag.name == name) return &flag;
  return nullptr;
}

int Options::get_int(const std::string& name, int def) const {
  return static_cast<int>(get_long(name, def));
}

namespace {

/// strtol with a full-consumption check: "--c 1e6" or "--threads four"
/// must not silently become 1 or 0.
long parse_long_or_warn(const std::string& name, const std::string& value,
                        long def) {
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    std::fprintf(stderr,
                 "options: --%s value '%s' is not an integer; using %ld\n",
                 name.c_str(), value.c_str(), def);
    return def;
  }
  return parsed;
}

}  // namespace

long Options::get_long(const std::string& name, long def) const {
  const Flag* flag = lookup(name);
  if (flag == nullptr || !flag->has_value) return def;
  return parse_long_or_warn(name, flag->value, def);
}

double Options::get_double(const std::string& name, double def) const {
  const Flag* flag = lookup(name);
  if (flag == nullptr || !flag->has_value) return def;
  char* end = nullptr;
  const double parsed = std::strtod(flag->value.c_str(), &end);
  if (end == flag->value.c_str() || *end != '\0') {
    std::fprintf(stderr,
                 "options: --%s value '%s' is not a number; using %g\n",
                 name.c_str(), flag->value.c_str(), def);
    return def;
  }
  return parsed;
}

bool Options::get_bool(const std::string& name) const {
  const Flag* flag = lookup(name);
  if (flag == nullptr) return false;
  if (!flag->has_value) return true;
  return flag->value != "0" && flag->value != "false" && flag->value != "no";
}

std::string Options::get_string(const std::string& name,
                                const std::string& def) const {
  const Flag* flag = lookup(name);
  if (flag == nullptr || !flag->has_value) return def;
  return flag->value;
}

namespace {

/// The one comma splitter behind every list-valued flag: non-empty
/// items of `value`, in order.
std::vector<std::string> split_commas(const std::string& value) {
  std::vector<std::string> items;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) items.push_back(item);
  return items;
}

}  // namespace

std::vector<long> Options::get_longs(const std::string& name,
                                     const std::vector<long>& def) const {
  const Flag* flag = lookup(name);
  if (flag == nullptr || !flag->has_value) return def;
  std::vector<long> values;
  for (const auto& item : split_commas(flag->value))
    values.push_back(parse_long_or_warn(name, item, 0));
  return values.empty() ? def : values;
}

std::vector<std::string> Options::get_string_list(
    const std::string& name, const std::vector<std::string>& def) const {
  const Flag* flag = lookup(name);
  if (flag == nullptr || !flag->has_value) return def;
  std::vector<std::string> values = split_commas(flag->value);
  return values.empty() ? def : values;
}

Options::HostPort Options::get_host_port(const std::string& name,
                                         const HostPort& def) const {
  const Flag* flag = lookup(name);
  if (flag == nullptr || !flag->has_value) return def;
  const std::string& value = flag->value;
  const auto colon = value.rfind(':');

  HostPort hp = def;
  const std::string host =
      colon == std::string::npos ? value : value.substr(0, colon);
  if (!host.empty()) hp.host = host;
  if (colon != std::string::npos && colon + 1 < value.size()) {
    const std::string port = value.substr(colon + 1);
    char* end = nullptr;
    const long parsed = std::strtol(port.c_str(), &end, 10);
    if (end == port.c_str() || *end != '\0' || parsed < 0 ||
        parsed > 65535) {
      std::fprintf(
          stderr,
          "options: --%s port '%s' is not in [0, 65535]; using %s:%d\n",
          name.c_str(), port.c_str(), def.host.c_str(), def.port);
      return def;
    }
    hp.port = static_cast<int>(parsed);
  }
  return hp;
}

long Options::get_duration_ms(const std::string& name, long def_ms) const {
  const Flag* flag = lookup(name);
  if (flag == nullptr || !flag->has_value) return def_ms;
  const std::string& value = flag->value;
  char* end = nullptr;
  const double number = std::strtod(value.c_str(), &end);
  const std::string unit(end);
  double scale_ms;  // a bare number is seconds, the historical unit
  if (unit.empty() || unit == "s")
    scale_ms = 1000.0;
  else if (unit == "ms")
    scale_ms = 1.0;
  else if (unit == "m")
    scale_ms = 60.0 * 1000.0;
  else if (unit == "h")
    scale_ms = 3600.0 * 1000.0;
  else
    scale_ms = -1.0;  // unknown suffix
  if (end == value.c_str() || scale_ms < 0 || number < 0) {
    std::fprintf(stderr,
                 "options: --%s value '%s' is not a duration "
                 "(try 500ms, 5s, 2m, 1h); using %ldms\n",
                 name.c_str(), value.c_str(), def_ms);
    return def_ms;
  }
  return static_cast<long>(number * scale_ms);
}

}  // namespace pragmalist::harness
