// Paper-style result tables and their CSV twins.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "src/harness/drivers.hpp"

namespace pragmalist::harness {

struct TableRow {
  std::string label;
  RunResult result;
};

/// Render rows the way the paper prints its tables: one variant per
/// row with run time, throughput and the success counters.
void print_paper_table(std::ostream& os, const std::string& title,
                       const std::vector<TableRow>& rows);

/// Machine-readable twin of print_paper_table.
void write_csv(std::ostream& os, const std::vector<TableRow>& rows);

}  // namespace pragmalist::harness
