// Paper-style result tables and their CSV twins, plus the shard-load
// summary the sharded benches print under each row.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "src/harness/drivers.hpp"
#include "src/harness/stats.hpp"

namespace pragmalist::harness {

struct TableRow {
  std::string label;
  RunResult result;
};

/// Render rows the way the paper prints its tables: one variant per
/// row with run time, throughput and the success counters.
void print_paper_table(std::ostream& os, const std::string& title,
                       const std::vector<TableRow>& rows);

/// Machine-readable twin of print_paper_table.
void write_csv(std::ostream& os, const std::vector<TableRow>& rows);

/// One bench row's latency profile, rendered as one line per non-empty
/// op class by print_latency_table / write_latency_csv. The run-level
/// fields (throughput, read-path progress counters from
/// OpCounters::hint_hits/restarts) are repeated on every class line of
/// the row -- CSV consumers pick them off whichever class they filter.
struct LatencyRow {
  std::string label;
  LatencyProfile profile;
  double kops = 0;        // whole-run throughput (Kops/s), 0 = unknown
  long hint_hits = 0;     // traversal starts taken from a shortcut
  long restarts = 0;      // lost anchors / abandoned passes
};

/// Human table: label, class, count, p50/p90/p99/p999/max in
/// microseconds, then the row-level Kops/s, hint hits and restarts.
/// Classes with zero samples are skipped.
void print_latency_table(std::ostream& os, const std::string& title,
                         const std::vector<LatencyRow>& rows);

/// Machine twin, nanosecond integers:
/// id,class,count,p50_ns,p90_ns,p99_ns,p999_ns,max_ns,kops_per_sec,
/// hint_hits,restarts. The CI latency smoke parses columns up to
/// max_ns and asserts p50 <= p99 <= p999 <= max per row; the
/// contains-heavy gate compares kops_per_sec across hinted/nohint
/// twins. New columns append after restarts to keep both awks valid.
void write_latency_csv(std::ostream& os, const std::vector<LatencyRow>& rows);

/// "p50=12.3us p99=45.6us p999=78.9us max=123.4us" over the merged op
/// classes -- the compact per-run summary the bench grids append to a
/// row. Empty when the profile holds no samples.
std::string latency_summary_line(const LatencyProfile& profile);

/// Human cell for a repeated-run Summary: "12.3 ±1.4", or "12.3 —"
/// when the sample count cannot define a stddev (n < 2, where
/// Summary::stddev is NaN by contract) -- a table must render the
/// contract, never the literal "nan".
std::string summary_cell(const Summary& s, int precision = 1);

/// The spread alone: "±1.4", or "—" when undefined.
std::string stddev_cell(const Summary& s, int precision = 1);

/// CSV twin: "<mean>,<stddev>" with the stddev field left *empty*
/// ("12.3,") when undefined, so parsers see a missing value instead of
/// a non-numeric token.
std::string summary_csv_fields(const Summary& s, int precision = 1);

/// Per-shard load distribution of a sharded set, read quiescently via
/// ISet::shard_ops(). `sharded()` is false for every unsharded id, so
/// callers can print unconditionally.
struct ShardLoad {
  std::vector<long> ops;  // per-shard routed operations
  long max_ops = 0;
  long min_ops = 0;

  bool sharded() const { return ops.size() > 1; }

  /// max/min per-shard op ratio: 1.0 is a perfect spread, large values
  /// mean hot shards (a zipf stream concentrating on few shards), and
  /// +infinity when a shard saw no traffic at all (the most lopsided
  /// partition, printed as "inf"). 0 only for unsharded sets.
  double imbalance() const;
};

ShardLoad shard_load(const core::ISet& set);

/// One-line human summary: "shards=8 ops[min 812 max 1431
/// max/min 1.76] per-shard: 812 901 ..."; empty for unsharded sets.
std::string shard_load_line(const core::ISet& set);

}  // namespace pragmalist::harness
