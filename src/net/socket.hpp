// Thin POSIX socket + epoll plumbing shared by the server and the
// loadgen: an RAII fd, nonblocking TCP listen/connect, and epoll
// add/mod/del that abort on programmer error (EBADF and friends are
// bugs, not runtime conditions). Host strings are dotted-quad IPv4
// ("0.0.0.0" to listen on everything); "localhost" is accepted as an
// alias for 127.0.0.1 so no resolver is involved anywhere -- the
// harness stays deterministic and dependency-free.
#pragma once

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>

#include "src/common/debug.hpp"

namespace pragmalist::net {

/// Close-on-destruct fd. Movable, not copyable.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

inline void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  PRAGMALIST_CHECK(flags >= 0, "fcntl(F_GETFL) failed");
  PRAGMALIST_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                   "fcntl(F_SETFL, O_NONBLOCK) failed");
}

/// Fill a sockaddr_in from host:port; false on an unparseable host.
inline bool make_addr(const std::string& host, int port,
                      sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string h = host == "localhost" ? "127.0.0.1" : host;
  return ::inet_pton(AF_INET, h.c_str(), &addr->sin_addr) == 1;
}

/// Nonblocking listening socket on host:port (port 0 = ephemeral).
/// Returns an invalid Fd with *err set on failure.
inline Fd listen_tcp(const std::string& host, int port, std::string* err) {
  sockaddr_in addr{};
  if (!make_addr(host, port, &addr)) {
    *err = "unparseable host '" + host + "' (IPv4 dotted quad expected)";
    return Fd();
  }
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    *err = std::string("socket: ") + std::strerror(errno);
    return Fd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    *err = std::string("bind: ") + std::strerror(errno);
    return Fd();
  }
  if (::listen(fd.get(), 1024) != 0) {
    *err = std::string("listen: ") + std::strerror(errno);
    return Fd();
  }
  set_nonblocking(fd.get());
  return fd;
}

/// Port a socket is actually bound to (resolves port 0).
inline int bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  PRAGMALIST_CHECK(
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
      "getsockname failed");
  return static_cast<int>(ntohs(addr.sin_port));
}

/// Begin a nonblocking connect; completion is signalled by EPOLLOUT
/// (check SO_ERROR then). Invalid Fd on immediate failure.
inline Fd connect_tcp(const std::string& host, int port) {
  sockaddr_in addr{};
  if (!make_addr(host, port, &addr)) return Fd();
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return Fd();
  set_nonblocking(fd.get());
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0 &&
      errno != EINPROGRESS)
    return Fd();
  return fd;
}

/// Pending connect outcome after EPOLLOUT: 0 = connected, else errno.
inline int connect_error(int fd) {
  int soerr = 0;
  socklen_t len = sizeof(soerr);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0)
    return errno;
  return soerr;
}

class Epoll {
 public:
  Epoll() : fd_(::epoll_create1(EPOLL_CLOEXEC)) {
    PRAGMALIST_CHECK(fd_.valid(), "epoll_create1 failed");
  }

  void add(int fd, std::uint32_t events, void* ptr = nullptr) {
    ctl(EPOLL_CTL_ADD, fd, events, ptr);
  }
  void mod(int fd, std::uint32_t events, void* ptr = nullptr) {
    ctl(EPOLL_CTL_MOD, fd, events, ptr);
  }
  void del(int fd) {
    epoll_event ev{};
    PRAGMALIST_CHECK(::epoll_ctl(fd_.get(), EPOLL_CTL_DEL, fd, &ev) == 0,
                     "epoll_ctl(DEL) failed");
  }

  int wait(epoll_event* events, int max_events, int timeout_ms) {
    const int n = ::epoll_wait(fd_.get(), events, max_events, timeout_ms);
    if (n < 0 && errno == EINTR) return 0;
    PRAGMALIST_CHECK(n >= 0, "epoll_wait failed");
    return n;
  }

 private:
  void ctl(int op, int fd, std::uint32_t events, void* ptr) {
    epoll_event ev{};
    ev.events = events;
    if (ptr != nullptr)
      ev.data.ptr = ptr;
    else
      ev.data.fd = fd;
    PRAGMALIST_CHECK(::epoll_ctl(fd_.get(), op, fd, &ev) == 0,
                     "epoll_ctl failed");
  }

  Fd fd_;
};

/// Semaphore-flavoured eventfd used to wake an epoll loop from another
/// thread (new connections handed off, shutdown).
class WakeFd {
 public:
  WakeFd() : fd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {
    PRAGMALIST_CHECK(fd_.valid(), "eventfd failed");
  }

  int get() const { return fd_.get(); }

  void wake() {
    const std::uint64_t one = 1;
    [[maybe_unused]] const auto n = ::write(fd_.get(), &one, sizeof(one));
  }

  void drain() {
    std::uint64_t buf;
    while (::read(fd_.get(), &buf, sizeof(buf)) > 0) {
    }
  }

 private:
  Fd fd_;
};

}  // namespace pragmalist::net
