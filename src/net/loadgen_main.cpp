// loadgen main: drive a pragmalistd with thousands of concurrent
// connections and report CO-aware per-op-class tail latency plus the
// client/server ledger comparison.
//
//   loadgen --connect 127.0.0.1:7111 --conns 1024 --threads 4
//           --duration 10s --rate 50 --schedule waves --churn-ticks 20
//
// Flags:
//   --connect host:port  server address          (127.0.0.1:7111)
//   --conns n            concurrent connections  (64)
//   --threads n          event-loop threads      (2)
//   --duration d         run length (500ms/5s/2m; bare = seconds)
//   --ops n              alternative stop: n completed data ops
//   --mix a,r,c,s        op percentages          (10,10,70,10)
//   --universe n         key universe            (65536)
//   --theta x            zipf skew, <= 0 uniform (0.99)
//   --scan-count n       SCAN page size          (64)
//   --rate n             paced sends/s per conn; 0 = closed loop
//   --schedule s         churn shape (steady ramp burst waves stragglers)
//   --churn-ticks n      reconnect-churn ticks; 0 = no churn
//   --seed s             workload seed           (1)
//   --no-check-ledger    skip the final INFO ledger comparison
//
// Exit: 0 on success, 1 when the server was unreachable, 2 when the
// ledger check ran and MISMATCHed (the CI gate).
#include <cstdio>
#include <iostream>

#include "src/harness/options.hpp"
#include "src/harness/table.hpp"
#include "src/net/loadgen.hpp"

int main(int argc, char** argv) {
  using namespace pragmalist;

  const harness::Options opt = harness::Options::parse(argc, argv);
  net::LoadGenConfig cfg;
  const auto addr =
      opt.get_host_port("connect", {.host = cfg.host, .port = cfg.port});
  cfg.host = addr.host;
  cfg.port = addr.port;
  cfg.connections = opt.get_int("conns", cfg.connections);
  cfg.threads = opt.get_int("threads", cfg.threads);
  cfg.duration_ms = opt.get_duration_ms("duration", 0);
  cfg.total_ops = opt.get_long("ops", 0);
  if (cfg.duration_ms <= 0 && cfg.total_ops <= 0) cfg.duration_ms = 5000;
  const auto mix = opt.get_longs("mix", {10, 10, 70, 10});
  if (mix.size() == 4) {
    cfg.mix.add_pct = static_cast<int>(mix[0]);
    cfg.mix.rem_pct = static_cast<int>(mix[1]);
    cfg.mix.con_pct = static_cast<int>(mix[2]);
    cfg.mix.scan_pct = static_cast<int>(mix[3]);
  } else {
    std::fprintf(stderr, "loadgen: --mix wants add,rem,con,scan; using "
                         "10,10,70,10\n");
  }
  cfg.universe =
      static_cast<std::uint64_t>(opt.get_long("universe", 1 << 16));
  cfg.zipf_theta = opt.get_double("theta", cfg.zipf_theta);
  cfg.scan_count = opt.get_long("scan-count", cfg.scan_count);
  cfg.rate_per_conn = opt.get_long("rate", 0);
  cfg.schedule = service::parse_soak_schedule(
      opt.get_string("schedule", "steady"));
  cfg.churn_ticks = opt.get_int("churn-ticks", 0);
  cfg.seed = static_cast<std::uint64_t>(opt.get_long("seed", 1));
  cfg.check_ledger = !opt.get_bool("no-check-ledger");

  std::printf(
      "loadgen: %s:%d conns=%d threads=%d %s=%ld mix=%d/%d/%d/%d "
      "theta=%.2f rate=%ld schedule=%s churn_ticks=%d\n",
      cfg.host.c_str(), cfg.port, cfg.connections, cfg.threads,
      cfg.duration_ms > 0 ? "duration_ms" : "ops",
      cfg.duration_ms > 0 ? cfg.duration_ms : cfg.total_ops,
      cfg.mix.add_pct, cfg.mix.rem_pct, cfg.mix.con_pct, cfg.mix.scan_pct,
      cfg.zipf_theta, cfg.rate_per_conn,
      std::string(service::soak_schedule_name(cfg.schedule)).c_str(),
      cfg.churn_ticks);
  std::fflush(stdout);

  const net::LoadGenResult res = net::run_loadgen(cfg);
  if (!res.ok) {
    std::fprintf(stderr, "loadgen: %s\n", res.error.c_str());
    return 1;
  }

  const double secs = res.ms / 1000.0;
  const long completed = res.total_completed();
  std::printf(
      "loadgen: sent=%ld completed=%ld errors=%ld kops=%.1f ms=%.0f\n",
      res.total_sent(), completed, res.errors,
      secs > 0 ? static_cast<double>(completed) / secs / 1000.0 : 0.0,
      res.ms);
  std::printf(
      "loadgen: peak_conns=%d reconnects=%ld conn_failures=%ld "
      "abandoned=%ld\n",
      res.peak_conns, res.reconnects, res.conn_failures, res.abandoned);

  // Per-class tail lines; the CI smoke awk-gates completed > 0 and a
  // finite p99 off these.
  for (int c = 0; c < harness::kNumOpClasses; ++c) {
    const auto& h =
        res.profile.of(static_cast<harness::OpClass>(c));
    if (h.count() == 0) continue;
    std::printf(
        "loadgen: class=%s count=%lu p50_us=%.1f p99_us=%.1f "
        "p999_us=%.1f max_us=%.1f\n",
        harness::op_class_name(static_cast<harness::OpClass>(c)),
        static_cast<unsigned long>(h.count()),
        static_cast<double>(h.percentile(0.50)) / 1000.0,
        static_cast<double>(h.percentile(0.99)) / 1000.0,
        static_cast<double>(h.percentile(0.999)) / 1000.0,
        static_cast<double>(h.max()) / 1000.0);
  }
  if (res.profile.total_count() > 0) {
    std::vector<harness::LatencyRow> rows;
    rows.push_back({"loadgen", res.profile,
                    secs > 0 ? static_cast<double>(completed) / secs / 1000.0
                             : 0.0,
                    0, 0});
    harness::print_latency_table(std::cout, "Client-observed latency", rows);
  }

  if (cfg.check_ledger) {
    const bool match = res.ledger_match;
    std::printf("loadgen: server_total_ops=%ld client_completed=%ld "
                "ledger=%s\n",
                res.server_total_ops, completed,
                match ? "MATCH" : "MISMATCH");
    std::fflush(stdout);
    if (!match) return 2;
  }
  std::fflush(stdout);
  return 0;
}
