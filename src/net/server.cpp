#include "src/net/server.hpp"

#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <deque>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "src/common/debug.hpp"
#include "src/harness/catalog.hpp"
#include "src/net/socket.hpp"

namespace pragmalist::net {

namespace {

using Clock = std::chrono::steady_clock;

std::string upper(std::string_view s) {
  std::string u(s);
  for (char& c : u)
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return u;
}

/// True when the frame's command is one of the four set ops (the ones
/// a FaultPlan ordinal counts).
bool is_data_op(const std::vector<std::string>& args) {
  if (args.empty()) return false;
  const std::string cmd = upper(args[0]);
  return cmd == "GET" || cmd == "SET" || cmd == "DEL" || cmd == "SCAN";
}

}  // namespace

DispatchOutcome dispatch_request(const std::vector<std::string>& args,
                                 core::ISetHandle& handle, std::string& out,
                                 const std::function<std::string()>& info) {
  DispatchOutcome res;
  auto err = [&](std::string_view msg) {
    protocol::encode_error(out, msg);
    res.error = true;
    return res;
  };
  if (args.empty()) return err("ERR empty frame");
  const std::string cmd = upper(args[0]);

  if (cmd == "PING") {
    if (args.size() != 1) return err("ERR wrong arity for PING");
    protocol::encode_simple(out, "PONG");
    return res;
  }
  if (cmd == "INFO") {
    if (args.size() != 1) return err("ERR wrong arity for INFO");
    protocol::encode_bulk(out, info ? info() : std::string());
    return res;
  }
  if (cmd == "GET" || cmd == "SET" || cmd == "DEL") {
    if (args.size() != 2) return err("ERR wrong arity for " + cmd);
    long key = 0;
    if (!protocol::parse_key(args[1], &key))
      return err("ERR key is not an integer");
    bool ok;
    if (cmd == "SET") {
      ok = handle.add(key);
      res.cls = harness::OpClass::kAdd;
    } else if (cmd == "DEL") {
      ok = handle.remove(key);
      res.cls = harness::OpClass::kRemove;
    } else {
      ok = handle.contains(key);
      res.cls = harness::OpClass::kContains;
    }
    res.data_op = true;
    protocol::encode_integer(out, ok ? 1 : 0);
    return res;
  }
  if (cmd == "SCAN") {
    if (args.size() != 3) return err("ERR wrong arity for SCAN");
    long from = 0, count = 0;
    if (!protocol::parse_key(args[1], &from) ||
        !protocol::parse_key(args[2], &count) || count < 0)
      return err("ERR SCAN takes integer <from> <count>");
    count = std::min(count, protocol::kMaxScanCount);
    const std::vector<long> keys =
        handle.ascend(from, static_cast<std::size_t>(count));
    res.data_op = true;
    res.cls = harness::OpClass::kScan;
    protocol::encode_int_array(out, keys);
    return res;
  }
  return err("ERR unknown command '" + cmd + "'");
}

// --- worker ----------------------------------------------------------

struct Server::Worker {
  explicit Worker(Server* s, int idx) : server(s), index(idx) {}

  Server* server;
  int index;
  std::thread thread;
  Epoll ep;
  WakeFd wake;

  std::mutex mu;
  std::vector<int> incoming;  // accepted fds awaiting adoption

  // Run-wide relaxed counters the INFO handler reads cross-thread.
  std::atomic<long> dispatched[harness::kNumOpClasses] = {};
  std::atomic<long> frames{0};
  std::atomic<long> closed{0};
  std::atomic<long> proto_errors{0};
  std::atomic<long> active{0};

  // Written by the worker thread only; read after join.
  core::OpCounters folded;
  harness::LatencyProfile profile;
  bool fault_fired_ = false;  // each plan entry fires at most once

  struct Conn {
    explicit Conn(std::size_t max_frame) : parser(max_frame) {}
    protocol::FrameParser parser;
    std::string out;
    std::size_t out_off = 0;
    bool want_write = false;
  };
  std::unordered_map<int, Conn> conns;

  void run();
  void adopt_incoming();
  void handle_io(int fd, std::uint32_t events,
                 std::unique_ptr<core::ISetHandle>& handle);
  bool handle_frame(Conn& conn, const std::vector<std::string>& args,
                    std::unique_ptr<core::ISetHandle>& handle);
  /// Write as much buffered output as the socket takes; false when the
  /// connection died under us.
  bool flush(int fd, Conn& conn);
  void close_conn(int fd);
};

void Server::Worker::run() {
  // The one lease of this worker's lifetime (per sharded domain: one
  // reclaim handle borrowed by every shard cursor). Re-leased only
  // across an injected crash.
  auto handle = server->set_->make_handle();
  ep.add(wake.get(), EPOLLIN);

  epoll_event evs[64];
  bool running = true;
  while (running) {
    const int n = ep.wait(evs, 64, -1);
    for (int i = 0; i < n; ++i) {
      if (evs[i].data.fd == wake.get()) {
        wake.drain();
        adopt_incoming();
        if (!server->running_.load(std::memory_order_acquire))
          running = false;
        continue;
      }
      handle_io(evs[i].data.fd, evs[i].events, handle);
    }
  }

  // Shutdown: drop every connection, then depart the lease cleanly
  // (the PR 3 re-lease protocol: limbo handed off, cells cleared).
  std::vector<int> fds;
  fds.reserve(conns.size());
  for (const auto& [fd, conn] : conns) fds.push_back(fd);
  for (const int fd : fds) close_conn(fd);
  folded += handle->counters();
  handle.reset();
}

void Server::Worker::adopt_incoming() {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(mu);
    fds.swap(incoming);
  }
  for (const int fd : fds) {
    conns.emplace(fd, Conn(server->cfg_.max_frame));
    active.fetch_add(1, std::memory_order_relaxed);
    ep.add(fd, EPOLLIN);
  }
}

void Server::Worker::handle_io(int fd, std::uint32_t events,
                               std::unique_ptr<core::ISetHandle>& handle) {
  const auto it = conns.find(fd);
  if (it == conns.end()) return;  // already closed this wait batch
  Conn& conn = it->second;

  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    close_conn(fd);
    return;
  }

  if ((events & EPOLLIN) != 0) {
    char buf[4096];
    for (;;) {
      const ssize_t r = ::read(fd, buf, sizeof(buf));
      if (r > 0) {
        conn.parser.feed(buf, static_cast<std::size_t>(r));
        if (r < static_cast<ssize_t>(sizeof(buf))) break;
      } else if (r == 0) {
        // Abrupt client disconnect: drop the connection state (a
        // half-buffered frame simply evaporates). The worker's lease
        // is untouched -- it belongs to the worker, not the client.
        close_conn(fd);
        return;
      } else {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(fd);
        return;
      }
    }

    std::vector<std::string> args;
    for (;;) {
      const protocol::ParseStatus st = conn.parser.next(&args);
      if (st == protocol::ParseStatus::kFrame) {
        if (!handle_frame(conn, args, handle)) break;
        continue;
      }
      if (st == protocol::ParseStatus::kError) {
        // A malformed stream cannot be resynchronized: report, flush
        // best effort, close.
        proto_errors.fetch_add(1, std::memory_order_relaxed);
        protocol::encode_error(conn.out,
                               "ERR protocol: " + conn.parser.error());
        flush(fd, conn);
        close_conn(fd);
        return;
      }
      break;  // kNeedMore
    }
  }

  flush(fd, conn);
}

bool Server::Worker::handle_frame(Conn& conn,
                                  const std::vector<std::string>& args,
                                  std::unique_ptr<core::ISetHandle>& handle) {
  frames.fetch_add(1, std::memory_order_relaxed);

  const long data_ops_so_far =
      dispatched[0].load(std::memory_order_relaxed) +
      dispatched[1].load(std::memory_order_relaxed) +
      dispatched[2].load(std::memory_order_relaxed) +
      dispatched[3].load(std::memory_order_relaxed);
  const faults::FaultSpec* fault = server->cfg_.faults.find(index);
  if (fault != nullptr && !fault_fired_ && is_data_op(args) &&
      data_ops_so_far >= fault->op_ordinal) {
    // The request handler "crashes" mid-request: the lease is
    // abandoned with the op's key (the op-level kinds perform their
    // deliberately botched remove of it), the client gets an error,
    // and the worker re-leases immediately -- the supervisor reaps the
    // crashed lease after the detection delay.
    long key = 0;
    if (args.size() >= 2) protocol::parse_key(args[1], &key);
    handle->abandon(fault->kind, key);
    fault_fired_ = true;
    server->record_fault();
    protocol::encode_error(
        conn.out, std::string("ERR crashed (injected ") +
                      std::string(faults::fault_kind_name(fault->kind)) +
                      ")");
    folded += handle->counters();
    handle.reset();                       // destroy the crashed shell
    handle = server->set_->make_handle();  // re-lease
    return true;
  }

  const std::uint64_t t0 =
      server->cfg_.record_latency ? harness::lat_now_ns() : 0;
  const DispatchOutcome out = dispatch_request(
      args, *handle, conn.out, [this] { return server->info(); });
  if (out.data_op) {
    dispatched[static_cast<int>(out.cls)].fetch_add(
        1, std::memory_order_relaxed);
    if (server->cfg_.record_latency)
      profile.of(out.cls).record(harness::lat_now_ns() - t0);
  }
  return true;
}

bool Server::Worker::flush(int fd, Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    const ssize_t n = ::write(fd, conn.out.data() + conn.out_off,
                              conn.out.size() - conn.out_off);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn.want_write) {
        conn.want_write = true;
        ep.mod(fd, EPOLLIN | EPOLLOUT);
      }
      return true;
    } else {
      close_conn(fd);
      return false;
    }
  }
  conn.out.clear();
  conn.out_off = 0;
  if (conn.want_write) {
    conn.want_write = false;
    ep.mod(fd, EPOLLIN);
  }
  return true;
}

void Server::Worker::close_conn(int fd) {
  if (conns.erase(fd) == 0) return;
  ep.del(fd);
  ::close(fd);
  active.fetch_sub(1, std::memory_order_relaxed);
  closed.fetch_add(1, std::memory_order_relaxed);
}

// --- acceptor / supervisor -------------------------------------------

struct Server::AcceptorState {
  Fd listen;
  WakeFd wake;
  std::mutex mu;
  std::deque<Clock::time_point> reap_at;  // fault deadlines, FIFO
};

void Server::record_fault() {
  faults_fired_.fetch_add(1, std::memory_order_relaxed);
  const auto deadline =
      Clock::now() + std::chrono::milliseconds(cfg_.reap_delay_ms);
  std::lock_guard<std::mutex> lock(acc_->mu);
  acc_->reap_at.push_back(deadline);
}

void Server::acceptor_loop() {
  Epoll ep;
  ep.add(acc_->listen.get(), EPOLLIN);
  ep.add(acc_->wake.get(), EPOLLIN);
  std::size_t next_worker = 0;
  epoll_event evs[16];
  while (running_.load(std::memory_order_acquire)) {
    // Short timeout: the acceptor doubles as the crash supervisor and
    // must notice reap deadlines without a dedicated timer fd.
    const int n = ep.wait(evs, 16, 20);
    for (int i = 0; i < n; ++i) {
      if (evs[i].data.fd == acc_->wake.get()) {
        acc_->wake.drain();
        continue;
      }
      for (;;) {
        const int fd = ::accept4(acc_->listen.get(), nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) break;
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        accepted_.fetch_add(1, std::memory_order_relaxed);
        Worker& w = *workers_[next_worker];
        next_worker = (next_worker + 1) % workers_.size();
        {
          std::lock_guard<std::mutex> lock(w.mu);
          w.incoming.push_back(fd);
        }
        w.wake.wake();
      }
    }
    // Supervisor pass: one reap_crashed() covers every due fault (it
    // releases all crashed leases), so drain all expired deadlines.
    bool due = false;
    {
      std::lock_guard<std::mutex> lock(acc_->mu);
      const auto now = Clock::now();
      while (!acc_->reap_at.empty() && acc_->reap_at.front() <= now) {
        acc_->reap_at.pop_front();
        due = true;
      }
    }
    if (due)
      reaps_.fetch_add(static_cast<int>(set_->reap_crashed()),
                       std::memory_order_relaxed);
  }
}

// --- server ----------------------------------------------------------

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)) {
  PRAGMALIST_CHECK(cfg_.workers >= 1, "server needs at least one worker");
  set_ = harness::make_set(cfg_.set_id);
  acc_ = std::make_unique<AcceptorState>();
}

Server::~Server() { stop(); }

bool Server::start(std::string* err) {
  PRAGMALIST_CHECK(!started_, "server already started");
  std::string why;
  acc_->listen = listen_tcp(cfg_.host, cfg_.port, &why);
  if (!acc_->listen.valid()) {
    if (err != nullptr) *err = why;
    return false;
  }
  port_ = bound_port(acc_->listen.get());
  listen_fd_ = acc_->listen.get();
  running_.store(true, std::memory_order_release);
  started_ = true;
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(this, i));
    Worker& w = *workers_.back();
    w.thread = std::thread([&w] { w.run(); });
  }
  acceptor_ = std::thread([this] { acceptor_loop(); });
  return true;
}

void Server::stop() {
  if (!started_ || stopped_) return;
  running_.store(false, std::memory_order_release);
  acc_->wake.wake();
  acceptor_.join();
  for (auto& w : workers_) {
    w->wake.wake();
    w->thread.join();
  }
  // Whatever crashed inside the last detection window is reaped now;
  // after this the only leases ever held were cleanly departed.
  reaps_.fetch_add(static_cast<int>(set_->reap_crashed()),
                   std::memory_order_relaxed);
  for (const auto& w : workers_) {
    ledger_ += w->folded;
    latency_ += w->profile;
  }
  stopped_ = true;
}

std::string Server::info() const {
  long calls[harness::kNumOpClasses] = {};
  long frames = 0, active = 0, closed = 0, proto_errors = 0;
  for (const auto& w : workers_) {
    for (int c = 0; c < harness::kNumOpClasses; ++c)
      calls[c] += w->dispatched[c].load(std::memory_order_relaxed);
    frames += w->frames.load(std::memory_order_relaxed);
    active += w->active.load(std::memory_order_relaxed);
    closed += w->closed.load(std::memory_order_relaxed);
    proto_errors += w->proto_errors.load(std::memory_order_relaxed);
  }
  const faults::BlastStats blast = set_->blast_stats();
  std::ostringstream os;
  os << "set:" << cfg_.set_id << "\n"
     << "workers:" << cfg_.workers << "\n"
     << "accepted:" << accepted_.load(std::memory_order_relaxed) << "\n"
     << "active_conns:" << active << "\n"
     << "closed_conns:" << closed << "\n"
     << "frames:" << frames << "\n"
     << "protocol_errors:" << proto_errors << "\n"
     << "add_calls:" << calls[static_cast<int>(harness::OpClass::kAdd)]
     << "\n"
     << "rem_calls:" << calls[static_cast<int>(harness::OpClass::kRemove)]
     << "\n"
     << "con_calls:" << calls[static_cast<int>(harness::OpClass::kContains)]
     << "\n"
     << "scan_calls:" << calls[static_cast<int>(harness::OpClass::kScan)]
     << "\n"
     << "total_ops:" << calls[0] + calls[1] + calls[2] + calls[3] << "\n"
     << "faults:" << faults_fired_.load(std::memory_order_relaxed) << "\n"
     << "reaps:" << reaps_.load(std::memory_order_relaxed) << "\n"
     << "limbo:" << set_->limbo_nodes() << "\n"
     << "crashed_slots:" << blast.crashed_slots << "\n"
     << "leaked_cells:" << blast.leaked_cells << "\n"
     << "parked_limbo:" << blast.parked_limbo << "\n";
  return os.str();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  for (const auto& w : workers_) {
    s.closed += w->closed.load(std::memory_order_relaxed);
    s.frames += w->frames.load(std::memory_order_relaxed);
    s.protocol_errors += w->proto_errors.load(std::memory_order_relaxed);
  }
  s.faults_fired = faults_fired_.load(std::memory_order_relaxed);
  s.reaps = reaps_.load(std::memory_order_relaxed);
  return s;
}

core::OpCounters Server::ledger() const {
  PRAGMALIST_CHECK(stopped_, "ledger() is quiescent-only: stop() first");
  return ledger_;
}

const harness::LatencyProfile& Server::latency() const {
  PRAGMALIST_CHECK(stopped_, "latency() is quiescent-only: stop() first");
  return latency_;
}

}  // namespace pragmalist::net
