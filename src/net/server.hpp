// pragmalistd: the networked service front-end over any catalog set.
//
// Topology: one acceptor thread (nonblocking listen socket; doubles as
// the crash supervisor) plus N event-loop workers, each with its own
// epoll instance. Accepted connections are handed to workers round
// robin and stay pinned to their worker for life, so every request on
// a connection executes on one thread.
//
// The load-bearing invariant (PR 4, now end-to-end): each worker
// leases exactly ONE ISetHandle for its whole lifetime -- under a
// sharded catalog id that is one reclaim handle (one EBR epoch slot /
// one HP hazard-cell row) borrowed by all shard cursors -- and serves
// every connection assigned to it through that lease. Reclamation
// state is O(workers), never O(connections): ten thousand clients cost
// the reclaimers exactly what N workers cost.
//
// Lifecycles:
//   client disconnect -- frees the connection's parser/buffers only;
//     the worker's lease is untouched (it belongs to the worker, not
//     the connection).
//   worker shutdown   -- destroys the handle, i.e. the clean departure
//     of the PR 3 re-lease protocol: EBR limbo handed to survivors, HP
//     cells cleared before the slot release.
//   injected crash    -- a FaultPlan entry (worker -> op ordinal ->
//     FaultKind, the PR 7 taxonomy) fires inside a request handler:
//     the worker abandon()s its lease mid-request, answers that
//     request with -ERR crashed, then immediately re-leases a fresh
//     handle and keeps serving. The acceptor/supervisor reaps the
//     crashed lease (ISet::reap_crashed) after a configurable
//     detection delay -- the full crash -> blast -> reap -> re-lease
//     cycle, measurable over the wire via INFO's blast counters.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/iset.hpp"
#include "src/faults/faults.hpp"
#include "src/harness/latency.hpp"
#include "src/net/protocol.hpp"

namespace pragmalist::net {

/// Execute one parsed request frame against a handle, appending the
/// encoded reply to `out`. `info` supplies the INFO body (empty bulk
/// when absent, as in the dispatch unit tests). Unknown commands, bad
/// arity and non-integer keys get -ERR replies and touch nothing.
struct DispatchOutcome {
  bool data_op = false;  // a GET/SET/DEL/SCAN ran against the handle
  harness::OpClass cls = harness::OpClass::kContains;
  bool error = false;    // an -ERR reply was written instead
};
DispatchOutcome dispatch_request(
    const std::vector<std::string>& args, core::ISetHandle& handle,
    std::string& out, const std::function<std::string()>& info = nullptr);

struct ServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; Server::port() reports the binding
  std::string set_id = "singly/ebr/sh8";
  int workers = 4;
  // Injected request-handler crashes: worker index -> (data-op
  // ordinal, kind). Empty = no faults.
  faults::FaultPlan faults;
  // Supervisor detection delay: a crashed lease is reaped this long
  // after its fault fired (and unconditionally at shutdown).
  int reap_delay_ms = 50;
  std::size_t max_frame = protocol::kMaxFrame;
  // Record per-op-class service time (dispatch start -> reply encoded)
  // into per-worker histograms, merged into latency() at stop().
  bool record_latency = true;
};

/// Run-wide counters, safe to sample while serving (relaxed atomics
/// folded into plain values).
struct ServerStats {
  long accepted = 0;
  long closed = 0;
  long frames = 0;          // complete request frames dispatched
  long protocol_errors = 0; // malformed streams (connection closed)
  int faults_fired = 0;
  int reaps = 0;            // crashed leases reaped by the supervisor
};

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and spawn the acceptor + workers. Aborts on an
  /// unusable host; returns false (with *err) when the port cannot be
  /// bound -- the one failure a caller plausibly retries.
  bool start(std::string* err = nullptr);

  /// The bound port (after start()).
  int port() const { return port_; }

  /// Graceful shutdown: stop accepting, close every connection, join
  /// every worker (clean lease departures), reap any crashed leases.
  /// Idempotent.
  void stop();

  /// The INFO body ("key:value" lines). Valid while serving.
  std::string info() const;

  ServerStats stats() const;

  /// Aggregated handle OpCounters over every lease the server ever
  /// held (departed, crashed and live-folded at stop()). Quiescent:
  /// call after stop().
  core::OpCounters ledger() const;

  /// Per-op-class service-time histograms, merged over workers.
  /// Quiescent: call after stop().
  const harness::LatencyProfile& latency() const;

  /// The served structure (validate()/limbo_nodes()/blast_stats()).
  core::ISet& set() { return *set_; }
  const ServerConfig& config() const { return cfg_; }

 private:
  struct Worker;

  void acceptor_loop();
  /// Called by a worker when its FaultPlan entry fires: bumps the
  /// fault counter and schedules a supervisor reap deadline.
  void record_fault();

  ServerConfig cfg_;
  std::unique_ptr<core::ISet> set_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  bool started_ = false;
  bool stopped_ = false;
  int port_ = 0;
  int listen_fd_ = -1;  // owned by acceptor state in server.cpp

  // Filled at stop().
  core::OpCounters ledger_;
  harness::LatencyProfile latency_;

  // Supervisor state (acceptor thread): fault timestamps awaiting
  // their reap deadline.
  std::atomic<int> faults_fired_{0};
  std::atomic<int> reaps_{0};
  std::atomic<long> accepted_{0};

  struct AcceptorState;
  std::unique_ptr<AcceptorState> acc_;
};

}  // namespace pragmalist::net
