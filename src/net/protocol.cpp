#include "src/net/protocol.hpp"

#include <cerrno>
#include <cstdlib>

namespace pragmalist::net::protocol {

bool parse_key(std::string_view s, long* out) {
  if (s.empty() || s.size() > 24) return false;
  // strtol skips leading whitespace; " 1" must stay a command error.
  if (s[0] != '-' && (s[0] < '0' || s[0] > '9')) return false;
  char tmp[32];
  s.copy(tmp, s.size());
  tmp[s.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(tmp, &end, 10);
  if (end != tmp + s.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

void encode_request(std::string& out, const std::vector<std::string>& args) {
  out += '*';
  out += std::to_string(args.size());
  out += "\r\n";
  for (const auto& a : args) {
    out += '$';
    out += std::to_string(a.size());
    out += "\r\n";
    out += a;
    out += "\r\n";
  }
}

void encode_simple(std::string& out, std::string_view text) {
  out += '+';
  out += text;
  out += "\r\n";
}

void encode_error(std::string& out, std::string_view message) {
  out += '-';
  out += message;
  out += "\r\n";
}

void encode_integer(std::string& out, long value) {
  out += ':';
  out += std::to_string(value);
  out += "\r\n";
}

void encode_bulk(std::string& out, std::string_view bytes) {
  out += '$';
  out += std::to_string(bytes.size());
  out += "\r\n";
  out += bytes;
  out += "\r\n";
}

void encode_int_array(std::string& out, const std::vector<long>& values) {
  out += '*';
  out += std::to_string(values.size());
  out += "\r\n";
  for (const long v : values) encode_integer(out, v);
}

namespace {

/// Parse the decimal count/length after a type byte, terminated by
/// CRLF. Returns kNeedMore when the CRLF has not arrived (only
/// plausible while the digit run stays short -- a CRLF-less digit
/// flood is malformed, not pending), kError on junk, kFrame on
/// success with *value and *after (index past the CRLF) set.
ParseStatus parse_count(const std::string& buf, std::size_t at,
                        std::size_t end, long max, long* value,
                        std::size_t* after, std::string* err) {
  std::size_t i = at;
  bool neg = false;
  if (i < end && buf[i] == '-') {
    neg = true;
    ++i;
  }
  long v = 0;
  std::size_t digits = 0;
  while (i < end && buf[i] >= '0' && buf[i] <= '9') {
    v = v * 10 + (buf[i] - '0');
    ++i;
    if (++digits > 10) {
      *err = "length field too long";
      return ParseStatus::kError;
    }
  }
  if (i >= end) return ParseStatus::kNeedMore;
  if (digits == 0 || buf[i] != '\r') {
    *err = "malformed length field";
    return ParseStatus::kError;
  }
  if (i + 1 >= end) return ParseStatus::kNeedMore;
  if (buf[i + 1] != '\n') {
    *err = "malformed length field";
    return ParseStatus::kError;
  }
  if (neg) v = -v;
  if (v < 0 || v > max) {
    *err = "length out of range";
    return ParseStatus::kError;
  }
  *value = v;
  *after = i + 2;
  return ParseStatus::kFrame;
}

}  // namespace

ParseStatus FrameParser::next(std::vector<std::string>* args) {
  if (failed_) return ParseStatus::kError;
  const std::size_t end = buf_.size();
  std::size_t at = pos_;
  if (at >= end) return ParseStatus::kNeedMore;

  if (buf_[at] != '*') return fail("expected '*' (array header)");
  long argc = 0;
  std::size_t after = 0;
  std::string why;
  switch (parse_count(buf_, at + 1, end, static_cast<long>(kMaxArgs), &argc,
                      &after, &why)) {
    case ParseStatus::kNeedMore:
      if (buffered() > max_frame_) return fail("frame too large");
      return ParseStatus::kNeedMore;
    case ParseStatus::kError:
      return fail(why);
    case ParseStatus::kFrame:
      break;
  }
  if (argc < 1) return fail("empty frame");

  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(argc));
  at = after;
  for (long i = 0; i < argc; ++i) {
    if (at >= end) {
      if (buffered() > max_frame_) return fail("frame too large");
      return ParseStatus::kNeedMore;
    }
    if (buf_[at] != '$') return fail("expected '$' (bulk header)");
    long len = 0;
    switch (parse_count(buf_, at + 1, end, static_cast<long>(kMaxBulk), &len,
                        &after, &why)) {
      case ParseStatus::kNeedMore:
        if (buffered() > max_frame_) return fail("frame too large");
        return ParseStatus::kNeedMore;
      case ParseStatus::kError:
        return fail(why);
      case ParseStatus::kFrame:
        break;
    }
    const auto n = static_cast<std::size_t>(len);
    if (after + n + 2 > end) {
      if (buffered() > max_frame_) return fail("frame too large");
      return ParseStatus::kNeedMore;
    }
    if (buf_[after + n] != '\r' || buf_[after + n + 1] != '\n')
      return fail("bulk payload not CRLF-terminated");
    out.emplace_back(buf_, after, n);
    at = after + n + 2;
  }

  pos_ = at;
  // Reclaim the consumed prefix once it dominates the buffer, so a
  // long-lived pipelined connection cannot grow it without bound.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  *args = std::move(out);
  return ParseStatus::kFrame;
}

ParseStatus ReplyParser::next(Reply* reply) {
  if (failed_) return ParseStatus::kError;
  std::size_t at = pos_;
  const std::size_t end = buf_.size();
  if (at >= end) return ParseStatus::kNeedMore;

  Reply r;
  std::string why;

  // CRLF-terminated line starting after the type byte; shared by the
  // +, - and : forms.
  auto take_line = [&](std::size_t from, std::string* line,
                       std::size_t* after) {
    const std::size_t nl = buf_.find("\r\n", from);
    if (nl == std::string::npos) {
      if (buffered() > max_frame_) return ParseStatus::kError;
      return ParseStatus::kNeedMore;
    }
    line->assign(buf_, from, nl - from);
    *after = nl + 2;
    return ParseStatus::kFrame;
  };

  std::size_t after = 0;
  switch (buf_[at]) {
    case '+':
    case '-': {
      std::string line;
      switch (take_line(at + 1, &line, &after)) {
        case ParseStatus::kNeedMore:
          return ParseStatus::kNeedMore;
        case ParseStatus::kError:
          return fail("reply line too long");
        case ParseStatus::kFrame:
          break;
      }
      r.type = buf_[at] == '+' ? Reply::Type::kSimple : Reply::Type::kError;
      r.text = std::move(line);
      break;
    }
    case ':': {
      std::string line;
      switch (take_line(at + 1, &line, &after)) {
        case ParseStatus::kNeedMore:
          return ParseStatus::kNeedMore;
        case ParseStatus::kError:
          return fail("reply line too long");
        case ParseStatus::kFrame:
          break;
      }
      long v = 0;
      if (!parse_key(line, &v)) return fail("malformed integer reply");
      r.type = Reply::Type::kInteger;
      r.integer = v;
      break;
    }
    case '$': {
      long len = 0;
      switch (parse_count(buf_, at + 1, end, static_cast<long>(max_frame_),
                          &len, &after, &why)) {
        case ParseStatus::kNeedMore:
          if (buffered() > max_frame_) return fail("frame too large");
          return ParseStatus::kNeedMore;
        case ParseStatus::kError:
          return fail(why);
        case ParseStatus::kFrame:
          break;
      }
      const auto n = static_cast<std::size_t>(len);
      if (after + n + 2 > end) {
        if (buffered() > max_frame_) return fail("frame too large");
        return ParseStatus::kNeedMore;
      }
      if (buf_[after + n] != '\r' || buf_[after + n + 1] != '\n')
        return fail("bulk payload not CRLF-terminated");
      r.type = Reply::Type::kBulk;
      r.text.assign(buf_, after, n);
      after += n + 2;
      break;
    }
    case '*': {
      long count = 0;
      switch (parse_count(buf_, at + 1, end, kMaxScanCount, &count, &after,
                          &why)) {
        case ParseStatus::kNeedMore:
          if (buffered() > max_frame_) return fail("frame too large");
          return ParseStatus::kNeedMore;
        case ParseStatus::kError:
          return fail(why);
        case ParseStatus::kFrame:
          break;
      }
      r.type = Reply::Type::kIntArray;
      r.ints.reserve(static_cast<std::size_t>(count));
      std::size_t cursor = after;
      for (long i = 0; i < count; ++i) {
        if (cursor >= end || buf_[cursor] != ':') {
          if (cursor >= end) {
            if (buffered() > max_frame_) return fail("frame too large");
            return ParseStatus::kNeedMore;
          }
          return fail("array element is not an integer");
        }
        std::string line;
        switch (take_line(cursor + 1, &line, &cursor)) {
          case ParseStatus::kNeedMore:
            return ParseStatus::kNeedMore;
          case ParseStatus::kError:
            return fail("reply line too long");
          case ParseStatus::kFrame:
            break;
        }
        long v = 0;
        if (!parse_key(line, &v)) return fail("malformed array integer");
        r.ints.push_back(v);
      }
      after = cursor;
      break;
    }
    default:
      return fail("unknown reply type byte");
  }

  pos_ = after;
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  *reply = std::move(r);
  return ParseStatus::kFrame;
}

}  // namespace pragmalist::net::protocol
