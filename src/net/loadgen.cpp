#include "src/net/loadgen.hpp"

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "src/net/protocol.hpp"
#include "src/net/socket.hpp"
#include "src/workload/distributions.hpp"
#include "src/workload/rng.hpp"

namespace pragmalist::net {

namespace {

using workload::OpKind;
using OpClass = harness::OpClass;

/// Steady-clock nanoseconds. Deliberately NOT lat_now_ns(): that one
/// compiles to 0 under -DPRAGMALIST_LATENCY=OFF, and the engine's
/// control flow (duration stop, pacing, churn ticks, drain deadline)
/// must keep working in that configuration. Histogram record() is the
/// only thing allowed to become a no-op.
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

OpClass class_of(OpKind k) {
  switch (k) {
    case OpKind::kAdd: return OpClass::kAdd;
    case OpKind::kRemove: return OpClass::kRemove;
    case OpKind::kContains: return OpClass::kContains;
    case OpKind::kScan: return OpClass::kScan;
  }
  return OpClass::kContains;
}

struct Slot {
  enum class State { kClosed, kConnecting, kActive };

  Fd fd;
  State state = State::kClosed;
  protocol::ReplyParser parser;
  std::string out;
  std::size_t out_off = 0;
  bool want_write = false;

  bool in_flight = false;
  OpClass cls = OpClass::kContains;
  std::uint64_t intended_ns = 0;  // paced schedule slot of the op
  std::uint64_t sent_ns = 0;      // actual send time (closed loop)

  bool draining = false;     // churn surplus: finish in-flight, close
  bool ever_opened = false;  // a later open is a reconnect
  long ops_done = 0;         // ops begun on THIS connection (pacing)
  std::uint64_t t0_ns = 0;   // when this connection became active

  workload::Rng rng{1};
};

/// Shared run state across the event-loop threads.
struct Shared {
  const LoadGenConfig* cfg;
  std::atomic<long> completed_data{0};  // acknowledged data ops (all threads)
  std::atomic<bool> stop{false};
  std::uint64_t t_start_ns = 0;
  std::uint64_t t_deadline_ns = 0;  // 0 = no duration stop
};

/// One event-loop thread owning `n_slots` connection slots.
class Engine {
 public:
  Engine(Shared* shared, int index, int n_slots)
      : sh_(shared),
        cfg_(*shared->cfg),
        zipf_(cfg_.universe, cfg_.zipf_theta > 0 ? cfg_.zipf_theta : 0.0),
        uniform_(cfg_.universe) {
    slots_.resize(static_cast<std::size_t>(n_slots));
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      // Slot identity (thread index, slot index) keys the RNG stream,
      // so reconnects continue the slot's schedule deterministically.
      slots_[i].rng = workload::Rng(workload::thread_seed(
          cfg_.seed, index * 100000 + static_cast<int>(i)));
    }
    period_ns_ = cfg_.rate_per_conn > 0
                     ? 1'000'000'000ULL /
                           static_cast<std::uint64_t>(cfg_.rate_per_conn)
                     : 0;
  }

  void run() {
    epoll_event evs[256];
    bool draining_run = false;
    std::uint64_t drain_deadline = 0;

    for (;;) {
      const std::uint64_t now = now_ns();
      const bool stop_hit =
          sh_->stop.load(std::memory_order_relaxed) ||
          (sh_->t_deadline_ns != 0 && now >= sh_->t_deadline_ns) ||
          (cfg_.total_ops > 0 &&
           sh_->completed_data.load(std::memory_order_relaxed) >=
               cfg_.total_ops);
      if (stop_hit && !draining_run) {
        sh_->stop.store(true, std::memory_order_relaxed);
        draining_run = true;
        drain_deadline = now + 3'000'000'000ULL;  // 3 s to retire in-flight
      }

      if (draining_run) {
        bool any = false;
        for (auto& s : slots_) {
          if (s.state == Slot::State::kClosed) continue;
          if (!s.in_flight || s.state == Slot::State::kConnecting) {
            close_slot(s, /*lost_in_flight=*/false);
            continue;
          }
          any = true;
        }
        if (!any) break;
        if (now >= drain_deadline) {
          for (auto& s : slots_) {
            if (s.state == Slot::State::kClosed) continue;
            if (s.in_flight) ++abandoned_;
            close_slot(s, /*lost_in_flight=*/false);
          }
          break;
        }
      } else {
        adjust_connections(now);
        for (auto& s : slots_) {
          if (s.state == Slot::State::kActive && !s.in_flight &&
              !s.draining)
            maybe_send(s, now);
        }
      }

      const int n = ep_.wait(evs, 256, 1);
      for (int i = 0; i < n; ++i) {
        auto* slot = static_cast<Slot*>(evs[i].data.ptr);
        handle_event(*slot, evs[i].events);
      }
    }
  }

  // Folded into the result after join.
  long sent_[harness::kNumOpClasses] = {};
  long completed_[harness::kNumOpClasses] = {};
  long errors_ = 0;
  long conn_failures_ = 0;
  long reconnects_ = 0;
  long abandoned_ = 0;
  int peak_conns_ = 0;
  bool ever_connected_ = false;
  harness::LatencyProfile profile_;

 private:
  /// Per-thread target connection count right now.
  int target_conns(std::uint64_t now) const {
    const int p = static_cast<int>(slots_.size());
    if (cfg_.churn_ticks <= 0 || p <= 0) return p;
    const auto elapsed_ms =
        static_cast<long>((now - sh_->t_start_ns) / 1'000'000ULL);
    long tick;
    if (sh_->t_deadline_ns != 0) {
      // Duration mode: spread the schedule across the whole window.
      const auto window_ms = static_cast<long>(
          (sh_->t_deadline_ns - sh_->t_start_ns) / 1'000'000ULL);
      const long tick_ms =
          window_ms > cfg_.churn_ticks ? window_ms / cfg_.churn_ticks : 1;
      tick = elapsed_ms / tick_ms;
      if (tick >= cfg_.churn_ticks) tick = cfg_.churn_ticks - 1;
    } else {
      // Ops mode has no known end time: cycle 100 ms ticks.
      tick = (elapsed_ms / 100) % cfg_.churn_ticks;
    }
    return service::thread_target(cfg_.schedule, static_cast<int>(tick),
                                  cfg_.churn_ticks, p);
  }

  void adjust_connections(std::uint64_t now) {
    const int target = target_conns(now);
    int open = 0;
    for (const auto& s : slots_)
      if (s.state != Slot::State::kClosed && !s.draining) ++open;

    if (open > target) {
      int excess = open - target;
      for (auto& s : slots_) {
        if (excess == 0) break;
        if (s.state == Slot::State::kClosed || s.draining) continue;
        s.draining = true;
        --excess;
        if (!s.in_flight) close_slot(s, /*lost_in_flight=*/false);
      }
    } else if (open < target && now >= next_open_attempt_) {
      int deficit = target - open;
      for (auto& s : slots_) {
        if (deficit == 0) break;
        if (s.state != Slot::State::kClosed) continue;
        if (!open_slot(s)) {
          // Connect refused outright: back off so a dead server does
          // not turn this loop into a SYN flood.
          next_open_attempt_ = now + 50'000'000ULL;
          break;
        }
        --deficit;
      }
    }
  }

  bool open_slot(Slot& s) {
    s.fd = connect_tcp(cfg_.host, cfg_.port);
    if (!s.fd.valid()) {
      ++conn_failures_;
      return false;
    }
    s.state = Slot::State::kConnecting;
    s.parser.reset();
    s.out.clear();
    s.out_off = 0;
    s.want_write = false;
    s.in_flight = false;
    s.draining = false;
    s.ops_done = 0;
    if (s.ever_opened) ++reconnects_;
    ep_.add(s.fd.get(), EPOLLOUT | EPOLLIN, &s);
    return true;
  }

  void close_slot(Slot& s, bool lost_in_flight) {
    if (s.state == Slot::State::kClosed) return;
    if (lost_in_flight && s.in_flight) ++abandoned_;
    ep_.del(s.fd.get());
    s.fd.reset();
    s.state = Slot::State::kClosed;
    s.in_flight = false;
    s.draining = false;
  }

  void on_established(Slot& s) {
    s.state = Slot::State::kActive;
    s.ever_opened = true;
    ever_connected_ = true;
    s.t0_ns = now_ns();
    ep_.mod(s.fd.get(), EPOLLIN, &s);
    int established = 0;
    for (const auto& o : slots_)
      if (o.state == Slot::State::kActive) ++established;
    if (established > peak_conns_) peak_conns_ = established;
  }

  void maybe_send(Slot& s, std::uint64_t now) {
    if (sh_->stop.load(std::memory_order_relaxed)) return;
    std::uint64_t intended = now;
    if (period_ns_ != 0) {
      intended =
          s.t0_ns + static_cast<std::uint64_t>(s.ops_done) * period_ns_;
      // Never shift the schedule: send the moment the intended slot
      // has passed, charge lateness to the sample.
      if (now < intended) return;
    }

    const OpKind kind = cfg_.mix.pick(s.rng);
    const long key = cfg_.zipf_theta > 0 ? zipf_(s.rng) : uniform_(s.rng);
    args_.clear();
    switch (kind) {
      case OpKind::kAdd:
        args_ = {"SET", std::to_string(key)};
        break;
      case OpKind::kRemove:
        args_ = {"DEL", std::to_string(key)};
        break;
      case OpKind::kContains:
        args_ = {"GET", std::to_string(key)};
        break;
      case OpKind::kScan:
        args_ = {"SCAN", std::to_string(key),
                 std::to_string(cfg_.scan_count)};
        break;
    }
    protocol::encode_request(s.out, args_);
    s.cls = class_of(kind);
    s.intended_ns = intended;
    s.sent_ns = now;
    s.in_flight = true;
    ++s.ops_done;
    ++sent_[static_cast<int>(s.cls)];
    flush(s);
  }

  void on_reply(Slot& s, const protocol::Reply& reply) {
    if (!s.in_flight) {
      // A frame we never asked for: stream desync, drop the conn.
      close_slot(s, /*lost_in_flight=*/false);
      return;
    }
    s.in_flight = false;
    const std::uint64_t completion = now_ns();
    const std::uint64_t base = period_ns_ != 0 ? s.intended_ns : s.sent_ns;
    profile_.of(s.cls).record(completion > base ? completion - base : 0);
    if (reply.type == protocol::Reply::Type::kError) {
      ++errors_;
    } else {
      ++completed_[static_cast<int>(s.cls)];
      sh_->completed_data.fetch_add(1, std::memory_order_relaxed);
    }
    if (s.draining) close_slot(s, /*lost_in_flight=*/false);
  }

  void handle_event(Slot& s, std::uint32_t events) {
    if (s.state == Slot::State::kClosed) return;

    if (s.state == Slot::State::kConnecting) {
      if ((events & (EPOLLERR | EPOLLHUP)) != 0 ||
          connect_error(s.fd.get()) != 0) {
        ++conn_failures_;
        close_slot(s, /*lost_in_flight=*/false);
        return;
      }
      if ((events & EPOLLOUT) != 0) on_established(s);
      return;
    }

    if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
      close_slot(s, /*lost_in_flight=*/true);
      return;
    }

    if ((events & EPOLLIN) != 0) {
      char buf[4096];
      for (;;) {
        const ssize_t r = ::read(s.fd.get(), buf, sizeof(buf));
        if (r > 0) {
          s.parser.feed(buf, static_cast<std::size_t>(r));
          if (r < static_cast<ssize_t>(sizeof(buf))) break;
        } else if (r == 0) {
          close_slot(s, /*lost_in_flight=*/true);
          return;
        } else {
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          close_slot(s, /*lost_in_flight=*/true);
          return;
        }
      }
      protocol::Reply reply;
      for (;;) {
        const protocol::ParseStatus st = s.parser.next(&reply);
        if (st == protocol::ParseStatus::kFrame) {
          on_reply(s, reply);
          if (s.state == Slot::State::kClosed) return;
          continue;
        }
        if (st == protocol::ParseStatus::kError) {
          close_slot(s, /*lost_in_flight=*/true);
          return;
        }
        break;
      }
    }

    if ((events & EPOLLOUT) != 0 || s.out_off < s.out.size()) flush(s);
  }

  void flush(Slot& s) {
    while (s.out_off < s.out.size()) {
      const ssize_t n = ::write(s.fd.get(), s.out.data() + s.out_off,
                                s.out.size() - s.out_off);
      if (n > 0) {
        s.out_off += static_cast<std::size_t>(n);
      } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!s.want_write) {
          s.want_write = true;
          ep_.mod(s.fd.get(), EPOLLIN | EPOLLOUT, &s);
        }
        return;
      } else {
        close_slot(s, /*lost_in_flight=*/true);
        return;
      }
    }
    s.out.clear();
    s.out_off = 0;
    if (s.want_write) {
      s.want_write = false;
      ep_.mod(s.fd.get(), EPOLLIN, &s);
    }
  }

  Shared* sh_;
  const LoadGenConfig& cfg_;
  Epoll ep_;
  std::vector<Slot> slots_;
  std::vector<std::string> args_;
  workload::ZipfKeys zipf_;
  workload::UniformKeys uniform_;
  std::uint64_t period_ns_ = 0;
  std::uint64_t next_open_attempt_ = 0;
};

/// Blocking-ish INFO round trip on a fresh control connection; returns
/// the total_ops the server reports, or -1 on any failure.
long fetch_server_total_ops(const LoadGenConfig& cfg) {
  Fd fd = connect_tcp(cfg.host, cfg.port);
  if (!fd.valid()) return -1;
  const std::uint64_t deadline = now_ns() + 2'000'000'000ULL;

  std::string out;
  protocol::encode_request(out, {"INFO"});
  std::size_t off = 0;
  while (off < out.size() && now_ns() < deadline) {
    const ssize_t n = ::write(fd.get(), out.data() + off, out.size() - off);
    if (n > 0)
      off += static_cast<std::size_t>(n);
    else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
             errno != EINTR)
      return -1;
  }
  if (off < out.size()) return -1;

  protocol::ReplyParser parser;
  protocol::Reply reply;
  char buf[4096];
  while (now_ns() < deadline) {
    const ssize_t r = ::read(fd.get(), buf, sizeof(buf));
    if (r > 0) {
      parser.feed(buf, static_cast<std::size_t>(r));
      const protocol::ParseStatus st = parser.next(&reply);
      if (st == protocol::ParseStatus::kFrame) break;
      if (st == protocol::ParseStatus::kError) return -1;
    } else if (r == 0) {
      return -1;
    } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return -1;
    }
  }
  if (reply.type != protocol::Reply::Type::kBulk) return -1;

  // Find the "total_ops:<n>" line in the INFO body.
  const std::string& body = reply.text;
  const std::string tag = "total_ops:";
  std::size_t at = 0;
  while (at < body.size()) {
    std::size_t nl = body.find('\n', at);
    if (nl == std::string::npos) nl = body.size();
    const std::string_view line(body.data() + at, nl - at);
    if (line.substr(0, tag.size()) == tag) {
      long v = 0;
      if (protocol::parse_key(line.substr(tag.size()), &v)) return v;
      return -1;
    }
    at = nl + 1;
  }
  return -1;
}

}  // namespace

LoadGenResult run_loadgen(const LoadGenConfig& cfg) {
  LoadGenResult res;
  if (cfg.duration_ms <= 0 && cfg.total_ops <= 0) {
    res.error = "loadgen needs --duration or --ops";
    return res;
  }
  const int threads = cfg.threads < 1 ? 1 : cfg.threads;
  const int conns = cfg.connections < 1 ? 1 : cfg.connections;

  Shared shared;
  shared.cfg = &cfg;
  shared.t_start_ns = now_ns();
  if (cfg.duration_ms > 0)
    shared.t_deadline_ns =
        shared.t_start_ns +
        static_cast<std::uint64_t>(cfg.duration_ms) * 1'000'000ULL;

  std::vector<std::unique_ptr<Engine>> engines;
  engines.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    // Distribute slots as evenly as possible; earlier threads take the
    // remainder.
    const int n = conns / threads + (t < conns % threads ? 1 : 0);
    engines.push_back(std::make_unique<Engine>(&shared, t, n));
  }
  std::vector<std::thread> team;
  team.reserve(engines.size());
  for (auto& e : engines) team.emplace_back([&e] { e->run(); });
  for (auto& th : team) th.join();
  res.ms = static_cast<double>(now_ns() - shared.t_start_ns) / 1e6;

  for (const auto& e : engines) {
    for (int c = 0; c < harness::kNumOpClasses; ++c) {
      res.sent[c] += e->sent_[c];
      res.completed[c] += e->completed_[c];
    }
    res.errors += e->errors_;
    res.conn_failures += e->conn_failures_;
    res.reconnects += e->reconnects_;
    res.abandoned += e->abandoned_;
    res.peak_conns += e->peak_conns_;
    res.profile += e->profile_;
    if (e->ever_connected_) res.ok = true;
  }
  if (!res.ok) {
    res.error = "no connection to " + cfg.host + ":" +
                std::to_string(cfg.port) + " was ever established";
    return res;
  }

  if (cfg.check_ledger) {
    res.server_total_ops = fetch_server_total_ops(cfg);
    res.ledger_match = res.server_total_ops == res.total_completed();
  }
  return res;
}

}  // namespace pragmalist::net
