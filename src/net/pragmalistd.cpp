// pragmalistd main: serve any catalog set over TCP until SIGTERM /
// SIGINT, then shut down gracefully and print the quiescent report
// (ledger, latency, limbo, validate) the CI smoke gates on.
//
//   pragmalistd --listen 0.0.0.0:7111 --workers 8
//       --set singly_fetch_or/ebr/sh8
//
// Flags:
//   --listen host:port   bind address            (127.0.0.1:7111)
//   --set id             catalog id to serve     (singly/ebr/sh8)
//   --workers n          event-loop workers      (4)
//   --fault-plan n       inject n request-handler crashes (PR 7
//                        taxonomy, cycling kinds across workers)
//   --fault-seed s       plan seed               (42)
//   --fault-ordinal n    ops a faulty worker serves before crashing (200)
//   --reap-delay d       crash detection delay   (50ms; suffix units)
//   --no-latency         skip service-time histograms
#include <csignal>
#include <cstdio>
#include <iostream>

#include "src/faults/faults.hpp"
#include "src/harness/options.hpp"
#include "src/harness/table.hpp"
#include "src/net/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace pragmalist;

  const harness::Options opt = harness::Options::parse(argc, argv);
  const auto listen =
      opt.get_host_port("listen", {.host = "127.0.0.1", .port = 7111});

  net::ServerConfig cfg;
  cfg.host = listen.host;
  cfg.port = listen.port;
  cfg.set_id = opt.get_string("set", cfg.set_id);
  cfg.workers = opt.get_int("workers", cfg.workers);
  cfg.reap_delay_ms =
      static_cast<int>(opt.get_duration_ms("reap-delay", 50));
  cfg.record_latency = !opt.get_bool("no-latency");
  const int n_faults = opt.get_int("fault-plan", 0);
  if (n_faults > 0) {
    const auto seed =
        static_cast<std::uint64_t>(opt.get_long("fault-seed", 42));
    const long ordinal = opt.get_long("fault-ordinal", 200);
    cfg.faults = faults::FaultPlan::mix(seed, n_faults, cfg.workers,
                                        ordinal, ordinal * 2);
  }

  net::Server server(cfg);
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "pragmalistd: %s\n", err.c_str());
    return 1;
  }
  std::printf("pragmalistd: serving %s with %d workers, listening on %s:%d\n",
              cfg.set_id.c_str(), cfg.workers, cfg.host.c_str(),
              server.port());
  if (!cfg.faults.empty())
    std::printf("pragmalistd: fault plan armed (%zu injected crashes)\n",
                cfg.faults.size());
  std::fflush(stdout);

  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  while (g_stop == 0) {
    timespec ts{0, 50'000'000};  // 50 ms
    ::nanosleep(&ts, nullptr);
  }

  std::printf("pragmalistd: shutting down\n");
  server.stop();

  const net::ServerStats stats = server.stats();
  const core::OpCounters ledger = server.ledger();
  std::printf(
      "pragmalistd: accepted=%ld closed=%ld frames=%ld protocol_errors=%ld "
      "faults=%d reaps=%d\n",
      stats.accepted, stats.closed, stats.frames, stats.protocol_errors,
      stats.faults_fired, stats.reaps);
  std::printf(
      "pragmalistd: ledger total_ops=%ld add_calls=%ld rem_calls=%ld "
      "con_calls=%ld scan_calls=%ld\n",
      ledger.total_ops(), ledger.add_calls, ledger.rem_calls,
      ledger.con_calls, ledger.scan_calls);

  if (cfg.record_latency && server.latency().total_count() > 0) {
    std::vector<harness::LatencyRow> rows;
    rows.push_back({cfg.set_id, server.latency(), 0.0, 0, 0});
    harness::print_latency_table(std::cout, "Service time", rows);
  }

  core::ISet& set = server.set();
  const faults::BlastStats blast = set.blast_stats();
  std::printf(
      "pragmalistd: limbo=%zu crashed_slots=%zu leaked_cells=%zu "
      "parked_limbo=%zu\n",
      set.limbo_nodes(), blast.crashed_slots, blast.leaked_cells,
      blast.parked_limbo);

  std::string why;
  const bool valid = set.validate(&why);
  if (valid)
    std::printf("pragmalistd: validate: ok (size=%zu)\n", set.size());
  else
    std::printf("pragmalistd: validate: FAILED: %s\n", why.c_str());
  // After stop() every lease departed or was reaped: a crashed slot or
  // quarantined cell still standing would leak for the process
  // lifetime, so it fails the shutdown the same as a broken list.
  const bool clean = blast.crashed_slots == 0 && blast.leaked_cells == 0;
  if (!clean)
    std::printf("pragmalistd: reclaim state not quiescent at exit\n");
  std::printf("pragmalistd: %s\n",
              valid && clean ? "clean shutdown" : "UNCLEAN shutdown");
  std::fflush(stdout);
  return valid && clean ? 0 : 1;
}
