// The pragmalistd wire protocol: a RESP-like framed format (REdis
// Serialization Protocol subset) chosen because it is trivially
// incremental -- every element is length- or CRLF-delimited, so a
// parser fed arbitrary byte slices either has a complete frame or
// knows it must wait, and pipelined frames fall out for free.
//
// Requests (client -> server) are arrays of bulk strings:
//
//   *<argc>\r\n  then argc x ( $<len>\r\n<len bytes>\r\n )
//
//   *2\r\n$3\r\nGET\r\n$2\r\n42\r\n        GET 42
//
// Replies (server -> client) are one of:
//
//   +<text>\r\n        simple string  (+PONG)
//   -<message>\r\n     error          (-ERR unknown command)
//   :<integer>\r\n     integer        (:1 = op succeeded / key present)
//   $<len>\r\n<bytes>\r\n  bulk string (INFO body)
//   *<n>\r\n then n x :<integer>\r\n   integer array (SCAN result)
//
// Commands (case-insensitive; keys are decimal longs):
//   PING              -> +PONG
//   SET <key>         -> :1 inserted, :0 already present   (ISetHandle::add)
//   GET <key>         -> :1 present, :0 absent             (contains)
//   DEL <key>         -> :1 removed, :0 absent             (remove)
//   SCAN <from> <n>   -> integer array of up to n live keys >= from,
//                        ascending (ascend; n clamped to kMaxScanCount)
//   INFO              -> bulk string of "key:value" lines (server ledger)
//
// Hard limits (violations are protocol errors; the server replies -ERR
// and closes, since a malformed stream cannot be resynchronized):
// kMaxArgs args per frame, kMaxBulk bytes per arg, kMaxFrame bytes per
// frame. All limits are checked on the *declared* lengths before any
// payload is buffered, so a hostile "$999999999" header cannot balloon
// memory, and the parser indexes nothing it has not bounds-checked --
// malformed input yields kError, never UB.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pragmalist::net::protocol {

inline constexpr std::size_t kMaxArgs = 8;
inline constexpr std::size_t kMaxBulk = 4096;
inline constexpr std::size_t kMaxFrame = 16 * 1024;
/// SCAN page ceiling: a single request cannot ask the server to walk
/// (and buffer) more than this many keys.
inline constexpr long kMaxScanCount = 4096;

enum class ParseStatus {
  kNeedMore,  // no complete frame buffered yet; feed more bytes
  kFrame,     // one frame extracted and consumed
  kError,     // stream is malformed; sticky until reset()
};

/// Strict decimal-long parse (full consumption, optional leading '-').
/// Returns false on empty/trailing garbage/overflow -- "12x" and ""
/// must be command errors, never key 12 or key 0.
bool parse_key(std::string_view s, long* out);

// --- encoders --------------------------------------------------------

/// Append one request frame ("*argc" + bulk args) to `out`.
void encode_request(std::string& out, const std::vector<std::string>& args);

void encode_simple(std::string& out, std::string_view text);
void encode_error(std::string& out, std::string_view message);
void encode_integer(std::string& out, long value);
void encode_bulk(std::string& out, std::string_view bytes);
void encode_int_array(std::string& out, const std::vector<long>& values);

// --- request parser (server side) ------------------------------------

/// Incremental request-frame parser. feed() appends raw bytes; next()
/// extracts at most one complete frame per call (call until kNeedMore
/// to drain a pipelined burst). After kError the stream is poisoned:
/// error() describes why and next() keeps returning kError until
/// reset().
class FrameParser {
 public:
  explicit FrameParser(std::size_t max_frame = kMaxFrame)
      : max_frame_(max_frame) {}

  void feed(const char* data, std::size_t n) { buf_.append(data, n); }
  void feed(std::string_view bytes) { buf_.append(bytes); }

  ParseStatus next(std::vector<std::string>* args);

  const std::string& error() const { return err_; }

  /// Bytes buffered but not yet consumed by a complete frame.
  std::size_t buffered() const { return buf_.size() - pos_; }

  void reset() {
    buf_.clear();
    pos_ = 0;
    err_.clear();
    failed_ = false;
  }

 private:
  ParseStatus fail(const std::string& why) {
    failed_ = true;
    err_ = why;
    return ParseStatus::kError;
  }

  std::string buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  std::size_t max_frame_;
  std::string err_;
  bool failed_ = false;
};

// --- reply parser (client side) --------------------------------------

struct Reply {
  enum class Type { kSimple, kError, kInteger, kBulk, kIntArray };
  Type type = Type::kSimple;
  std::string text;         // simple / error / bulk payload
  long integer = 0;         // integer reply
  std::vector<long> ints;   // integer-array reply (SCAN)
};

/// Incremental reply parser, mirroring FrameParser. Array replies are
/// restricted to integer elements (the only array this protocol
/// emits); anything else is a stream error.
class ReplyParser {
 public:
  explicit ReplyParser(std::size_t max_frame = kMaxFrame)
      : max_frame_(max_frame) {}

  void feed(const char* data, std::size_t n) { buf_.append(data, n); }
  void feed(std::string_view bytes) { buf_.append(bytes); }

  ParseStatus next(Reply* reply);

  const std::string& error() const { return err_; }
  std::size_t buffered() const { return buf_.size() - pos_; }

  void reset() {
    buf_.clear();
    pos_ = 0;
    err_.clear();
    failed_ = false;
  }

 private:
  ParseStatus fail(const std::string& why) {
    failed_ = true;
    err_ = why;
    return ParseStatus::kError;
  }

  std::string buf_;
  std::size_t pos_ = 0;
  std::size_t max_frame_;
  std::string err_;
  bool failed_ = false;
};

}  // namespace pragmalist::net::protocol
