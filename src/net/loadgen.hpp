// The pragmalistd load generator: an epoll client engine able to hold
// thousands of concurrent connections per event-loop thread, drive a
// configurable op mix over zipfian (or uniform) keys, churn
// connections on the soak schedules, and report per-op-class
// coordinated-omission-aware latency.
//
// Each connection is depth-1 (one request in flight), so the
// client-side count of acknowledged data ops and the server's
// dispatched-op ledger (INFO total_ops) must match exactly once the
// drain phase retires every in-flight request -- the end-to-end "no op
// lost, none double-counted" check the CI gate enforces.
//
// Latency discipline (the run_paced contract from the latency PR): in
// paced mode a connection's op i has *intended* send time
// t0 + i*period; its latency sample is completion - intended, so a
// server stall charges queueing delay to every op whose slot passed
// while it lasted. Closed-loop mode (rate 0) records
// completion - actual_send instead.
#pragma once

#include <cstdint>
#include <string>

#include "src/harness/latency.hpp"
#include "src/service/schedule.hpp"
#include "src/workload/op_mix.hpp"

namespace pragmalist::net {

struct LoadGenConfig {
  std::string host = "127.0.0.1";
  int port = 7111;
  int threads = 2;       // event-loop threads
  int connections = 64;  // total connection slots, split across threads

  // Stop condition: whichever of these is nonzero (duration wins when
  // both are set; at least one must be).
  long duration_ms = 0;
  long total_ops = 0;  // stop once this many data ops completed

  workload::OpMix mix{10, 10, 70, 10};
  std::uint64_t universe = 1 << 16;
  double zipf_theta = 0.99;  // <= 0 selects uniform keys
  long scan_count = 64;      // SCAN page size
  std::uint64_t seed = 1;

  // Paced sends per second per connection; 0 = closed loop.
  long rate_per_conn = 0;

  // Reconnect churn: when churn_ticks > 0, the per-thread target
  // connection count follows service::thread_target(schedule, ...)
  // across churn_ticks ticks; surplus connections drain (finish their
  // in-flight op) and close, deficits reconnect fresh.
  service::SoakSchedule schedule = service::SoakSchedule::kSteady;
  int churn_ticks = 0;

  // After the run, open a control connection, send INFO and compare
  // the server's total_ops ledger with our acknowledged-op count.
  bool check_ledger = true;
};

struct LoadGenResult {
  bool ok = false;    // engine ran (connected at least once)
  std::string error;  // why not, when !ok

  long sent[harness::kNumOpClasses] = {};       // requests written
  long completed[harness::kNumOpClasses] = {};  // acknowledged (non-error)
  long errors = 0;        // -ERR replies (incl. injected faults)
  long conn_failures = 0; // connect attempts that failed
  long reconnects = 0;    // churn-driven re-opens after the initial fill
  long abandoned = 0;     // in flight when the drain phase timed out
  int peak_conns = 0;     // max concurrently-established connections
  double ms = 0;          // measured window

  harness::LatencyProfile profile;  // CO-aware per-class latency

  long server_total_ops = -1;  // from INFO; -1 when unchecked/unreachable
  bool ledger_match = false;

  long total_completed() const {
    long n = 0;
    for (const long c : completed) n += c;
    return n;
  }
  long total_sent() const {
    long n = 0;
    for (const long c : sent) n += c;
    return n;
  }
};

/// Run the load against host:port until the stop condition, drain, and
/// (optionally) verify the server ledger. Synchronous; spawns
/// cfg.threads event loops internally.
LoadGenResult run_loadgen(const LoadGenConfig& cfg);

}  // namespace pragmalist::net
