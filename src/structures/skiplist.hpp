// Lock-free skip list over the same marked-pointer machinery — the
// downstream structure the paper motivates (its flat list is the
// building block; bench_structures shows where O(n) search loses to
// O(log n)). Bottom level (0) is the linearization point and holds
// every node; upper levels are a probabilistic index.
//
// Two flavors mirror the list ablation:
//   kDraconic = true  -- Herlihy-Shavit style find(): unlink marked
//     nodes at every level on sight, restart from the top on failure;
//     contains() helps too.
//   kDraconic = false -- pragmatic: traversals step over marked nodes;
//     a dead run is swung out with one CAS per level only inside
//     update searches, and contains() is CAS-free.
//
// Reclamation is the paper's arena scheme (AllocRegistry).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/core/iset.hpp"
#include "src/core/list_base.hpp"
#include "src/workload/rng.hpp"

namespace pragmalist::structures {

template <bool kDraconic>
class SkipListT {
  static constexpr int kMaxHeight = 16;

  struct Node {
    long key;
    int height;
    Node* reg_next = nullptr;
    std::array<core::MarkPtr<Node>, kMaxHeight> next;

    Node(long k, int h) : key(k), height(h) {}
  };

 public:
  class Handle {
   public:
    bool add(long key) {
      ++ctr_.add_calls;
      const bool ok = list_->do_add(*this, key);
      ctr_.adds += ok;
      return ok;
    }
    bool remove(long key) {
      ++ctr_.rem_calls;
      const bool ok = list_->do_remove(*this, key);
      ctr_.rems += ok;
      return ok;
    }
    bool contains(long key) {
      ++ctr_.con_calls;
      const bool ok = list_->do_contains(key);
      ctr_.cons += ok;
      return ok;
    }
    long range_scan(long lo, long hi, const core::KeySink& sink) {
      return core::counted_range_scan(*this, ctr_, lo, hi, sink);
    }
    std::vector<long> ascend(long from, std::size_t limit) {
      return core::counted_ascend(*this, ctr_, from, limit);
    }
    /// Uncounted paging primitive (mirrors the list engines' surface).
    long scan_raw(long from, long hi, long limit,
                  const core::KeySink& sink) {
      return list_->do_scan(from, hi, limit, sink);
    }
    const core::OpCounters& counters() const { return ctr_; }

   private:
    friend class SkipListT;
    Handle(SkipListT* list, std::uint64_t seed)
        : list_(list), rng_(seed) {}

    SkipListT* list_;
    workload::Rng rng_;
    core::OpCounters ctr_;
  };

  SkipListT() : head_(new Node(std::numeric_limits<long>::min(), kMaxHeight)) {
    registry_.track(head_);
  }

  Handle make_handle() {
    const auto n =
        handle_seq_.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t s = 0x9e3779b97f4a7c15ULL * (n + 1);
    return Handle(this, workload::splitmix64(s));
  }

  // --- quiescent API ------------------------------------------------

  bool validate(std::string* err) const {
    // Every level must satisfy the chain invariants; level 0 is the
    // set itself.
    for (int lvl = 0; lvl < kMaxHeight; ++lvl) {
      const Node* prev = nullptr;
      bool prev_marked = false;
      std::size_t steps = 0;
      for (const Node* n = head_->next[lvl].load_ptr(); n != nullptr;) {
        if (++steps > registry_.count() + 1) {
          if (err) *err = "skiplist cycle";
          return false;
        }
        const auto v = n->next[lvl].load();
        if (n->height <= lvl) {
          if (err) *err = "node linked above its height";
          return false;
        }
        if (prev != nullptr) {
          if (n->key < prev->key ||
              (n->key == prev->key && !prev_marked && !v.marked)) {
            if (err) *err = "skiplist order violated";
            return false;
          }
        }
        prev = n;
        prev_marked = v.marked;
        n = v.ptr;
      }
    }
    return true;
  }

  std::size_t size() const {
    std::size_t count = 0;
    for (const Node* n = head_->next[0].load_ptr(); n != nullptr;) {
      const auto v = n->next[0].load();
      if (!v.marked) ++count;
      n = v.ptr;
    }
    return count;
  }

  std::vector<long> snapshot() const {
    // The quiescent snapshot is the full-range scan walk.
    std::vector<long> keys;
    do_scan(std::numeric_limits<long>::min(),
            std::numeric_limits<long>::max(), /*limit=*/-1,
            [&](long k) { keys.push_back(k); });
    return keys;
  }

  void corrupt_order_for_test() {
    Node* a = head_->next[0].load_ptr();
    if (a == nullptr) return;
    Node* b = a->next[0].load_ptr();
    if (b == nullptr) return;
    std::swap(a->key, b->key);
  }

 private:
  struct Pos {
    std::array<Node*, kMaxHeight> preds;
    std::array<Node*, kMaxHeight> succs;
    Node* found;  // live level-0 node with the key, or nullptr
  };

  /// Per-level search establishing (pred, succ) adjacency at each
  /// level. Pragmatic flavor swings dead runs out with one CAS and, if
  /// that fails, re-walks just the current level; draconic restarts the
  /// whole find from the top.
  Pos find(long key) {
  restart:
    Pos pos;
    pos.found = nullptr;
    Node* pred = head_;
    for (int lvl = kMaxHeight - 1; lvl >= 0; --lvl) {
      for (;;) {
        Node* left = pred;
        const auto lv = left->next[lvl].load();
        if (lv.marked) {  // pred died under us: climb out
          goto restart;
        }
        Node* left_next = lv.ptr;
        Node* cur = left_next;
        while (cur != nullptr) {
          const auto cv = cur->next[lvl].load();
          if (cv.marked) {
            if constexpr (kDraconic) {
              if (!left->next[lvl].cas_clean(cur, cv.ptr)) goto restart;
              left_next = cv.ptr;
              cur = cv.ptr;
            } else {
              cur = cv.ptr;  // step over
            }
            continue;
          }
          if (cur->key >= key) break;
          left = cur;
          left_next = cv.ptr;
          cur = cv.ptr;
        }
        if (left_next != cur) {  // pragmatic: sweep the dead run now
          if (!left->next[lvl].cas_clean(left_next, cur)) continue;
        }
        pos.preds[lvl] = left;
        pos.succs[lvl] = cur;
        pred = left;
        break;
      }
    }
    Node* c = pos.succs[0];
    if (c != nullptr && c->key == key && !c->next[0].load().marked)
      pos.found = c;
    return pos;
  }

  int random_height(Handle& h) {
    // Geometric, p = 1/2, capped.
    const std::uint64_t bits = h.rng_();
    int height = 1;
    while (height < kMaxHeight && (bits >> (height - 1) & 1) != 0)
      ++height;
    return height;
  }

  bool do_add(Handle& h, long key) {
    for (;;) {
      Pos pos = find(key);
      if (pos.found != nullptr) return false;
      const int height = random_height(h);
      Node* node = new Node(key, height);
      registry_.track(node);
      for (int lvl = 0; lvl < height; ++lvl)
        node->next[lvl].store(pos.succs[lvl]);
      // Level-0 link is the linearization point.
      if (!pos.preds[0]->next[0].cas_clean(pos.succs[0], node)) {
        // Lost the race; the node was never published (arena frees it
        // at teardown). Retry from scratch.
        continue;
      }
      // Best-effort upper links; give up a level on interference once
      // the node has died. The node is published, so its own next
      // pointers may only change via CAS (a plain store could wipe a
      // concurrent deletion mark), and node->next[lvl] must be synced
      // to the *current* successor before every pred CAS -- linking
      // with a stale successor would splice live nodes out of the
      // index level.
      for (int lvl = 1; lvl < height; ++lvl) {
        for (;;) {
          const auto v = node->next[lvl].load();
          if (v.marked) return true;  // being removed
          if (v.ptr != pos.succs[lvl]) {
            if (!node->next[lvl].cas_clean(v.ptr, pos.succs[lvl]))
              return true;  // marked under us
            continue;       // reload and retry with the synced next
          }
          if (pos.preds[lvl]->next[lvl].cas_clean(pos.succs[lvl], node))
            break;
          pos = find(key);
          if (pos.found != node) return true;  // removed (maybe re-added)
        }
      }
      return true;
    }
  }

  bool do_remove(Handle&, long key) {
    const Pos pos = find(key);
    Node* node = pos.found;
    if (node == nullptr) return false;
    // Mark top-down; only the level-0 mark decides the winner.
    for (int lvl = node->height - 1; lvl >= 1; --lvl) {
      for (;;) {
        const auto v = node->next[lvl].load();
        if (v.marked) break;
        if (node->next[lvl].cas_mark(v.ptr)) break;
      }
    }
    for (;;) {
      const auto v = node->next[0].load();
      if (v.marked) return false;  // another remover won
      if (node->next[0].cas_mark(v.ptr)) break;
    }
    find(key);  // sweep the carcass off every level
    return true;
  }

  /// The scan primitive behind range_scan()/ascend(): O(log n) index
  /// descent to a level-0 predecessor of `from` (read-only, stepping
  /// over marked nodes -- no CAS even in the draconic flavor), then a
  /// level-0 walk emitting live keys in [from, hi], at most `limit`
  /// (< 0 = unbounded). Arena reclamation makes the free walk safe: a
  /// node unlinked mid-scan stays allocated and its frozen next still
  /// leads onward, so keys stay strictly ascending.
  long do_scan(long from, long hi, long limit,
               const core::KeySink& sink) const {
    const Node* pred = head_;
    for (int lvl = kMaxHeight - 1; lvl >= 1; --lvl) {
      const Node* cur = pred->next[lvl].load_ptr();
      while (cur != nullptr) {
        const auto cv = cur->next[lvl].load();
        if (cv.marked) {
          cur = cv.ptr;
          continue;
        }
        if (cur->key >= from) break;
        pred = cur;
        cur = cv.ptr;
      }
    }
    long emitted = 0;
    for (const Node* n = pred->next[0].load_ptr(); n != nullptr;) {
      const auto v = n->next[0].load();
      if (!v.marked) {
        if (n->key > hi || (limit >= 0 && emitted >= limit)) break;
        if (n->key >= from) {
          sink(n->key);
          ++emitted;
        }
      }
      n = v.ptr;
    }
    return emitted;
  }

  bool do_contains(long key) {
    if constexpr (kDraconic) {
      const Pos pos = find(key);
      return pos.found != nullptr;
    } else {
      const Node* pred = head_;
      for (int lvl = kMaxHeight - 1; lvl >= 0; --lvl) {
        const Node* cur = pred->next[lvl].load_ptr();
        while (cur != nullptr) {
          const auto cv = cur->next[lvl].load();
          if (cv.marked) {
            cur = cv.ptr;
            continue;
          }
          if (cur->key >= key) break;
          pred = cur;
          cur = cv.ptr;
        }
        if (lvl == 0)
          return cur != nullptr && cur->key == key;
      }
      return false;  // unreachable
    }
  }

  Node* head_;
  core::AllocRegistry<Node> registry_;
  std::atomic<std::uint64_t> handle_seq_{0};
};

using SkipList = SkipListT<false>;
using SkipListDraconic = SkipListT<true>;

}  // namespace pragmalist::structures
