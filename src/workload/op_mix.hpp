// Operation mixes for the random benchmarks: the paper's table mix
// (10% add / 10% remove / 80% contains) and the scaling-figure mix
// (25/25/50), plus a scan fraction (range reads, default 0 so the
// paper mixes are untouched) with a range-width distribution.
#pragma once

#include "src/workload/rng.hpp"

namespace pragmalist::workload {

enum class OpKind { kAdd, kRemove, kContains, kScan };

struct OpMix {
  int add_pct = 10;
  int rem_pct = 10;
  int con_pct = 80;
  int scan_pct = 0;

  OpKind pick(Rng& rng) const {
    // Band order add/rem/scan/contains: with scan_pct == 0 the rolls
    // map exactly as they always did, so pre-scan workload streams
    // (and their golden tests) are bit-identical.
    const auto roll = static_cast<int>(rng.below(100));
    if (roll < add_pct) return OpKind::kAdd;
    if (roll < add_pct + rem_pct) return OpKind::kRemove;
    if (roll < add_pct + rem_pct + scan_pct) return OpKind::kScan;
    return OpKind::kContains;
  }
};

/// Range-width distribution for scan operations: widths drawn
/// uniformly in [min_width, max_width] (inclusive). A scan op draws a
/// key like any other op and reads [key, key + width - 1].
struct ScanWidths {
  long min_width = 1;
  long max_width = 64;

  long pick(Rng& rng) const {
    if (max_width <= min_width) return min_width;
    return min_width + static_cast<long>(rng.below(
                           static_cast<std::uint64_t>(max_width - min_width) +
                           1));
  }
};

/// Tables 1-9 mix: read mostly.
inline constexpr OpMix kTableMix{10, 10, 80, 0};
/// Figures 1-3 mix: update heavy.
inline constexpr OpMix kScalingMix{25, 25, 50, 0};
/// Contains-heavy fast-lane mix (`--mix reads` in the read benches):
/// just enough churn to keep hints/cursors going stale, the rest
/// contains -- the workload the hint index and the CAS-free read walk
/// are priced on.
inline constexpr OpMix kReadMostlyMix{3, 3, 94, 0};

}  // namespace pragmalist::workload
