// Operation mixes for the random benchmarks: the paper's table mix
// (10% add / 10% remove / 80% contains) and the scaling-figure mix
// (25/25/50).
#pragma once

#include "src/workload/rng.hpp"

namespace pragmalist::workload {

enum class OpKind { kAdd, kRemove, kContains };

struct OpMix {
  int add_pct = 10;
  int rem_pct = 10;
  int con_pct = 80;

  OpKind pick(Rng& rng) const {
    const auto roll = static_cast<int>(rng.below(100));
    if (roll < add_pct) return OpKind::kAdd;
    if (roll < add_pct + rem_pct) return OpKind::kRemove;
    return OpKind::kContains;
  }
};

/// Tables 1-9 mix: read mostly.
inline constexpr OpMix kTableMix{10, 10, 80};
/// Figures 1-3 mix: update heavy.
inline constexpr OpMix kScalingMix{25, 25, 50};

}  // namespace pragmalist::workload
