// Deterministic, splittable randomness for the benchmark harness.
// xoshiro256** (Blackman & Vigna) seeded through splitmix64, the
// recommended seeding procedure: distinct per-thread streams from one
// command-line seed without correlated low bits.
#pragma once

#include <cstdint>

namespace pragmalist::workload {

/// One splitmix64 step; also used to derive per-thread seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Seed for thread `t` of a run seeded with `base`. Distinct threads get
/// decorrelated streams; the same (base, t) always yields the same
/// schedule, which the deterministic tests rely on.
inline std::uint64_t thread_seed(std::uint64_t base, int t) {
  std::uint64_t s = base ^ (0x632be59bd9b4e019ULL * (static_cast<std::uint64_t>(t) + 1));
  std::uint64_t a = splitmix64(s);
  std::uint64_t b = splitmix64(s);
  return a ^ (b << 1);
}

class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed = 1) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias worth caring about here
  /// (bound << 2^64); Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t bound) {
    const unsigned __int128 m =
        static_cast<unsigned __int128>(operator()()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform01() { return static_cast<double>(operator()() >> 11) * 0x1.0p-53; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Default RNG alias the rest of the workload layer uses.
using Rng = Xoshiro256StarStar;

}  // namespace pragmalist::workload
