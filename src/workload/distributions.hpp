// Key distributions for the random-mix benchmarks. The paper only uses
// uniform keys; the zipfian generator backs the beyond-paper skew bench.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/workload/rng.hpp"

namespace pragmalist::workload {

/// Uniform keys in [0, universe).
class UniformKeys {
 public:
  explicit UniformKeys(std::uint64_t universe)
      : universe_(universe == 0 ? 1 : universe) {}

  long operator()(Rng& rng) const {
    return static_cast<long>(rng.below(universe_));
  }

  std::uint64_t universe() const { return universe_; }

 private:
  std::uint64_t universe_;
};

/// Zipf(theta) over ranks 1..n mapped to keys 0..n-1, using the classic
/// Gray et al. "quick zeta" inversion. Rank r has probability
/// proportional to 1/r^theta; theta -> 0 degenerates to uniform.
/// Construction is O(n) (one pass to compute zeta(n, theta)); draws are
/// O(1). The hottest key is rank 1 == key 0.
class ZipfKeys {
 public:
  ZipfKeys(std::uint64_t n, double theta)
      : n_(n == 0 ? 1 : n),
        // The Gray et al. inversion divides by (1 - theta); theta = 1
        // exactly would degenerate to a point mass, so approximate it.
        theta_(std::abs(1.0 - theta) < 1e-9 ? 1.0 - 1e-9 : theta) {
    zetan_ = zeta(n_, theta_);
    const double zeta2 = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  long operator()(Rng& rng) const {
    const double u = rng.uniform01();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return static_cast<long>(rank >= n_ ? n_ - 1 : rank);
  }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_, alpha_, eta_;
};

}  // namespace pragmalist::workload
