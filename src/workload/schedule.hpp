// Deterministic key schedules for the paper's worst-case benchmark:
// every thread adds n keys then removes the same n keys, with keys
// either shared across threads (k(i) = i) or disjoint (k(i) = t + i*p).
#pragma once

namespace pragmalist::workload {

enum class KeySchedule {
  kSameKeys,      // k(i) = i          (Tables 1/4/7)
  kDisjointKeys,  // k(i) = t + i * p  (Tables 2/5/8)
};

/// Key i of thread t (of p threads) under `sched`.
inline long schedule_key(KeySchedule sched, int t, long i, int p) {
  return sched == KeySchedule::kSameKeys ? i
                                         : static_cast<long>(t) + i * p;
}

}  // namespace pragmalist::workload
