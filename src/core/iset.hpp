// Type-erased concurrent ordered-set interface the harness drives. Each
// concrete structure exposes a thread-local Handle (per-thread cursor,
// hazard slots, reclamation bags, op counters); the harness creates one
// handle per worker thread through ISet::make_handle().
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace pragmalist::core {

/// Per-handle operation ledger. `adds`/`rems`/`cons` count *successful*
/// operations (add inserted, remove deleted, contains hit); the
/// *_calls fields count attempts. The random-mix conservation check
/// (prefill + adds - rems == population) depends on the success counts.
struct OpCounters {
  long adds = 0;
  long rems = 0;
  long cons = 0;
  long add_calls = 0;
  long rem_calls = 0;
  long con_calls = 0;

  long total_ops() const { return add_calls + rem_calls + con_calls; }

  OpCounters& operator+=(const OpCounters& o) {
    adds += o.adds;
    rems += o.rems;
    cons += o.cons;
    add_calls += o.add_calls;
    rem_calls += o.rem_calls;
    con_calls += o.con_calls;
    return *this;
  }
};

/// A thread's view of a set. Not thread-safe: exactly one thread uses a
/// given handle. Handles must not outlive their set.
class ISetHandle {
 public:
  virtual ~ISetHandle() = default;
  virtual bool add(long key) = 0;
  virtual bool remove(long key) = 0;
  virtual bool contains(long key) = 0;
  virtual OpCounters counters() const = 0;
};

/// The shared structure. make_handle() may be called concurrently from
/// worker threads; validate()/size()/snapshot() are quiescent-only
/// (call after all workers joined).
class ISet {
 public:
  virtual ~ISet() = default;

  virtual std::unique_ptr<ISetHandle> make_handle() = 0;

  /// Structural self-check. Returns false and fills *err (if non-null)
  /// on a broken invariant (unsorted chain, duplicate live key, ...).
  virtual bool validate(std::string* err) const = 0;

  /// Number of live (logically present) keys.
  virtual std::size_t size() const = 0;

  /// Live keys in ascending order.
  virtual std::vector<long> snapshot() const = 0;

  /// Nodes currently allocated and not yet freed (0 when the structure
  /// does not track it). Under the arena this grows with every
  /// successful insert; under a reclaiming policy (src/reclaim/) the
  /// churn tests assert it stays bounded.
  virtual std::size_t allocated_nodes() const { return 0; }

  /// Nodes retired but not yet freed -- the reclaimer's limbo depth (0
  /// when the structure does not reclaim). Safe to sample while
  /// workers run; the soak harness records it as a time series and the
  /// soak tests assert it stays bounded.
  virtual std::size_t limbo_nodes() const { return 0; }

  /// Hash shards behind this set (1 for every unsharded structure).
  virtual int shard_count() const { return 1; }

  /// Operations routed to each shard (attempts, all op kinds) --
  /// quiescent-only, like validate(). Empty when unsharded; the
  /// shard-load reports in bench_reclaim/bench_soak use it to show how
  /// a skewed key stream loads the partition.
  virtual std::vector<long> shard_ops() const { return {}; }

  /// Live keys per shard (quiescent-only; empty when unsharded).
  virtual std::vector<std::size_t> shard_sizes() const { return {}; }

  virtual std::string_view name() const = 0;
};

}  // namespace pragmalist::core
