// Type-erased concurrent ordered-set interface the harness drives. Each
// concrete structure exposes a thread-local Handle (per-thread cursor,
// hazard slots, reclamation bags, op counters); the harness creates one
// handle per worker thread through ISet::make_handle().
#pragma once

#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/faults/faults.hpp"

namespace pragmalist::core {

/// Per-handle operation ledger. `adds`/`rems`/`cons` count *successful*
/// operations (add inserted, remove deleted, contains hit); the
/// *_calls fields count attempts. The random-mix conservation check
/// (prefill + adds - rems == population) depends on the success counts.
/// `scan_calls` counts range_scan()/ascend() invocations (one per call,
/// like the other *_calls) and `scans` the keys those calls emitted.
///
/// `hint_hits` and `restarts` are read-path progress diagnostics, not
/// operations, and are deliberately excluded from total_ops():
/// hint_hits counts traversal starts taken from a validated shortcut
/// (hint index or cursor composed via core::start::tighter), restarts
/// counts lost anchors -- a traversal pass abandoned and resumed
/// (plain search sweep-CAS losses, HP anchor revalidation failures).
/// The starvation tier asserts restarts stays proportional to ops --
/// bounded retries -- and bench_latency prints both per cell.
struct OpCounters {
  long adds = 0;
  long rems = 0;
  long cons = 0;
  long scans = 0;
  long add_calls = 0;
  long rem_calls = 0;
  long con_calls = 0;
  long scan_calls = 0;
  long hint_hits = 0;
  long restarts = 0;

  long total_ops() const {
    return add_calls + rem_calls + con_calls + scan_calls;
  }

  OpCounters& operator+=(const OpCounters& o) {
    adds += o.adds;
    rems += o.rems;
    cons += o.cons;
    scans += o.scans;
    add_calls += o.add_calls;
    rem_calls += o.rem_calls;
    con_calls += o.con_calls;
    scan_calls += o.scan_calls;
    hint_hits += o.hint_hits;
    restarts += o.restarts;
    return *this;
  }
};

// --- Progress-guarantee matrix (engine x reclaimer x op) -------------
//
// What each read/write path guarantees, by construction. "CAS-free"
// means the op never issues a compare-and-swap (it can still be made
// to wait by cache traffic); "restart-free" means one forward pass,
// never abandoned; "bounded-restart" means a lost pass resumes from
// the last validated anchor (kept protected across the restart), so
// the validated key-space prefix is never re-walked; "wait-free
// lookup" refers to the hint index's candidate selection (<= H
// validations, tried-mask bounded), independent of writers.
//
//                     arena / EBR              HP
//   contains (mild,
//     singly/doubly)  CAS-free, restart-free   CAS-free, bounded-restart
//   contains
//     (draconic)      helps unlink: CAS +      same, anchored walk
//                     restart on lost CAS
//   contains
//     (unrolled)      CAS-free; miss confirm   CAS-free walks; same
//                     may re-route (version    version re-route loop
//                     check), unbounded only
//                     under continuous resize
//   range_scan/ascend CAS-free, restart-free   CAS-free, bounded-restart
//     (singly/doubly) (one pass)               (resume past last emitted)
//   add/remove        lock-free (CAS retry); hint/cursor starts shorten
//     (all engines)   the reattempt walk, sweep losses resume from prev
//
// The arena/EBR mild `contains` column is the paper's claim made
// enforceable: the walk in SinglyFamilyList::do_contains /
// DoublyFamilyList::do_contains issues no CAS and never loops back --
// the engines export kContainsCasFree / kContainsRestartFree and
// variants.hpp static_asserts the whole grid, so a regression that
// adds a CAS or a restart to that path fails to compile, not to
// benchmark. Hint-index lookups keep every guarantee above: a stale
// hint costs one failed validation and decays (next candidate, then
// head) -- never a retry loop.

/// Receives the keys a range scan emits, in ascending order.
using KeySink = std::function<void(long)>;

/// The counted public scan forms, implemented once over any concrete
/// handle exposing the uncounted `scan_raw(from, hi, limit, sink)`
/// primitive. Every engine/baseline/sharded handle delegates here, so
/// the scans/scan_calls ledger rules live in exactly one place.
template <typename Handle>
long counted_range_scan(Handle& h, OpCounters& ctr, long lo, long hi,
                        const KeySink& sink) {
  ++ctr.scan_calls;
  const long n = h.scan_raw(lo, hi, /*limit=*/-1, sink);
  ctr.scans += n;
  return n;
}

template <typename Handle>
std::vector<long> counted_ascend(Handle& h, OpCounters& ctr, long from,
                                 std::size_t limit) {
  ++ctr.scan_calls;
  std::vector<long> out;
  out.reserve(limit);
  h.scan_raw(from, std::numeric_limits<long>::max(),
             static_cast<long>(limit), [&](long k) { out.push_back(k); });
  ctr.scans += static_cast<long>(out.size());
  return out;
}

/// A thread's view of a set. Not thread-safe: exactly one thread uses a
/// given handle. Handles must not outlive their set.
///
/// Scan contract (range_scan/ascend): keys are emitted in strictly
/// ascending order while other workers mutate the set; every emitted
/// key was present, and every in-range omitted key absent, at some
/// instant during the call (per-key atomicity -- each key of the range
/// linearizes as its own atomic membership read inside the scan's
/// window; the scan linearizability tier checks exactly this). A scan
/// is *not* an atomic snapshot of the whole range: keys mutated while
/// the scan is in flight may or may not appear. Quiescently (no
/// concurrent writers) a full-range scan equals ISet::snapshot().
class ISetHandle {
 public:
  virtual ~ISetHandle() = default;
  virtual bool add(long key) = 0;
  virtual bool remove(long key) = 0;
  virtual bool contains(long key) = 0;

  /// Emit every live key in [lo, hi] (inclusive) into `sink`, ascending.
  /// Returns the number of keys emitted (0 when lo > hi).
  virtual long range_scan(long lo, long hi, const KeySink& sink) = 0;

  /// Paging form: up to `limit` live keys >= `from`, ascending. An
  /// ascending pager resumes with from = last returned key + 1; a
  /// result shorter than `limit` means the key space is exhausted.
  virtual std::vector<long> ascend(long from, std::size_t limit) = 0;

  virtual OpCounters counters() const = 0;

  /// Fault injection: simulate this handle's worker crashing with the
  /// given fault (src/faults/faults.hpp). The op-level kinds
  /// (kMidOpAbandon, kRetireSkipped) perform a deliberately botched
  /// remove of `key` first; the lease-level kinds crash the reclaim
  /// handle itself. After this call the handle must only be destroyed
  /// (its destructor performs a *clean* departure of whatever the
  /// fault left alive, which for the lease-level kinds is nothing).
  /// Default: no-op -- baselines without an abandon path are
  /// fault-oblivious and just depart cleanly.
  virtual void abandon(faults::FaultKind, long /*key*/) {}
};

/// The shared structure. make_handle() may be called concurrently from
/// worker threads; validate()/size()/snapshot() are quiescent-only
/// (call after all workers joined).
class ISet {
 public:
  virtual ~ISet() = default;

  virtual std::unique_ptr<ISetHandle> make_handle() = 0;

  /// Structural self-check. Returns false and fills *err (if non-null)
  /// on a broken invariant (unsorted chain, duplicate live key, ...).
  virtual bool validate(std::string* err) const = 0;

  /// Number of live (logically present) keys.
  virtual std::size_t size() const = 0;

  /// Live keys in ascending order.
  virtual std::vector<long> snapshot() const = 0;

  /// Nodes currently allocated and not yet freed (0 when the structure
  /// does not track it). Under the arena this grows with every
  /// successful insert; under a reclaiming policy (src/reclaim/) the
  /// churn tests assert it stays bounded.
  virtual std::size_t allocated_nodes() const { return 0; }

  /// Nodes retired but not yet freed -- the reclaimer's limbo depth (0
  /// when the structure does not reclaim). Safe to sample while
  /// workers run; the soak harness records it as a time series and the
  /// soak tests assert it stays bounded.
  virtual std::size_t limbo_nodes() const { return 0; }

  /// Hash shards behind this set (1 for every unsharded structure).
  virtual int shard_count() const { return 1; }

  /// Operations routed to each shard (attempts, all op kinds) --
  /// quiescent-only, like validate(). Empty when unsharded; the
  /// shard-load reports in bench_reclaim/bench_soak use it to show how
  /// a skewed key stream loads the partition.
  virtual std::vector<long> shard_ops() const { return {}; }

  /// Live keys per shard (quiescent-only; empty when unsharded).
  virtual std::vector<std::size_t> shard_sizes() const { return {}; }

  /// Supervisor recovery after worker crashes: release every lease
  /// abandoned via ISetHandle::abandon -- unpin stalled epochs, clear
  /// leaked hazard cells, hand parked limbo to the survivors. Returns
  /// the number of leases reaped (0 when the structure has no crashed
  /// leases, or no reclaim layer at all). Safe to call while workers
  /// run; the soak driver calls it a configurable delay after each
  /// injected fault.
  virtual std::size_t reap_crashed() { return 0; }

  /// Blast-radius counters for the faults injected so far (all zero
  /// for structures without a reclaim layer). Safe to sample while
  /// workers run; the soak driver records one per tick.
  virtual faults::BlastStats blast_stats() const { return {}; }

  virtual std::string_view name() const = 0;
};

}  // namespace pragmalist::core
