// Unrolled ("fat node") variant of the pragmatic list: each node packs
// up to K keys next to one Harris-marked next pointer, so the chain the
// paper's traversal rules walk is K times shorter and every step lands
// on a slab-slot-sized block of keys instead of one. The point of the
// engine is to exercise the per-domain slab allocator (src/alloc/) with
// a node type whose footprint is an actual cache-line multiple, and to
// price unrolling against the one-key-per-node families on the same
// reclaim policies.
//
// Structure:
//   * The head is a pure sentinel (anchor LONG_MIN, never holds keys,
//     never marked). Every other node carries an *immutable anchor*
//     stored in the field named `key` -- the name is load-bearing: it is
//     what lets the engine reuse core::hazard::anchored_walk verbatim,
//     which routes by comparing `cur->key` exactly as the singly family
//     does. Anchors are strictly increasing along the physical chain at
//     all times (splits insert between their source's and its
//     successor's anchors; fresh nodes insert after the head, below the
//     first anchor).
//   * Keys live in K atomic cells, kept sorted, guarded by a per-node
//     seqlock (`version`): even = unlocked, odd = writer inside. The
//     version doubles as the writer mutex -- a writer CASes even->odd
//     (acquire the lock), mutates cells/count/mark, then stores +1 with
//     release. Readers snapshot (version, count, cells, mark) and
//     retry if the version was odd or moved; the mark bit only ever
//     changes under the lock, so a validated snapshot is coherent.
//   * Membership invariant: every key of an unmarked node n satisfies
//     anchor(n) <= key < anchor(first *unmarked* successor of n). So
//     the covering node for a search key -- the last unmarked node with
//     anchor <= key -- is the only place the key can live.
//   * marked => empty, permanently: a node is marked (under its lock)
//     exactly when its last key leaves, and a marked node's next is
//     frozen (core::MarkPtr), so sweeps can detach it with the familiar
//     one-CAS run swing. Writers' routing walks and scans both sweep.
//
// Rebalancing, all under the seqlock(s):
//   * Split-right at K+1 keys: inserting into a full node keeps the
//     lower (K+1)/2 keys and moves the rest to a fresh node anchored at
//     its lowest moved key; the link CAS happens *before* the source's
//     cells shrink, and the whole window sits inside the source's lock,
//     so no reader can observe a key missing (readers of the source
//     retry until unlock; readers arriving through the chain see the
//     complete new sibling).
//   * Merge-left only: a remove leaving count <= K/4 may absorb its
//     *immediate unmarked successor* (combined count <= K/2), under
//     both locks, left-then-right -- lock order follows anchor order,
//     so no deadlock; the right lock is a trylock anyway. Absorbing
//     left-to-right preserves the anchor invariant (the moved keys are
//     all >= the absorber's anchor); merging into the successor would
//     not. The absorbed node is emptied, marked, unlinked, retired.
//
// Concurrent reads: a contains routes to the covering node and takes a
// version-validated snapshot. A hit is authoritative (keys of an
// unmarked node are live). A miss is not -- a split may have moved the
// key to a new right sibling after the route -- so a miss re-routes and
// only reports absent if the covering node is *still* the same node at
// the same version (64-bit, no ABA); anything else retries. Under HP
// the snapshot node is pinned in the persistent kCursor cell across
// the second walk (owner-tagged, like the cursor engines). Scans
// restart from the head on meeting a marked node -- after one sweep
// attempt to bound the restarts -- because merge-left can move keys
// *behind* a forward scanner; the resume point (`next_from`) makes
// restarts emission-idempotent.
//
// Keys must lie in (LONG_MIN, LONG_MAX): LONG_MIN is the head anchor
// and the empty-cell sentinel, LONG_MAX would overflow the key+1
// routing probe. Scan *bounds* may still be the full long range.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/debug.hpp"
#include "src/core/hint_index.hpp"
#include "src/core/iset.hpp"
#include "src/core/list_base.hpp"
#include "src/reclaim/maybe_owned.hpp"
#include "src/reclaim/reclaim.hpp"

namespace pragmalist::core {

template <int kK, template <typename> class ReclaimPolicy = reclaim::Arena>
class UnrolledFamilyList {
  static_assert(kK >= 4, "fat nodes need room to split and merge");

  struct Node {
    long key;  // immutable anchor; named `key` for anchored_walk reuse
    MarkPtr<Node> next;
    Node* reg_next = nullptr;
    std::atomic<std::uint64_t> version{0};  // seqlock; odd = locked
    std::atomic<int> count{0};
    std::atomic<long> cells[kK];

    explicit Node(long anchor, Node* succ = nullptr)
        : key(anchor), next(succ) {
      for (auto& c : cells)
        c.store(kEmptyCell, std::memory_order_relaxed);
    }
  };

 public:
  /// The reclamation *domain* this engine runs against. Stand-alone
  /// lists make their own; a sharded set makes one and hands it to
  /// every shard, so N shards cost one epoch clock / slot table.
  using Reclaim = ReclaimPolicy<Node>;
  using ReclaimHandle = typename Reclaim::Handle;

  /// Every node is acquired through the domain's pool, so the engine
  /// is eligible for slab mode (the catalog / sharded adapters gate
  /// alloc::Mode::kSlab on this trait). Fat nodes are the pool's
  /// intended tenant: sizeof(Node) is a cache-line multiple, so slab
  /// slots tile without waste.
  static constexpr bool kPoolAllocates = true;

  /// Progress traits (iset.hpp matrix; asserted in variants.hpp).
  /// contains never CASes, but it is *not* restart-free under any
  /// reclaimer: a miss must be confirmed by a second route landing on
  /// the same covering node at the same seqlock version, and a moved
  /// node re-routes -- bounded in practice, unbounded only under
  /// continuous split/merge at the probed anchor.
  static constexpr bool kContainsCasFree = true;
  static constexpr bool kContainsRestartFree = false;

 private:
  static constexpr bool kHazards = Reclaim::kHazards;
  static constexpr long kEmptyCell = std::numeric_limits<long>::min();
  static constexpr long kHeadAnchor = std::numeric_limits<long>::min();
  // Split keeps the lower half; merge fires on count <= kK/4 when the
  // combined node stays at most half full (conservative: a just-merged
  // node is never split-ready, avoiding merge/split ping-pong).
  static constexpr int kSplitKeep = (kK + 1) / 2;
  static constexpr int kMergeCount = kK / 4;
  static constexpr int kMergeCombined = kK / 2;

 public:
  class Handle {
   public:
    bool add(long key) {
      ++ctr_.add_calls;
      const bool ok = list_->do_add(*this, key);
      ctr_.adds += ok;
      return ok;
    }
    bool remove(long key) {
      ++ctr_.rem_calls;
      const bool ok = list_->remove_impl(*this, key, RemoveMode::kNormal);
      ctr_.rems += ok;
      return ok;
    }
    bool contains(long key) {
      ++ctr_.con_calls;
      const bool ok = list_->do_contains(*this, key);
      ctr_.cons += ok;
      return ok;
    }
    long range_scan(long lo, long hi, const KeySink& sink) {
      return counted_range_scan(*this, ctr_, lo, hi, sink);
    }
    std::vector<long> ascend(long from, std::size_t limit) {
      return counted_ascend(*this, ctr_, from, limit);
    }
    /// Uncounted paging primitive: the sharded k-way merge drives this
    /// per shard and counts once per logical scan at the set level.
    long scan_raw(long from, long hi, long limit, const KeySink& sink) {
      return list_->do_scan(*this, from, hi, limit, sink);
    }
    const OpCounters& counters() const { return ctr_; }

    /// Fault injection (see faults.hpp): op-level kinds run a
    /// deliberately botched remove of `key`; lease-level kinds crash
    /// the reclaim handle itself. Only destruction may follow.
    void abandon(faults::FaultKind k, long key) {
      list_->do_abandon(*this, k, key);
    }

    Handle(Handle&&) = default;  // MaybeOwned re-seats its pointer
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

   private:
    friend class UnrolledFamilyList;
    Handle(UnrolledFamilyList* list, ReclaimHandle rh)  // owning
        : list_(list), rh_(std::move(rh)) {}
    Handle(UnrolledFamilyList* list, ReclaimHandle* rh)  // borrowing
        : list_(list), rh_(rh) {}

    UnrolledFamilyList* list_;
    reclaim::MaybeOwned<ReclaimHandle> rh_;
    OpCounters ctr_;
    unsigned hint_tick_ = 0;  // throttles hint publishes (1 in 8 ops)
  };

  explicit UnrolledFamilyList(std::shared_ptr<Reclaim> domain = nullptr,
                              bool hints = true)
      : domain_(domain ? std::move(domain) : std::make_shared<Reclaim>()),
        head_(domain_->construct(kHeadAnchor)),
        hints_(hints) {
    domain_->track(head_);
  }
  /// Stand-alone list with an explicit allocation mode (slab twins).
  explicit UnrolledFamilyList(alloc::Mode mode, bool hints = true)
      : UnrolledFamilyList(std::make_shared<Reclaim>(mode), hints) {}
  UnrolledFamilyList(const UnrolledFamilyList&) = delete;
  UnrolledFamilyList& operator=(const UnrolledFamilyList&) = delete;

  ~UnrolledFamilyList() {
    if constexpr (Reclaim::kReclaims) {
      // The arena owns every node it tracked; a reclaiming policy only
      // owns the retired ones, so the still-linked chain (live or
      // marked) is ours to free. Handles are gone by now.
      Node* n = head_;
      while (n != nullptr) {
        Node* next = n->next.load().ptr;
        domain_->destroy(n);
        n = next;
      }
    }
  }

  /// Stand-alone use: lease a fresh per-thread handle from the domain.
  Handle make_handle() { return Handle(this, domain_->make_handle()); }

  /// Sharded use: borrow a per-thread reclaim handle the caller leased
  /// from this engine's (shared) domain. `shared` must outlive the
  /// returned handle.
  Handle make_handle(ReclaimHandle& shared) { return Handle(this, &shared); }

  // --- quiescent API ------------------------------------------------

  bool validate(std::string* err) const {
    const std::size_t bound = domain_->live_nodes() + 1;
    const Node* prev = nullptr;
    bool prev_marked = false;
    long last_live_key = kHeadAnchor;  // max key of the last unmarked node
    bool have_live = false;
    std::size_t steps = 0;
    for (const Node* n = head_->next.load_ptr(); n != nullptr;) {
      if (++steps > bound) {
        if (err) *err = "cycle: chain longer than total allocations";
        return false;
      }
      const auto v = n->next.load();
      if (prev != nullptr && n->key <= prev->key) {
        if (err) {
          std::ostringstream os;
          os << "anchors not increasing: " << prev->key << " before "
             << n->key;
          *err = os.str();
        }
        return false;
      }
      const int cnt = n->count.load(std::memory_order_relaxed);
      if (v.marked) {
        if (cnt != 0) {
          if (err) {
            std::ostringstream os;
            os << "marked node with " << cnt << " keys at anchor " << n->key;
            *err = os.str();
          }
          return false;
        }
      } else {
        if (cnt < 1 || cnt > kK) {
          if (err) {
            std::ostringstream os;
            os << "live node count " << cnt << " out of [1," << kK
               << "] at anchor " << n->key;
            *err = os.str();
          }
          return false;
        }
        long last = kHeadAnchor;
        for (int i = 0; i < cnt; ++i) {
          const long k = n->cells[i].load(std::memory_order_relaxed);
          if (k < n->key || (i > 0 && k <= last)) {
            if (err) {
              std::ostringstream os;
              os << "cells unsorted or below anchor " << n->key
                 << " (cell " << i << " = " << k << ")";
              *err = os.str();
            }
            return false;
          }
          last = k;
        }
        if (have_live && n->key <= last_live_key) {
          if (err) {
            std::ostringstream os;
            os << "anchor " << n->key << " not above predecessor max key "
               << last_live_key;
            *err = os.str();
          }
          return false;
        }
        last_live_key = last;
        have_live = true;
      }
      prev = n;
      prev_marked = v.marked;
      n = v.ptr;
    }
    (void)prev_marked;
    return true;
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Node* n = head_->next.load_ptr(); n != nullptr;) {
      const auto v = n->next.load();
      if (!v.marked)
        total += static_cast<std::size_t>(
            n->count.load(std::memory_order_relaxed));
      n = v.ptr;
    }
    return total;
  }

  std::vector<long> snapshot() const {
    std::vector<long> keys;
    for (const Node* n = head_->next.load_ptr(); n != nullptr;) {
      const auto v = n->next.load();
      if (!v.marked) {
        const int cnt = n->count.load(std::memory_order_relaxed);
        for (int i = 0; i < cnt; ++i)
          keys.push_back(n->cells[i].load(std::memory_order_relaxed));
      }
      n = v.ptr;
    }
    return keys;
  }

  /// Published-and-not-yet-freed node count (fat nodes, not keys); the
  /// churn tests bound it under the reclaiming policies.
  std::size_t allocated_nodes() const { return domain_->live_nodes(); }

  /// Quiescent-only: unmarked fat nodes currently linked (head
  /// sentinel excluded). The split/merge unit tests assert node-count
  /// transitions with this.
  std::size_t live_node_count() const {
    std::size_t nodes = 0;
    for (const Node* n = head_->next.load_ptr(); n != nullptr;) {
      const auto v = n->next.load();
      if (!v.marked) ++nodes;
      n = v.ptr;
    }
    return nodes;
  }

  std::size_t limbo_nodes() const {
    if constexpr (Reclaim::kReclaims)
      return domain_->limbo_nodes();
    else
      return 0;
  }

  std::size_t reap_crashed() {
    if constexpr (Reclaim::kReclaims)
      return domain_->reap_crashed();
    else
      return 0;
  }
  faults::BlastStats blast_stats() const {
    if constexpr (Reclaim::kReclaims)
      return domain_->blast_stats();
    else
      return {};
  }

  /// Test-only: break the sorted-cells invariant of the first live
  /// node (requires a node with >= 2 keys).
  void corrupt_order_for_test() {
    for (Node* n = head_->next.load_ptr(); n != nullptr;
         n = n->next.load_ptr()) {
      if (n->next.load().marked) continue;
      const int cnt = n->count.load(std::memory_order_relaxed);
      if (cnt < 2) continue;
      const long a = n->cells[0].load(std::memory_order_relaxed);
      const long b = n->cells[1].load(std::memory_order_relaxed);
      n->cells[0].store(b, std::memory_order_relaxed);
      n->cells[1].store(a, std::memory_order_relaxed);
      return;
    }
  }

 private:
  friend class Handle;

  enum class RemoveMode { kNormal, kAbandon, kLeaky };
  enum class Cov { kOk, kLost };

  struct Pos {
    Node* prev;  // covering candidate: last unmarked anchor < probe
    Node* cur;   // first unmarked anchor >= probe, physically adjacent
  };

  /// Version-validated read of one node: (mark, count, cells) coherent
  /// as of some instant inside the call. The mark only changes under
  /// the node's seqlock, so the version check covers it too.
  struct NodeView {
    std::uint64_t version;
    bool marked;
    Node* next;
    int count;
    long keys[kK];
  };

  static NodeView read_node(const Node* n) {
    NodeView out;
    for (;;) {
      const std::uint64_t v1 = n->version.load(std::memory_order_acquire);
      if (v1 & 1) continue;  // writer inside; spin
      out.version = v1;
      int cnt = n->count.load(std::memory_order_acquire);
      if (cnt < 0) cnt = 0;
      if (cnt > kK) cnt = kK;  // torn read; the version check rejects it
      out.count = cnt;
      // Acquire loads instead of the textbook acquire *fence* before
      // the re-check (TSan does not model fences): the validating load
      // below cannot be reordered before any of these, which is all
      // the fence bought us. On x86 both compile to plain loads.
      for (int i = 0; i < cnt; ++i)
        out.keys[i] = n->cells[i].load(std::memory_order_acquire);
      const auto nv = n->next.load();
      out.marked = nv.marked;
      out.next = nv.ptr;
      if (n->version.load(std::memory_order_relaxed) == v1) return out;
    }
  }

  static bool view_contains(const NodeView& v, long key) {
    for (int i = 0; i < v.count; ++i) {
      if (v.keys[i] == key) return true;
      if (v.keys[i] > key) return false;
    }
    return false;
  }

  static void lock_node(Node* n) {
    std::uint64_t v = n->version.load(std::memory_order_relaxed);
    for (;;) {
      if (v & 1) {
        v = n->version.load(std::memory_order_relaxed);
        continue;
      }
      if (n->version.compare_exchange_weak(v, v + 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed))
        return;
    }
  }
  static bool try_lock_node(Node* n) {
    std::uint64_t v = n->version.load(std::memory_order_relaxed);
    return !(v & 1) &&
           n->version.compare_exchange_strong(v, v + 1,
                                              std::memory_order_acq_rel,
                                              std::memory_order_relaxed);
  }
  static void unlock_node(Node* n) {
    n->version.store(n->version.load(std::memory_order_relaxed) + 1,
                     std::memory_order_release);
  }

  void retire_one(Handle& h, Node* n) {
    if constexpr (Reclaim::kReclaims) {
      hints_.purge(n);  // no slot may name n once retire can free it
      h.rh_->retire(n);
    }
  }

  /// Retire every node of the detached run [first, last): after the
  /// sweep CAS succeeded the frozen chain is reachable only by threads
  /// that entered it earlier, and only the detacher may retire it.
  void retire_run(Handle& h, Node* first, Node* last) {
    if constexpr (Reclaim::kReclaims) {
      Node* n = first;
      while (n != last) {
        Node* next = n->next.load().ptr;  // read before retire: a scan
        hints_.purge(n);
        h.rh_->retire(n);                 // may free n immediately
        n = next;
      }
    }
  }

  /// Validated hint-index candidate for a walk toward `probe`, or
  /// nullptr. A validated fat node (unmarked, anchor < probe) is a
  /// correct routing start: anchors increase along the chain, so the
  /// covering node sits at or after it. Same per-reclaimer validation
  /// as the singly family (hint_index.hpp).
  Node* hint_start(Handle& h, long probe) {
    if constexpr (kHazards) {
      return hints_.best(probe, [&](Node* n, int slot) {
        h.rh_->protect(hazard::kAnchor, n);
        if (hints_.slot_node(slot) != n) return false;
        return n->key < probe && !n->next.load().marked;
      });
    } else {
      return hints_.best(probe, [&](Node* n, int) {
        return n->key < probe && !n->next.load().marked;
      });
    }
  }

  /// Advertise the covering node, 1 op in 8 (hint_index.hpp caller
  /// contract: n covered by the caller's guard, observed unmarked
  /// during this op).
  void maybe_publish(Handle& h, Node* n) {
    if (!hints_.enabled()) return;
    if (n == nullptr || n == head_) return;
    if ((++h.hint_tick_ & 7u) != 0) return;
    hints_.publish(n->key, n);
  }

  /// Routing walk toward `probe` with adjacency (prev->next == cur at
  /// an observed instant; the final dead run swept). Route with
  /// probe = key + 1 and `prev` is the covering candidate: the last
  /// unmarked node with anchor <= key.
  Pos route(Handle& h, long probe) {
    if constexpr (kHazards) {
      const auto w =
          hazard::anchored_walk<Traversal::kMild, Backoff::kNone, true, Node>(
              *h.rh_, probe,
              [&] {
                Node* g = hint_start(h, probe);
                if (g == nullptr) return head_;
                ++h.ctr_.hint_hits;
                return g;  // validated anchor < probe, kAnchor-covered
              },
              [] {},
              [&](Node*, Node* first, Node* last) {
                retire_run(h, first, last);
              },
              &h.ctr_.restarts);
      return {w.prev, w.cur};
    } else {
      Node* start = hint_start(h, probe);
      if (start == nullptr)
        start = head_;
      else
        ++h.ctr_.hint_hits;
      for (;;) {
        Node* prev = start;
        if (prev != head_ && prev->next.load().marked) {
          // The start died since its validation. A marked fat node was
          // emptied, possibly merged *left* -- the covering node may
          // now sit behind it, so decay to the head, never walk on.
          start = head_;
          continue;
        }
        Node* left_next = prev->next.load().ptr;
        Node* cur = left_next;
        while (cur != nullptr) {
          const auto cv = cur->next.load();
          if (cv.marked) {
            cur = cv.ptr;  // pragmatic: just walk through it
            continue;
          }
          if (cur->key >= probe) break;
          prev = cur;
          left_next = cv.ptr;
          cur = cv.ptr;
        }
        if (left_next == cur) return {prev, cur};
        // Swing the whole dead run [left_next..cur) out in one CAS.
        if (prev->next.cas_clean(left_next, cur)) {
          retire_run(h, left_next, cur);
          return {prev, cur};
        }
        // Sweep CAS lost: resume from prev (dereference-safe -- arena
        // addresses are stable, EBR's pin covers the op) while it
        // lives; the dead-start check above handles the decay.
        ++h.ctr_.restarts;
        start = prev;
      }
    }
  }

  /// Read-only covering probe for contains: no CAS, no protection
  /// beyond the caller's (arena addresses are stable, EBR's guard
  /// covers the op). Returns the last unmarked node observed with
  /// anchor < probe. A hint start is sound here: all candidates are
  /// observed unmarked during this op with anchor < probe, and the
  /// walk's endpoint -- the last such node before the probe -- does
  /// not depend on where below the probe it began.
  Node* route_weak(Handle& h, long probe) {
    Node* prev = hint_start(h, probe);
    if (prev == nullptr || prev->next.load().marked)
      prev = head_;
    else
      ++h.ctr_.hint_hits;
    Node* cur = prev->next.load().ptr;
    while (cur != nullptr) {
      const auto cv = cur->next.load();
      if (cv.marked) {
        cur = cv.ptr;
        continue;
      }
      if (cur->key >= probe) break;
      prev = cur;
      cur = cv.ptr;
    }
    return prev;
  }

  /// Caller holds A's lock, A unmarked. Verify no *unmarked* successor
  /// has an anchor <= key (a split since the route would have moved the
  /// key's home right). Anchors increase along the chain, so only the
  /// prefix of successors with anchor <= key matters -- and any marked
  /// ones among them are empty corpses this helper sweeps on the way.
  /// kLost means the caller must re-route.
  Cov ensure_coverage(Handle& h, Node* a, long key) {
    for (;;) {
      Node* s = a->next.load().ptr;  // A unmarked => mark bit clear
      if (s == nullptr) return Cov::kOk;
      if constexpr (kHazards) {
        h.rh_->protect(hazard::kWalk, s);
        // A is locked and unmarked, so s can only have been retired if
        // it was first detached from A -- which this re-read detects.
        if (a->next.load().ptr != s) continue;
      }
      if (s->key > key) return Cov::kOk;
      const auto sv = s->next.load();
      if (!sv.marked) return Cov::kLost;
      // Marked blocker: frozen next, safe to detach with one CAS.
      if (a->next.cas_clean(s, sv.ptr)) retire_one(h, s);
    }
  }

  /// Detach-and-dispose walk for a node this thread just emptied and
  /// marked: route to its anchor so the kMutate sweep swings the run
  /// containing it. `leak` (kRetireSkipped) sends the victim to the
  /// domain's leak ledger instead of limbo; every other detached
  /// corpse retires normally. The victim pointer is only *compared*,
  /// never dereferenced -- by the time we re-walk it may already be
  /// someone else's retiree.
  void sweep_for(Handle& h, long anchor, Node* leak_victim) {
    auto dispose = [&](Node* first, Node* last) {
      if constexpr (Reclaim::kReclaims) {
        Node* n = first;
        while (n != last) {
          Node* next = n->next.load().ptr;
          hints_.purge(n);  // before the node can leave the live chain
          if (n == leak_victim)
            h.rh_->leak(n);
          else
            h.rh_->retire(n);
          n = next;
        }
      }
    };
    if constexpr (kHazards) {
      hazard::anchored_walk<Traversal::kMild, Backoff::kNone, true, Node>(
          *h.rh_, anchor, [&] { return head_; }, [] {},
          [&](Node*, Node* first, Node* last) { dispose(first, last); });
    } else {
      for (;;) {
        Node* prev = head_;
        Node* left_next = prev->next.load().ptr;
        Node* cur = left_next;
        while (cur != nullptr) {
          const auto cv = cur->next.load();
          if (cv.marked) {
            cur = cv.ptr;
            continue;
          }
          if (cur->key >= anchor) break;
          prev = cur;
          left_next = cv.ptr;
          cur = cv.ptr;
        }
        if (left_next == cur) return;  // someone else swept it
        if (prev->next.cas_clean(left_next, cur)) {
          dispose(left_next, cur);
          return;
        }
      }
    }
  }

  /// Caller holds A's lock, A unmarked and underfull. Absorb A's
  /// immediate unmarked successor if the pair fits in half a node.
  /// Locks s (trylock -- contention just skips the merge), empties and
  /// marks it under both locks, then unlinks and retires it.
  void try_merge(Handle& h, Node* a) {
    for (;;) {
      Node* s = a->next.load().ptr;
      if (s == nullptr) return;
      if constexpr (kHazards) {
        h.rh_->protect(hazard::kRun, s);
        if (a->next.load().ptr != s) continue;
      }
      if (s->next.load().marked) return;  // corpse; the next walk sweeps
      if (!try_lock_node(s)) return;
      const auto sv = s->next.load();
      if (sv.marked) {  // emptied between the check and our lock
        unlock_node(s);
        return;
      }
      const int ac = a->count.load(std::memory_order_relaxed);
      const int sc = s->count.load(std::memory_order_relaxed);
      if (sc == 0 || ac + sc > kMergeCombined) {
        unlock_node(s);
        return;
      }
      // All of s's keys are >= s->key > every key of A: append keeps
      // A's cells sorted and A's range still below s's old successor.
      for (int i = 0; i < sc; ++i)
        a->cells[ac + i].store(s->cells[i].load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
      a->count.store(ac + sc, std::memory_order_relaxed);
      for (int i = 0; i < sc; ++i)
        s->cells[i].store(kEmptyCell, std::memory_order_relaxed);
      s->count.store(0, std::memory_order_relaxed);
      s->next.fetch_or_mark();  // marked => empty; next frozen
      unlock_node(s);
      // A is locked and unmarked, so A->next is still s (splits of A
      // are excluded by the lock; sweeps only remove marked nodes and
      // s was unmarked until just now). CAS regardless -- a racing
      // sweeper may beat us to the unlink now that s is marked.
      if (a->next.cas_clean(s, sv.ptr)) retire_one(h, s);
      return;
    }
  }

  bool do_add(Handle& h, long key) {
    [[maybe_unused]] auto guard = h.rh_->guard();
    PRAGMALIST_CHECK(key != kHeadAnchor &&
                         key != std::numeric_limits<long>::max(),
                     "unrolled keys must lie in (LONG_MIN, LONG_MAX)");
    for (;;) {
      const Pos p = route(h, key + 1);
      Node* a = p.prev;
      if (a == head_) {
        // No covering node: a fresh node anchored at the key, linked
        // right after the head (below the first anchor, if any).
        Node* fresh = h.rh_->construct(key, p.cur);
        fresh->cells[0].store(key, std::memory_order_relaxed);
        fresh->count.store(1, std::memory_order_relaxed);
        if (head_->next.cas_clean(p.cur, fresh)) {
          domain_->track(fresh);
          return true;
        }
        h.rh_->dispose(fresh);  // never published, still private
        continue;
      }
      lock_node(a);
      if (a->next.load().marked) {  // emptied under us; re-route
        unlock_node(a);
        ++h.ctr_.restarts;
        continue;
      }
      if (ensure_coverage(h, a, key) == Cov::kLost) {
        unlock_node(a);
        ++h.ctr_.restarts;
        continue;
      }
      const int cnt = a->count.load(std::memory_order_relaxed);
      int idx = 0;
      while (idx < cnt) {
        const long c = a->cells[idx].load(std::memory_order_relaxed);
        if (c == key) {
          unlock_node(a);
          maybe_publish(h, a);  // a stays guard-covered past the unlock
          return false;  // present (live: the node is unmarked)
        }
        if (c > key) break;
        ++idx;
      }
      if (cnt < kK) {
        for (int i = cnt; i > idx; --i)
          a->cells[i].store(a->cells[i - 1].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
        a->cells[idx].store(key, std::memory_order_relaxed);
        a->count.store(cnt + 1, std::memory_order_relaxed);
        unlock_node(a);
        maybe_publish(h, a);
        return true;
      }
      // Split-right: K existing keys + the new one; the lower
      // kSplitKeep stay, the rest move to a fresh sibling anchored at
      // its lowest key. Link first, shrink after -- all under A's
      // lock, so no reader observes the transient duplication.
      long tmp[kK + 1];
      for (int i = 0, j = 0; i < cnt; ++i, ++j) {
        if (j == idx) tmp[j++] = key;
        tmp[j] = a->cells[i].load(std::memory_order_relaxed);
      }
      if (idx == cnt) tmp[cnt] = key;
      Node* b = h.rh_->construct(tmp[kSplitKeep]);
      for (int i = kSplitKeep; i <= kK; ++i)
        b->cells[i - kSplitKeep].store(tmp[i], std::memory_order_relaxed);
      b->count.store(kK + 1 - kSplitKeep, std::memory_order_relaxed);
      for (;;) {  // racing sweeps may move A's next under us
        Node* succ = a->next.load().ptr;
        b->next.store(succ);
        if (a->next.cas_clean(succ, b)) break;
      }
      for (int i = 0; i < kSplitKeep; ++i)
        a->cells[i].store(tmp[i], std::memory_order_relaxed);
      for (int i = kSplitKeep; i < kK; ++i)
        a->cells[i].store(kEmptyCell, std::memory_order_relaxed);
      a->count.store(kSplitKeep, std::memory_order_relaxed);
      unlock_node(a);
      domain_->track(b);
      maybe_publish(h, a);  // not b: the fresh sibling is unprotected
      return true;
    }
  }

  bool remove_impl(Handle& h, long key, RemoveMode mode) {
    [[maybe_unused]] auto guard = h.rh_->guard();
    if (key == kHeadAnchor || key == std::numeric_limits<long>::max())
      return false;
    for (;;) {
      const Pos p = route(h, key + 1);
      Node* a = p.prev;
      if (a == head_) return false;  // no node can cover the key
      lock_node(a);
      if (a->next.load().marked) {
        unlock_node(a);
        ++h.ctr_.restarts;
        continue;
      }
      if (ensure_coverage(h, a, key) == Cov::kLost) {
        unlock_node(a);
        ++h.ctr_.restarts;
        continue;
      }
      const int cnt = a->count.load(std::memory_order_relaxed);
      int idx = -1;
      for (int i = 0; i < cnt; ++i) {
        const long c = a->cells[i].load(std::memory_order_relaxed);
        if (c == key) {
          idx = i;
          break;
        }
        if (c > key) break;
      }
      if (idx < 0) {
        unlock_node(a);
        return false;
      }
      for (int i = idx; i + 1 < cnt; ++i)
        a->cells[i].store(a->cells[i + 1].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
      a->cells[cnt - 1].store(kEmptyCell, std::memory_order_relaxed);
      a->count.store(cnt - 1, std::memory_order_relaxed);
      if (cnt - 1 == 0) {
        // Last key out: mark under the lock (marked => empty), then
        // clean up per mode. kAbandon vanishes mid-removal -- the
        // marked node stays linked for the survivors' sweeps, the
        // cooperative-helping debt a crashed peer leaves behind.
        const long anchor = a->key;
        a->next.fetch_or_mark();
        unlock_node(a);
        if (mode == RemoveMode::kNormal)
          sweep_for(h, anchor, nullptr);
        else if (mode == RemoveMode::kLeaky)
          sweep_for(h, anchor, a);
        return true;
      }
      if (mode == RemoveMode::kNormal && cnt - 1 <= kMergeCount)
        try_merge(h, a);
      unlock_node(a);
      maybe_publish(h, a);  // still unmarked: it kept >= 1 key
      return true;
    }
  }

  /// Fault dispatch (Handle::abandon), mirroring the singly family:
  /// op-level kinds count as a remove attempt so the population
  /// conservation check keeps balancing across crashes. kMidOpAbandon
  /// skips all physical cleanup (no sweep, no merge); kRetireSkipped
  /// completes the unlink but leaks the node past limbo. Neither fires
  /// the fat-node-specific paths unless the remove actually empties
  /// its node -- a non-emptying faulted remove degrades to a plain
  /// remove, exactly like a failed unlink degrades in the singly
  /// family.
  void do_abandon(Handle& h, faults::FaultKind k, long key) {
    if (faults::is_op_fault(k)) {
      ++h.ctr_.rem_calls;
      h.ctr_.rems += k == faults::FaultKind::kMidOpAbandon
                         ? remove_impl(h, key, RemoveMode::kAbandon)
                         : remove_impl(h, key, RemoveMode::kLeaky);
    } else {
      h.rh_->abandon(k);
    }
  }

  bool do_contains(Handle& h, long key) {
    [[maybe_unused]] auto guard = h.rh_->guard();
    if (key == kHeadAnchor || key == std::numeric_limits<long>::max())
      return false;
    if constexpr (kHazards)
      return contains_hazard(h, key);
    else
      return contains_plain(h, key);
  }

  /// CAS-free contains (arena/EBR). A hit in a validated snapshot of
  /// an unmarked covering node is authoritative. A miss is confirmed
  /// only if a second route lands on the *same* node at the *same*
  /// version -- the cells provably did not change through the second
  /// route's observation instant, so the key was absent then. The
  /// 64-bit version cannot ABA.
  bool contains_plain(Handle& h, long key) {
    for (;;) {
      Node* a = route_weak(h, key + 1);
      if (a == head_) return false;  // no covering node observed
      const NodeView v = read_node(a);
      if (v.marked) {  // emptied under us; re-route
        ++h.ctr_.restarts;
        continue;
      }
      if (view_contains(v, key)) {
        maybe_publish(h, a);
        return true;
      }
      Node* a2 = route_weak(h, key + 1);
      if (a2 == a &&
          a->version.load(std::memory_order_acquire) == v.version)
        return false;
      ++h.ctr_.restarts;
    }
  }

  /// HP contains: anchored read-only walk, snapshot, then pin the
  /// covering node in the persistent kCursor cell (owner-tagged, the
  /// cursor engines' protocol) across a second walk. Same-node +
  /// same-version confirms the miss; the pin keeps the snapshot node
  /// allocated while the second walk runs.
  bool contains_hazard(Handle& h, long key) {
    auto hinted_start = [&] {
      Node* g = hint_start(h, key + 1);
      if (g == nullptr) return head_;
      ++h.ctr_.hint_hits;
      return g;  // validated anchor < probe, kAnchor-covered
    };
    for (;;) {
      const auto w1 =
          hazard::anchored_walk<Traversal::kMild, Backoff::kNone, false,
                                Node>(*h.rh_, key + 1, hinted_start, [] {},
                                      [](Node*, Node*, Node*) {},
                                      &h.ctr_.restarts);
      Node* a = w1.prev;
      if (a == head_) return false;
      const NodeView v = read_node(a);  // a is kAnchor-protected
      if (v.marked) {
        ++h.ctr_.restarts;
        continue;
      }
      if (view_contains(v, key)) {
        maybe_publish(h, a);  // kAnchor still covers a
        return true;
      }
      hazard::publish_cursor(*h.rh_, this, a);  // gapless: kAnchor live
      const auto w2 =
          hazard::anchored_walk<Traversal::kMild, Backoff::kNone, false,
                                Node>(*h.rh_, key + 1, hinted_start, [] {},
                                      [](Node*, Node*, Node*) {},
                                      &h.ctr_.restarts);
      const bool confirmed =
          w2.prev == a &&
          a->version.load(std::memory_order_acquire) == v.version;
      hazard::release_cursor(*h.rh_, this);
      if (confirmed) return false;
      ++h.ctr_.restarts;
    }
  }

  /// The scan primitive behind range_scan()/ascend(): emit live keys
  /// in [from, hi], at most `limit` (< 0 = unbounded). Per-node
  /// emission comes from a version-validated snapshot, so a node's
  /// keys are observed atomically; across nodes the usual per-key
  /// contract holds. Meeting a marked node restarts from the head
  /// (after one sweep attempt): merge-left may have moved its keys
  /// *behind* the scanner, and only a re-route can find them. The
  /// resume point makes restarts emission-idempotent, and each restart
  /// retired (or raced the retirement of) one corpse, which bounds
  /// them.
  long do_scan(Handle& h, long from, long hi, long limit,
               const KeySink& sink) {
    [[maybe_unused]] auto guard = h.rh_->guard();
    if (from > hi || limit == 0) return 0;
    if constexpr (kHazards)
      return scan_hazard(h, from, hi, limit, sink);
    else
      return scan_plain(h, from, hi, limit, sink);
  }

  long scan_plain(Handle& h, long from, long hi, long limit,
                  const KeySink& sink) {
    long emitted = 0;
    long next_from = from;  // first key position not yet observed
    for (;;) {
      Node* prev = head_;
      Node* cur = head_->next.load().ptr;
      bool restart = false;
      while (cur != nullptr) {
        if (cur->key > hi) return emitted;  // anchors only grow
        const NodeView v = read_node(cur);
        if (v.marked) {
          // prev->next == cur was observed directly (we restart at the
          // first marked node, so no run-walking happened); the corpse
          // has a frozen next, one CAS detaches it. Restarts go to the
          // head -- never a hint: merge-left may have moved this
          // node's keys *behind* any start below the resume point.
          if (prev->next.cas_clean(cur, v.next)) retire_one(h, cur);
          ++h.ctr_.restarts;
          restart = true;
          break;
        }
        for (int i = 0; i < v.count; ++i) {
          const long k = v.keys[i];
          if (k < next_from) continue;
          if (k > hi) return emitted;
          if (limit >= 0 && emitted >= limit) return emitted;
          sink(k);
          ++emitted;
          if (k == hi) return emitted;
          next_from = k + 1;
        }
        prev = cur;
        cur = v.next;
      }
      if (!restart) return emitted;  // clean end of chain
    }
  }

  /// Hazard flavor: kAnchor on the last live node, kWalk on the node
  /// being snapshotted, anchor revalidation before every snapshot --
  /// the same discipline as scan::hazard_scan, minus run-walking
  /// (marked nodes restart, as above, so kRun is never needed).
  long scan_hazard(Handle& h, long from, long hi, long limit,
                   const KeySink& sink) {
    long emitted = 0;
    long next_from = from;
    for (;;) {
      Node* prev = head_;  // the head sentinel is never marked
      h.rh_->protect(hazard::kAnchor, prev);
      Node* cur = prev->next.load().ptr;
      bool restart = false;
      while (cur != nullptr) {
        h.rh_->protect(hazard::kWalk, cur);
        {
          const auto av = prev->next.load();
          if (av.marked || av.ptr != cur) {
            ++h.ctr_.restarts;
            restart = true;
            break;
          }
        }
        if (cur->key > hi) return emitted;
        const NodeView v = read_node(cur);
        if (v.marked) {
          if (prev->next.cas_clean(cur, v.next)) retire_one(h, cur);
          ++h.ctr_.restarts;
          restart = true;
          break;
        }
        for (int i = 0; i < v.count; ++i) {
          const long k = v.keys[i];
          if (k < next_from) continue;
          if (k > hi) return emitted;
          if (limit >= 0 && emitted >= limit) return emitted;
          sink(k);
          ++emitted;
          if (k == hi) return emitted;
          next_from = k + 1;
        }
        prev = cur;
        h.rh_->protect(hazard::kAnchor, cur);  // kWalk still covers cur
        cur = v.next;
      }
      if (!restart) return emitted;
    }
  }

  std::shared_ptr<Reclaim> domain_;
  Node* head_;
  HintIndex<Node> hints_;
};

template <template <typename> class R>
using UnrolledK8ListWith = UnrolledFamilyList<8, R>;

using UnrolledK8List = UnrolledK8ListWith<reclaim::Arena>;
using UnrolledK8ListEbr = UnrolledK8ListWith<reclaim::Ebr>;
using UnrolledK8ListHp = UnrolledK8ListWith<reclaim::Hp>;

// iset.hpp matrix, compile-time: fat-node contains never CASes, but
// the version-confirm re-route means it is not restart-free anywhere.
static_assert(UnrolledK8List::kContainsCasFree &&
                  UnrolledK8ListEbr::kContainsCasFree &&
                  UnrolledK8ListHp::kContainsCasFree &&
                  !UnrolledK8List::kContainsRestartFree,
              "unrolled contains: CAS-free, version-confirm re-routes");

}  // namespace pragmalist::core
