// Wait-free shortcut-hint index: a fixed array of (key, node*) slots
// that lets the read path start a traversal at the greatest recently
// published node with key < target instead of at the head sentinel.
//
// The slot pair is *routing data, never truth*: the key field is a
// relaxed, possibly-torn copy used only to pick a candidate, and every
// candidate must be re-validated by the caller -- key/mark check under
// the caller's existing reclamation cover (arena: addresses are
// stable; EBR: the op's epoch pin; HP: one kAnchor publish plus a slot
// re-read, see best()). A stale hint therefore costs one failed
// validation and a decay to the next candidate, never correctness.
//
// Lifecycle protocol (all slot accesses that matter are seq_cst; the
// safety argument needs the single total order S):
//
//   publish(k, n)  -- caller guarantees n is covered by its guard and
//     was observed unmarked during the current op. Store the slot
//     (node seq_cst), then RE-CHECK n's mark with a no-op RMW
//     (MarkPtr::load_rmw): an RMW reads the latest value in n->next's
//     modification order, so it cannot miss a concurrent mark the way
//     a plain load can. If marked, self-clear the slot (CAS n -> null)
//     while the guard still covers n.
//   purge(n)       -- the retiring thread clears every slot holding n
//     *before* retire(n)/leak(n). With publish-store, re-check RMW and
//     purge all seq_cst, either publish <S purge (the purge's load
//     sees n and clears it) or the re-check sees the mark (mark <S
//     purge <S publish <S re-check would order the re-check after the
//     mark) and the publisher self-clears. Both ways, no slot names n
//     once its retirement can free it -- except transiently while some
//     publisher's guard still pins n alive.
//   best(k, valid) -- try candidates in descending key order, at most
//     one validation per slot (a tried-mask), so lookup is wait-free:
//     <= kSlots validations regardless of concurrent writers.
//
// Why a validated hint is then safe to dereference, per reclaimer, is
// the engines' argument (docs/ARCHITECTURE.md "Read path"): the short
// version is that an HP reader re-reads the slot *after* its kAnchor
// publish (protect <S purge <S retire means the retirer's hazard scan
// sees the protection), and an EBR reader pinned late enough to allow
// the free must have pinned after an epoch advance that happens-after
// the purge, so it reads the cleared slot.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

namespace pragmalist::core {

template <typename Node>
class HintIndex {
 public:
  static constexpr int kSlots = 8;

  explicit HintIndex(bool enabled = true) : enabled_(enabled) {}
  HintIndex(const HintIndex&) = delete;
  HintIndex& operator=(const HintIndex&) = delete;

  /// Runtime off-switch: the catalog's `/nohint` twin ids construct the
  /// engine with hints disabled so the A/B pricing is a pure read-path
  /// diff (same binary, same layout, no publish/lookup traffic).
  bool enabled() const { return enabled_; }

  /// Publish (key, n) into key's slot. Caller contract: n is covered by
  /// the caller's reclamation guard for the whole call and was observed
  /// unmarked during the current operation. See file comment for the
  /// re-check/self-clear rule.
  void publish(long key, Node* n) {
    if (!enabled_ || n == nullptr) return;
    Slot& s = slots_[slot_of(key)];
    s.key.store(key, std::memory_order_relaxed);
    s.node.store(n, std::memory_order_seq_cst);
    if (n->next.load_rmw().marked) {
      // n died before (or while) we advertised it: withdraw the hint
      // ourselves -- the retirer's purge may already have run and
      // missed our store. The guard still covers n, so the RMW above
      // and this CAS never touch freed memory.
      Node* expected = n;
      s.node.compare_exchange_strong(expected, nullptr,
                                     std::memory_order_seq_cst,
                                     std::memory_order_relaxed);
    }
  }

  /// Clear every slot naming n. MUST run before every retire(n) /
  /// leak(n) of a node that may ever have been published (engines call
  /// it on every retirement path; 8 relaxed loads make the miss case
  /// nearly free).
  void purge(Node* n) {
    if (n == nullptr) return;
    for (Slot& s : slots_) {
      if (s.node.load(std::memory_order_seq_cst) != n) continue;
      Node* expected = n;
      s.node.compare_exchange_strong(expected, nullptr,
                                     std::memory_order_seq_cst,
                                     std::memory_order_relaxed);
    }
  }

  /// Greatest validated candidate, or nullptr (start from the head).
  /// `valid(n, slot)` runs the caller's validation -- key/mark check
  /// under its guard; HP callers additionally kAnchor-protect n and
  /// re-read slot_node(slot) == n before dereferencing. Candidates are
  /// tried in descending routing-key order; each slot is tried at most
  /// once (decay chain: next hint, then head), so the lookup is
  /// wait-free.
  template <typename Validate>
  Node* best(long key, Validate&& valid) const {
    if (!enabled_) return nullptr;
    std::uint32_t tried = 0;
    while (tried != (1u << kSlots) - 1) {
      int pick = -1;
      long pick_key = std::numeric_limits<long>::min();
      Node* pick_node = nullptr;
      for (int i = 0; i < kSlots; ++i) {
        if (tried & (1u << i)) continue;
        // The node load must synchronize with the publisher's seq_cst
        // store: validation dereferences plain fields (key, the node's
        // construction), and the publish store is the only edge that
        // orders them after the node's initialization for a reader
        // that never walked to n. The routing key stays relaxed -- it
        // is never dereferenced, only compared.
        Node* n = slots_[i].node.load(std::memory_order_seq_cst);
        const long k = slots_[i].key.load(std::memory_order_relaxed);
        if (n == nullptr || k >= key) {
          // Empty, or routing key not below the target: useless this
          // lookup (the real check is on n->key during validation; the
          // routing key only prunes).
          tried |= 1u << i;
          continue;
        }
        if (pick < 0 || k > pick_key) {
          pick = i;
          pick_key = k;
          pick_node = n;
        }
      }
      if (pick < 0) return nullptr;
      tried |= 1u << static_cast<std::uint32_t>(pick);
      if (valid(pick_node, pick)) return pick_node;
    }
    return nullptr;
  }

  /// Seq_cst slot re-read for the HP validation handshake: a reader
  /// that protected n and still sees it here is ordered before any
  /// purge of n, hence before the retire that could free it.
  Node* slot_node(int slot) const {
    return slots_[slot].node.load(std::memory_order_seq_cst);
  }

 private:
  // One slot per cache line: publishers from different threads land on
  // different lines (slot_of spreads by key), and readers scanning all
  // eight pay a predictable eight-line touch.
  struct alignas(64) Slot {
    std::atomic<long> key{0};
    std::atomic<Node*> node{nullptr};
  };

  static std::size_t slot_of(long key) {
    // Fibonacci mix of the key's bits; top bits select the slot.
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull) >> 61);
  }

  Slot slots_[kSlots];
  const bool enabled_;
};

}  // namespace pragmalist::core
