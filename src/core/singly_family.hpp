// The singly-linked variants of the paper, one engine templated on the
// three design knobs the ablation bench isolates:
//
//   Traversal::kDraconic  -- Michael-style: a traversal may never pass a
//     marked node; it must unlink it first and restart from the head
//     whenever the unlink CAS fails. Readers pay for writers.
//   Traversal::kMild      -- the paper's pragmatic rule: marked nodes
//     are simply traversed; the whole dead run is swung out with one
//     CAS right before the position is used, and contains() never
//     performs a CAS at all.
//   Marking::kCas / kFetchOr -- logical deletion via CAS-retry on the
//     next pointer vs a single fetch_or of the mark bit (variant e).
//   Cursor::kPerHandle    -- each handle remembers the last live node
//     it stood on and starts the next search there when the target key
//     is larger; safe because an unmarked node is always still linked
//     and nodes are never freed mid-run.
//   Backoff::kExponential -- exponential backoff on retry loops.
//
// Instantiations (paper letters): a) DraconicList, b) SinglyList,
// d) SinglyCursorList, e) SinglyFetchOrList, plus the ablation-only
// SinglyCursorBackoffList.
#pragma once

#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/iset.hpp"
#include "src/core/list_base.hpp"

namespace pragmalist::core {

template <Traversal kTraversal, Marking kMarking, Cursor kCursor,
          Backoff kBackoff>
class SinglyFamilyList {
  struct Node {
    long key;
    MarkPtr<Node> next;
    Node* reg_next = nullptr;

    explicit Node(long k, Node* succ = nullptr) : key(k), next(succ) {}
  };

 public:
  class Handle {
   public:
    bool add(long key) {
      ++ctr_.add_calls;
      const bool ok = list_->do_add(*this, key);
      ctr_.adds += ok;
      return ok;
    }
    bool remove(long key) {
      ++ctr_.rem_calls;
      const bool ok = list_->do_remove(*this, key);
      ctr_.rems += ok;
      return ok;
    }
    bool contains(long key) {
      ++ctr_.con_calls;
      const bool ok = list_->do_contains(*this, key);
      ctr_.cons += ok;
      return ok;
    }
    const OpCounters& counters() const { return ctr_; }

   private:
    friend class SinglyFamilyList;
    explicit Handle(SinglyFamilyList* list) : list_(list) {}

    SinglyFamilyList* list_;
    OpCounters ctr_;
    Node* cursor_ = nullptr;
  };

  SinglyFamilyList() : head_(new Node(kSentinelKey)) {
    registry_.track(head_);
  }

  Handle make_handle() { return Handle(this); }

  // --- quiescent API ------------------------------------------------

  bool validate(std::string* err) const {
    return quiescent::validate_chain(head_, registry_.count() + 1, err);
  }
  std::size_t size() const { return quiescent::size(head_); }
  std::vector<long> snapshot() const { return quiescent::snapshot(head_); }

  /// Test-only: break the order invariant by swapping the keys of the
  /// first two physically linked nodes (requires >= 2 nodes).
  void corrupt_order_for_test() {
    Node* a = head_->next.load_ptr();
    if (a == nullptr) return;
    Node* b = a->next.load_ptr();
    if (b == nullptr) return;
    std::swap(a->key, b->key);
  }

 private:
  friend class Handle;

  static constexpr long kSentinelKey = std::numeric_limits<long>::min();

  struct Pos {
    Node* prev;  // live at observation, prev->next observed == cur
    Node* cur;   // first live node with key >= target, or nullptr
  };

  Node* start_node(Handle& h, long key) {
    if constexpr (kCursor == Cursor::kPerHandle) {
      Node* c = h.cursor_;
      if (c != nullptr && c != head_ && c->key < key &&
          !c->next.load().marked) {
        // Unmarked implies still physically linked (nodes are only ever
        // unlinked after being marked), so the suffix from c is a valid
        // place to begin.
        return c;
      }
      h.cursor_ = nullptr;
    }
    return head_;
  }

  void update_cursor(Handle& h, Node* n) {
    if constexpr (kCursor == Cursor::kPerHandle) h.cursor_ = n;
  }

  /// Locate `key` and guarantee physical adjacency prev->next == cur at
  /// some observed instant (required before an insert or unlink CAS).
  Pos search(Handle& h, long key) {
    Backoffer bo;
    Node* start = start_node(h, key);
    for (;;) {
      Node* prev = start;
      const auto pv = prev->next.load();
      if (pv.marked) {  // cursor start died between check and here
        start = head_;
        continue;
      }
      Node* left_next = pv.ptr;  // the value we will CAS against at prev
      Node* cur = left_next;
      bool restart = false;
      while (cur != nullptr) {
        const auto cv = cur->next.load();
        if (cv.marked) {
          if constexpr (kTraversal == Traversal::kDraconic) {
            // Never step over a dead node: unlink it now or start over.
            if (prev->next.cas_clean(cur, cv.ptr)) {
              left_next = cv.ptr;
              cur = cv.ptr;
              continue;
            }
            restart = true;
            break;
          } else {
            cur = cv.ptr;  // pragmatic: just walk through it
            continue;
          }
        }
        if (cur->key >= key) break;
        prev = cur;
        left_next = cv.ptr;
        cur = cv.ptr;
      }
      if (!restart) {
        if (left_next == cur) return {prev, cur};
        // Swing the whole dead run [left_next..cur) out in one CAS.
        if (prev->next.cas_clean(left_next, cur)) return {prev, cur};
        restart = true;
      }
      if constexpr (kBackoff == Backoff::kExponential) bo.pause();
      start = kTraversal == Traversal::kDraconic ? head_ : start_node(h, key);
    }
  }

  bool do_add(Handle& h, long key) {
    Backoffer bo;
    Node* node = nullptr;
    for (;;) {
      const Pos p = search(h, key);
      if (p.cur != nullptr && p.cur->key == key) {
        update_cursor(h, p.prev);
        return false;  // present (the node was live when observed)
      }
      if (node == nullptr) {
        node = new Node(key, p.cur);
        registry_.track(node);
      } else {
        node->next.store(p.cur);
      }
      if (p.prev->next.cas_clean(p.cur, node)) {
        update_cursor(h, node);
        return true;
      }
      if constexpr (kBackoff == Backoff::kExponential) bo.pause();
    }
  }

  bool do_remove(Handle& h, long key) {
    const Pos p = search(h, key);
    if (p.cur == nullptr || p.cur->key != key) {
      update_cursor(h, p.prev);
      return false;
    }
    bool won = false;
    Node* succ = nullptr;
    if constexpr (kMarking == Marking::kFetchOr) {
      const auto old = p.cur->next.fetch_or_mark();
      won = !old.marked;
      succ = old.ptr;
    } else {
      for (;;) {
        const auto cv = p.cur->next.load();
        if (cv.marked) break;  // another remover won
        if (p.cur->next.cas_mark(cv.ptr)) {
          won = true;
          succ = cv.ptr;
          break;
        }
      }
    }
    update_cursor(h, p.prev);
    if (!won) return false;
    // Physical unlink: one attempt in the mild variants (the next
    // search will sweep it), mandatory help in the draconic one.
    if (!p.prev->next.cas_clean(p.cur, succ)) {
      if constexpr (kTraversal == Traversal::kDraconic) search(h, key);
    }
    return true;
  }

  bool do_contains(Handle& h, long key) {
    if constexpr (kTraversal == Traversal::kDraconic) {
      // Draconic readers help clean up (and pay the restarts for it).
      const Pos p = search(h, key);
      return p.cur != nullptr && p.cur->key == key;
    } else {
      Node* prev = start_node(h, key);
      Node* cur = prev->next.load().ptr;
      while (cur != nullptr) {
        const auto cv = cur->next.load();
        if (cv.marked) {
          cur = cv.ptr;
          continue;
        }
        if (cur->key >= key) break;
        prev = cur;
        cur = cv.ptr;
      }
      update_cursor(h, prev == head_ ? nullptr : prev);
      return cur != nullptr && cur->key == key;
    }
  }

  Node* head_;
  AllocRegistry<Node> registry_;
};

using DraconicList = SinglyFamilyList<Traversal::kDraconic, Marking::kCas,
                                      Cursor::kNone, Backoff::kNone>;
using SinglyList = SinglyFamilyList<Traversal::kMild, Marking::kCas,
                                    Cursor::kNone, Backoff::kNone>;
using SinglyCursorList = SinglyFamilyList<Traversal::kMild, Marking::kCas,
                                          Cursor::kPerHandle, Backoff::kNone>;
using SinglyFetchOrList =
    SinglyFamilyList<Traversal::kMild, Marking::kFetchOr, Cursor::kPerHandle,
                     Backoff::kNone>;
using SinglyCursorBackoffList =
    SinglyFamilyList<Traversal::kMild, Marking::kCas, Cursor::kPerHandle,
                     Backoff::kExponential>;

}  // namespace pragmalist::core
