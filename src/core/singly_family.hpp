// The singly-linked variants of the paper, one engine templated on the
// three design knobs the ablation bench isolates plus a pluggable
// memory-reclamation policy:
//
//   Traversal::kDraconic  -- Michael-style: a traversal may never pass a
//     marked node; it must unlink it first and restart from the head
//     whenever the unlink CAS fails. Readers pay for writers.
//   Traversal::kMild      -- the paper's pragmatic rule: marked nodes
//     are simply traversed; the whole dead run is swung out with one
//     CAS right before the position is used, and contains() never
//     performs a CAS at all.
//   Marking::kCas / kFetchOr -- logical deletion via CAS-retry on the
//     next pointer vs a single fetch_or of the mark bit (variant e).
//   Cursor::kPerHandle    -- each handle remembers the last live node
//     it stood on and starts the next search there when the target key
//     is larger.
//   Backoff::kExponential -- exponential backoff on retry loops.
//
//   ReclaimPolicy (src/reclaim/) -- reclaim::Arena is the paper's
//     scheme: nothing is freed mid-run, stale pointers stay valid,
//     cursors are free. reclaim::Ebr wraps every operation in an epoch
//     pin; traversal is unchanged (the classic result that Harris-style
//     lists are safe under deferred reclamation) but cursors are
//     disabled, because a node pointer held across an unpinned gap may
//     be freed. reclaim::Hp runs the *anchored-validation* traversal
//     below; cursors survive via a dedicated hazard slot.
//
// Hazard traversal is the anchored-validation walk shared via
// core::hazard::anchored_walk (see list_base.hpp for the safety
// argument). The pragmatic variants keep their no-CAS contains()
// under HP -- they pay publish+revalidate per step instead.
//
// Instantiations (paper letters): a) DraconicList, b) SinglyList,
// d) SinglyCursorList, e) SinglyFetchOrList, plus the ablation-only
// SinglyCursorBackoffList. The variant x reclaimer grid is named in
// variants.hpp.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/hint_index.hpp"
#include "src/core/iset.hpp"
#include "src/core/list_base.hpp"
#include "src/reclaim/arena.hpp"
#include "src/reclaim/maybe_owned.hpp"

namespace pragmalist::core {

template <Traversal kTraversal, Marking kMarking, Cursor kCursor,
          Backoff kBackoff,
          template <typename> class ReclaimPolicy = reclaim::Arena>
class SinglyFamilyList {
  struct Node {
    long key;
    MarkPtr<Node> next;
    Node* reg_next = nullptr;

    explicit Node(long k, Node* succ = nullptr) : key(k), next(succ) {}
  };

 public:
  /// The reclamation *domain* this engine runs against. Stand-alone
  /// lists make their own; a sharded set makes one and hands it to
  /// every shard, so N shards cost one epoch clock / slot table.
  using Reclaim = ReclaimPolicy<Node>;
  using ReclaimHandle = typename Reclaim::Handle;

  /// Every node is acquired through the domain's pool, so the engine
  /// is eligible for slab mode (the catalog / sharded adapters gate
  /// alloc::Mode::kSlab on this trait).
  static constexpr bool kPoolAllocates = true;

  /// Progress traits, asserted across the grid in variants.hpp (see
  /// the matrix in iset.hpp). The mild variants answer contains()
  /// without ever issuing a CAS; on top of that, the arena/EBR walk is
  /// one forward pass -- no restart path exists in do_contains's plain
  /// branch at all. Draconic readers help unlink (CAS + restart on a
  /// lost CAS) by design; HP readers are CAS-free but bounded-restart
  /// (anchored_walk resumes from the last validated anchor).
  static constexpr bool kContainsCasFree = kTraversal == Traversal::kMild;
  static constexpr bool kContainsRestartFree =
      kContainsCasFree && !ReclaimPolicy<Node>::kHazards;

 private:
  static constexpr bool kHazards = Reclaim::kHazards;
  // Cursors hold a node pointer across operations, which needs
  // addresses that stay dereferenceable between ops: stable (arena)
  // addresses, or a hazard slot pinning the cursor node. EBR offers
  // neither, so the cursor knob degrades to start-from-head there.
  static constexpr bool kCursorOn =
      kCursor == Cursor::kPerHandle &&
      (Reclaim::kStableAddresses || Reclaim::kHazards);

 public:
  class Handle {
   public:
    bool add(long key) {
      ++ctr_.add_calls;
      const bool ok = list_->do_add(*this, key);
      ctr_.adds += ok;
      return ok;
    }
    bool remove(long key) {
      ++ctr_.rem_calls;
      const bool ok = list_->do_remove(*this, key);
      ctr_.rems += ok;
      return ok;
    }
    bool contains(long key) {
      ++ctr_.con_calls;
      const bool ok = list_->do_contains(*this, key);
      ctr_.cons += ok;
      return ok;
    }
    long range_scan(long lo, long hi, const KeySink& sink) {
      return counted_range_scan(*this, ctr_, lo, hi, sink);
    }
    std::vector<long> ascend(long from, std::size_t limit) {
      return counted_ascend(*this, ctr_, from, limit);
    }
    /// Uncounted paging primitive: the sharded k-way merge drives this
    /// per shard and counts once per logical scan at the set level.
    long scan_raw(long from, long hi, long limit, const KeySink& sink) {
      return list_->do_scan(*this, from, hi, limit, sink);
    }
    const OpCounters& counters() const { return ctr_; }

    /// Fault injection (see faults.hpp): op-level kinds run a
    /// deliberately botched remove of `key`; lease-level kinds crash
    /// the reclaim handle itself. Only destruction may follow.
    void abandon(faults::FaultKind k, long key) {
      list_->do_abandon(*this, k, key);
    }

    Handle(Handle&&) = default;  // MaybeOwned re-seats its pointer
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

   private:
    friend class SinglyFamilyList;
    Handle(SinglyFamilyList* list, ReclaimHandle rh)  // owning
        : list_(list), rh_(std::move(rh)) {}
    Handle(SinglyFamilyList* list, ReclaimHandle* rh)  // borrowing
        : list_(list), rh_(rh) {}

    SinglyFamilyList* list_;
    // Stand-alone handles own their reclaim handle; shard handles
    // borrow the one their worker leased for the whole sharded set.
    reclaim::MaybeOwned<ReclaimHandle> rh_;
    OpCounters ctr_;
    Node* cursor_ = nullptr;
    unsigned hint_tick_ = 0;  // throttles hint publishes (1 in 8 ops)
  };

  explicit SinglyFamilyList(std::shared_ptr<Reclaim> domain = nullptr,
                            bool hints = true)
      : domain_(domain ? std::move(domain) : std::make_shared<Reclaim>()),
        head_(domain_->construct(kSentinelKey)),
        hints_(hints) {
    domain_->track(head_);
  }
  /// Stand-alone list with an explicit allocation mode (slab twins).
  explicit SinglyFamilyList(alloc::Mode mode, bool hints = true)
      : SinglyFamilyList(std::make_shared<Reclaim>(mode), hints) {}
  SinglyFamilyList(const SinglyFamilyList&) = delete;
  SinglyFamilyList& operator=(const SinglyFamilyList&) = delete;

  ~SinglyFamilyList() {
    if constexpr (Reclaim::kReclaims) {
      // The arena owns every node it tracked; a reclaiming policy only
      // owns the retired ones, so the still-linked chain (live or
      // marked) is ours to free. Handles are gone by now.
      Node* n = head_;
      while (n != nullptr) {
        Node* next = n->next.load().ptr;
        domain_->destroy(n);
        n = next;
      }
    }
  }

  /// Stand-alone use: lease a fresh per-thread handle from the domain.
  Handle make_handle() { return Handle(this, domain_->make_handle()); }

  /// Sharded use: borrow a per-thread reclaim handle the caller leased
  /// from this engine's (shared) domain. `shared` must outlive the
  /// returned handle.
  Handle make_handle(ReclaimHandle& shared) { return Handle(this, &shared); }

  // --- quiescent API ------------------------------------------------

  bool validate(std::string* err) const {
    return quiescent::validate_chain(head_, domain_->live_nodes() + 1, err);
  }
  std::size_t size() const { return quiescent::size(head_); }
  std::vector<long> snapshot() const { return quiescent::snapshot(head_); }

  /// Published-and-not-yet-freed node count; the churn tests bound it
  /// under the reclaiming policies and watch it grow under the arena.
  /// Counts the whole *domain* -- all shards, when the domain is
  /// shared -- which is exactly what the footprint bounds want.
  std::size_t allocated_nodes() const { return domain_->live_nodes(); }

  /// Retired-and-not-yet-freed count (0 under the arena); the soak
  /// harness samples it as the limbo-depth series.
  std::size_t limbo_nodes() const {
    if constexpr (Reclaim::kReclaims)
      return domain_->limbo_nodes();
    else
      return 0;
  }

  /// Supervisor recovery and blast-radius metrics, forwarded to the
  /// reclamation domain (no-op / all-zero under the arena). See
  /// src/faults/faults.hpp.
  std::size_t reap_crashed() {
    if constexpr (Reclaim::kReclaims)
      return domain_->reap_crashed();
    else
      return 0;
  }
  faults::BlastStats blast_stats() const {
    if constexpr (Reclaim::kReclaims)
      return domain_->blast_stats();
    else
      return {};
  }

  /// Test-only: break the order invariant by swapping the keys of the
  /// first two physically linked nodes (requires >= 2 nodes).
  void corrupt_order_for_test() {
    Node* a = head_->next.load_ptr();
    if (a == nullptr) return;
    Node* b = a->next.load_ptr();
    if (b == nullptr) return;
    std::swap(a->key, b->key);
  }

 private:
  friend class Handle;

  static constexpr long kSentinelKey = std::numeric_limits<long>::min();

  struct Pos {
    Node* prev;  // live at observation, prev->next observed == cur
    Node* cur;   // first live node with key >= target, or nullptr
  };

  /// Forget the handle's cursor hint, releasing the persistent hazard
  /// cell only if this engine still owns it (core::hazard's
  /// owner-tagged cursor protocol; under a sharded set the cell may
  /// meanwhile guard another shard's cursor).
  void drop_cursor(Handle& h) {
    h.cursor_ = nullptr;
    if constexpr (kHazards) hazard::release_cursor(*h.rh_, this);
  }

  /// Validated hint-index candidate for a traversal toward `key`, or
  /// nullptr. Arena/EBR flavor: key/mark check only (arena addresses
  /// are stable; under EBR the caller's pin plus the purge/advance
  /// ordering keep a slot-visible node allocated -- see
  /// hint_index.hpp). HP flavor: kAnchor-protect the candidate, then
  /// re-read the slot seq_cst -- still naming it means the protection
  /// is ordered before any purge, hence before the retire that could
  /// free it -- then the same key/mark check. Either way the candidate
  /// stays covered through the caller's start-node pick.
  Node* hint_start(Handle& h, long key) {
    if constexpr (kHazards) {
      return hints_.best(key, [&](Node* n, int slot) {
        h.rh_->protect(hazard::kAnchor, n);
        if (hints_.slot_node(slot) != n) return false;
        return n->key < key && !n->next.load().marked;
      });
    } else {
      return hints_.best(key, [&](Node* n, int) {
        return n->key < key && !n->next.load().marked;
      });
    }
  }

  /// Advertise `n` in the hint index, 1 op in 8 (the slots go stale in
  /// well under 8 ops' time only under adversarial churn, and the
  /// publish is two seq_cst accesses -- too dear for every contains).
  /// Caller contract (hint_index.hpp): n covered by the caller's guard
  /// (HP: a hazard slot) and observed unmarked during this op.
  void maybe_publish(Handle& h, Node* n) {
    if (!hints_.enabled()) return;
    if (n == nullptr || n == head_) return;
    if ((++h.hint_tick_ & 7u) != 0) return;
    hints_.publish(n->key, n);
  }

  Node* start_node(Handle& h, long key) {
    Node* c = nullptr;
    if constexpr (kCursorOn) {
      if constexpr (kHazards) {
        // Another shard took the cell since our last op: our node is
        // unprotected and must not be dereferenced.
        if (!hazard::owns_cursor(*h.rh_, this)) h.cursor_ = nullptr;
      }
      c = h.cursor_;
      if (c != nullptr && !(c->key < key && !c->next.load().marked)) {
        // Unmarked implies still physically linked (nodes are only ever
        // unlinked after being marked), so the suffix from a validated
        // cursor is a valid place to begin. Under HP the cursor slot
        // keeps it allocated.
        drop_cursor(h);
        c = nullptr;
      }
    }
    Node* g = hint_start(h, key);
    Node* s = start::tighter(head_, c, g);
    if (s != head_ && s == g) ++h.ctr_.hint_hits;
    return s;
  }

  /// Remember `n` as the handle's next search hint. Under hazards the
  /// caller must still hold `n` in another slot (or pass the head/
  /// nullptr): publishing into the cursor slot while the old slot is
  /// live is what makes the protection gapless.
  void update_cursor(Handle& h, Node* n) {
    if constexpr (kCursorOn) {
      if (n == head_) n = nullptr;
      if constexpr (kHazards) hazard::publish_cursor(*h.rh_, this, n);
      h.cursor_ = n;
    }
  }

  /// Retire every node of the detached run [first, last): after the
  /// sweep CAS succeeded the frozen chain is reachable only by threads
  /// that entered it earlier, and only the detacher may retire it.
  void retire_run(Handle& h, Node* first, Node* last) {
    if constexpr (Reclaim::kReclaims) {
      Node* n = first;
      while (n != last) {
        Node* next = n->next.load().ptr;  // read before retire: a scan
        hints_.purge(n);  // no slot may name n once retire can free it
        h.rh_->retire(n);                  // may free n immediately
        n = next;
      }
    }
  }

  Pos search(Handle& h, long key) {
    if constexpr (kHazards)
      return search_hazard(h, key);
    else
      return search_plain(h, key);
  }

  /// Locate `key` and guarantee physical adjacency prev->next == cur at
  /// some observed instant (required before an insert or unlink CAS).
  /// Arena/EBR flavor: no per-step protection (arena: addresses are
  /// stable; EBR: the caller's epoch pin covers the whole operation).
  Pos search_plain(Handle& h, long key) {
    Backoffer bo;
    Node* start = start_node(h, key);
    for (;;) {
      Node* prev = start;
      const auto pv = prev->next.load();
      if (pv.marked) {  // cursor start died between check and here
        start = head_;
        continue;
      }
      Node* left_next = pv.ptr;  // the value we will CAS against at prev
      Node* cur = left_next;
      bool restart = false;
      while (cur != nullptr) {
        const auto cv = cur->next.load();
        if (cv.marked) {
          if constexpr (kTraversal == Traversal::kDraconic) {
            // Never step over a dead node: unlink it now or start over.
            if (prev->next.cas_clean(cur, cv.ptr)) {
              if constexpr (Reclaim::kReclaims) {
                hints_.purge(cur);
                h.rh_->retire(cur);
              }
              left_next = cv.ptr;
              cur = cv.ptr;
              continue;
            }
            restart = true;
            break;
          } else {
            cur = cv.ptr;  // pragmatic: just walk through it
            continue;
          }
        }
        if (cur->key >= key) break;
        prev = cur;
        left_next = cv.ptr;
        cur = cv.ptr;
      }
      if (!restart) {
        if (left_next == cur) return {prev, cur};
        // Swing the whole dead run [left_next..cur) out in one CAS.
        if (prev->next.cas_clean(left_next, cur)) {
          retire_run(h, left_next, cur);
          return {prev, cur};
        }
        restart = true;
      }
      // Lost the position (helping CAS or sweep CAS). The mild
      // variants resume from prev while it lives -- dereferenceable
      // here by construction (arena: stable addresses; EBR: the op's
      // pin) -- so the validated prefix is never re-walked; draconic
      // keeps its from-the-head discipline.
      ++h.ctr_.restarts;
      if constexpr (kBackoff == Backoff::kExponential) bo.pause();
      if constexpr (kTraversal == Traversal::kDraconic)
        start = head_;
      else
        start = !prev->next.load().marked ? prev : start_node(h, key);
    }
  }

  /// Hazard-pointer flavor of search: the shared anchored-validation
  /// walk. Returns with prev held in the anchor slot and cur in the
  /// walk slot; the caller may dereference both until its next search.
  Pos search_hazard(Handle& h, long key) {
    const auto w = hazard::anchored_walk<kTraversal, kBackoff, true, Node>(
        *h.rh_, key, [&] { return start_node(h, key); },
        [&] { drop_cursor(h); },
        [&](Node*, Node* first, Node* last) { retire_run(h, first, last); },
        &h.ctr_.restarts);
    return {w.prev, w.cur};
  }

  bool do_add(Handle& h, long key) {
    [[maybe_unused]] auto guard = h.rh_->guard();
    Backoffer bo;
    Node* node = nullptr;
    for (;;) {
      const Pos p = search(h, key);
      if (p.cur != nullptr && p.cur->key == key) {
        h.rh_->dispose(node);  // never published, still private
        update_cursor(h, p.prev);
        return false;  // present (the node was live when observed)
      }
      if (node == nullptr)
        node = h.rh_->construct(key, p.cur);
      else
        node->next.store(p.cur);
      if (p.prev->next.cas_clean(p.cur, node)) {
        domain_->track(node);
        if constexpr (kHazards) {
          update_cursor(h, p.prev);  // p.prev is anchor-protected; the
          maybe_publish(h, p.prev);  // fresh node is not in any slot
        } else {
          update_cursor(h, node);
          maybe_publish(h, node);
        }
        return true;
      }
      if constexpr (kBackoff == Backoff::kExponential) bo.pause();
    }
  }

  bool do_remove(Handle& h, long key) {
    [[maybe_unused]] auto guard = h.rh_->guard();
    const Pos p = search(h, key);
    if (p.cur == nullptr || p.cur->key != key) {
      update_cursor(h, p.prev);
      return false;
    }
    bool won = false;
    Node* succ = nullptr;
    if constexpr (kMarking == Marking::kFetchOr) {
      const auto old = p.cur->next.fetch_or_mark();
      won = !old.marked;
      succ = old.ptr;
    } else {
      for (;;) {
        const auto cv = p.cur->next.load();
        if (cv.marked) break;  // another remover won
        if (p.cur->next.cas_mark(cv.ptr)) {
          won = true;
          succ = cv.ptr;
          break;
        }
      }
    }
    update_cursor(h, p.prev);
    maybe_publish(h, p.prev);
    if (!won) return false;
    // Physical unlink: one attempt in the mild variants (the next
    // search will sweep it), mandatory help in the draconic one. A
    // successful CAS detached exactly p.cur, so we own its retirement.
    if (p.prev->next.cas_clean(p.cur, succ)) {
      if constexpr (Reclaim::kReclaims) {
        hints_.purge(p.cur);
        h.rh_->retire(p.cur);
      }
    } else {
      if constexpr (kTraversal == Traversal::kDraconic) search(h, key);
    }
    return true;
  }

  /// Fault dispatch (Handle::abandon). The op-level kinds count as a
  /// remove attempt in the handle's ledger -- their logical removal
  /// really happens, so the population conservation check
  /// (prefill + adds - rems == size) keeps balancing across crashes.
  /// They deliberately leave the reclaim lease healthy: each fault
  /// kind isolates one recovery path (combine with a lease-level
  /// abandon on another worker to test both at once).
  void do_abandon(Handle& h, faults::FaultKind k, long key) {
    if (faults::is_op_fault(k)) {
      ++h.ctr_.rem_calls;
      h.ctr_.rems += k == faults::FaultKind::kMidOpAbandon
                         ? do_remove_abandoned(h, key)
                         : do_remove_leaky(h, key);
    } else {
      h.rh_->abandon(k);
    }
  }

  /// kMidOpAbandon: win the remove's marking CAS, then vanish -- no
  /// unlink attempt, no draconic helping, no cursor update. The node
  /// stays marked-but-linked until a survivor's traversal sweeps it:
  /// exactly the cooperative-helping obligation a crashed peer leaves
  /// behind. Returns whether the logical remove took effect.
  bool do_remove_abandoned(Handle& h, long key) {
    [[maybe_unused]] auto guard = h.rh_->guard();
    const Pos p = search(h, key);
    if (p.cur == nullptr || p.cur->key != key) return false;
    if constexpr (kMarking == Marking::kFetchOr) {
      return !p.cur->next.fetch_or_mark().marked;
    } else {
      for (;;) {
        const auto cv = p.cur->next.load();
        if (cv.marked) return false;  // another remover won
        if (p.cur->next.cas_mark(cv.ptr)) return true;
      }
    }
  }

  /// kRetireSkipped: a complete remove -- mark and unlink -- that dies
  /// between the unlink CAS and the retire. The detached node goes to
  /// the domain's leak ledger instead of limbo; under the arena this
  /// degrades to a normal remove (retire was a no-op anyway). A failed
  /// unlink CAS leaves the node linked, degrading to kMidOpAbandon: a
  /// survivor sweeps and retires it normally, and nothing leaks.
  bool do_remove_leaky(Handle& h, long key) {
    [[maybe_unused]] auto guard = h.rh_->guard();
    const Pos p = search(h, key);
    if (p.cur == nullptr || p.cur->key != key) return false;
    bool won = false;
    Node* succ = nullptr;
    if constexpr (kMarking == Marking::kFetchOr) {
      const auto old = p.cur->next.fetch_or_mark();
      won = !old.marked;
      succ = old.ptr;
    } else {
      for (;;) {
        const auto cv = p.cur->next.load();
        if (cv.marked) break;
        if (p.cur->next.cas_mark(cv.ptr)) {
          won = true;
          succ = cv.ptr;
          break;
        }
      }
    }
    if (!won) return false;
    if (p.prev->next.cas_clean(p.cur, succ)) {
      if constexpr (Reclaim::kReclaims) {
        hints_.purge(p.cur);  // a leaked node is freed at teardown, but
        h.rh_->leak(p.cur);   // it leaves the live chain now
      }
    }
    return true;
  }

  bool do_contains(Handle& h, long key) {
    [[maybe_unused]] auto guard = h.rh_->guard();
    if constexpr (kTraversal == Traversal::kDraconic) {
      // Draconic readers help clean up (and pay the restarts for it).
      const Pos p = search(h, key);
      return p.cur != nullptr && p.cur->key == key;
    } else if constexpr (kHazards) {
      return contains_hazard(h, key);
    } else {
      // The fast lane (iset.hpp matrix): one forward pass from the
      // tighter of cursor/hint/head, no CAS, no restart path at all.
      Node* prev = start_node(h, key);
      Node* cur = prev->next.load().ptr;
      while (cur != nullptr) {
        const auto cv = cur->next.load();
        if (cv.marked) {
          cur = cv.ptr;
          continue;
        }
        if (cur->key >= key) break;
        prev = cur;
        cur = cv.ptr;
      }
      update_cursor(h, prev);
      maybe_publish(h, prev);
      return cur != nullptr && cur->key == key;
    }
  }

  /// The scan primitive behind range_scan()/ascend(): emit live keys
  /// in [from, hi], at most `limit` (< 0 = unbounded). Protocol per
  /// policy: the arena walks freely, EBR pins once for the whole scan
  /// (the guard below), HP runs the re-anchoring hazard scan. Scans
  /// are read-only on every variant -- even the draconic one -- and
  /// never touch the handle's cursor.
  long do_scan(Handle& h, long from, long hi, long limit,
               const KeySink& sink) {
    [[maybe_unused]] auto guard = h.rh_->guard();
    if constexpr (kHazards) {
      return scan::hazard_scan(
          *h.rh_, head_, from, hi, limit, sink,
          [&] {
            Node* g = hint_start(h, from);
            if (g == nullptr) return head_;
            ++h.ctr_.hint_hits;
            return g;  // validated key < from, kAnchor-covered
          },
          &h.ctr_.restarts);
    } else {
      // A validated hint with key < from is a correct pseudo-head for
      // the plain scan: every key it skips is below the range.
      Node* g = hint_start(h, from);
      if (g != nullptr) ++h.ctr_.hint_hits;
      return scan::plain_scan(g != nullptr ? g : head_, from, hi, limit,
                              sink);
    }
  }

  /// The mild contains under HP: still CAS-free (read-only walk), but
  /// every step pays the publish + anchor-revalidation.
  bool contains_hazard(Handle& h, long key) {
    const auto w =
        hazard::anchored_walk<Traversal::kMild, kBackoff, false, Node>(
            *h.rh_, key, [&] { return start_node(h, key); },
            [&] { drop_cursor(h); }, [](Node*, Node*, Node*) {},
            &h.ctr_.restarts);
    update_cursor(h, w.prev);
    maybe_publish(h, w.prev);  // kAnchor still covers w.prev
    return w.cur != nullptr && w.cur->key == key;
  }

  std::shared_ptr<Reclaim> domain_;
  Node* head_;
  HintIndex<Node> hints_;
};

using DraconicList = SinglyFamilyList<Traversal::kDraconic, Marking::kCas,
                                      Cursor::kNone, Backoff::kNone>;
using SinglyList = SinglyFamilyList<Traversal::kMild, Marking::kCas,
                                    Cursor::kNone, Backoff::kNone>;
using SinglyCursorList = SinglyFamilyList<Traversal::kMild, Marking::kCas,
                                          Cursor::kPerHandle, Backoff::kNone>;
using SinglyFetchOrList =
    SinglyFamilyList<Traversal::kMild, Marking::kFetchOr, Cursor::kPerHandle,
                     Backoff::kNone>;
using SinglyCursorBackoffList =
    SinglyFamilyList<Traversal::kMild, Marking::kCas, Cursor::kPerHandle,
                     Backoff::kExponential>;

}  // namespace pragmalist::core
