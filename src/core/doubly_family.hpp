// The doubly-linked variants of the paper (c and f): the singly-linked
// pragmatic list plus an unsynchronized back pointer per node. The back
// pointer is a *hint*, never part of the correctness argument for
// membership: it always points to some node with a strictly smaller key
// (initially the insert predecessor), so following back pointers from a
// dead node reaches a live node with key < target and the search can
// resume there instead of at the head. That turns the mild variant's
// restart-from-head on a failed cleanup CAS — and a handle's stale
// cursor — into a short local walk.
//
// The kPreciseBack knob (ablation id `doubly_cursor_noprec` turns it
// off) refreshes the survivor's back pointer after every successful
// unlink/insert so hints stay one hop tight; imprecise mode leaves the
// insert-time hint in place and walks farther on recovery.
//
// Reclamation: the back-pointer *hints are an arena artifact*. A back
// pointer is never cleaned when its target dies, so under a reclaiming
// policy it may name long-freed memory; the paper itself leans on the
// end-of-run arena here. With reclaim::Ebr or reclaim::Hp the engine
// therefore never dereferences back pointers (recover() degrades to a
// head restart) and the family behaves like the singly pragmatic list
// that still *maintains* the hints. Hazard traversal reuses the
// anchored-validation walk documented in list_base.hpp, pinning the
// successor around an unlink (in the between-searches-idle kRun slot)
// so the precise-back refresh can still write through it safely.
#pragma once

#include <atomic>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/hint_index.hpp"
#include "src/core/iset.hpp"
#include "src/core/list_base.hpp"
#include "src/reclaim/arena.hpp"
#include "src/reclaim/maybe_owned.hpp"

namespace pragmalist::core {

template <Cursor kCursor, bool kPreciseBack,
          template <typename> class ReclaimPolicy = reclaim::Arena>
class DoublyFamilyList {
  struct Node {
    long key;
    MarkPtr<Node> next;
    std::atomic<Node*> back;
    Node* reg_next = nullptr;

    Node(long k, Node* succ, Node* pred) : key(k), next(succ), back(pred) {}
  };

 public:
  /// The reclamation *domain* this engine runs against. Stand-alone
  /// lists make their own; a sharded set makes one and hands it to
  /// every shard, so N shards cost one epoch clock / slot table.
  using Reclaim = ReclaimPolicy<Node>;
  using ReclaimHandle = typename Reclaim::Handle;

  /// Every node is acquired through the domain's pool, so the engine
  /// is eligible for slab mode (the catalog / sharded adapters gate
  /// alloc::Mode::kSlab on this trait).
  static constexpr bool kPoolAllocates = true;

  /// Progress traits (iset.hpp matrix; asserted in variants.hpp). The
  /// family is always mild, so contains() never CASes; the arena/EBR
  /// walk is one forward pass, and under HP the anchored walk resumes
  /// from the last validated anchor (bounded restart).
  static constexpr bool kContainsCasFree = true;
  static constexpr bool kContainsRestartFree = !ReclaimPolicy<Node>::kHazards;

 private:
  static constexpr bool kHazards = Reclaim::kHazards;
  static constexpr bool kStable = Reclaim::kStableAddresses;
  static constexpr bool kCursorOn =
      kCursor == Cursor::kPerHandle && (kStable || kHazards);

 public:
  class Handle {
   public:
    bool add(long key) {
      ++ctr_.add_calls;
      const bool ok = list_->do_add(*this, key);
      ctr_.adds += ok;
      return ok;
    }
    bool remove(long key) {
      ++ctr_.rem_calls;
      const bool ok = list_->do_remove(*this, key);
      ctr_.rems += ok;
      return ok;
    }
    bool contains(long key) {
      ++ctr_.con_calls;
      const bool ok = list_->do_contains(*this, key);
      ctr_.cons += ok;
      return ok;
    }
    long range_scan(long lo, long hi, const KeySink& sink) {
      return counted_range_scan(*this, ctr_, lo, hi, sink);
    }
    std::vector<long> ascend(long from, std::size_t limit) {
      return counted_ascend(*this, ctr_, from, limit);
    }
    /// Uncounted paging primitive: the sharded k-way merge drives this
    /// per shard and counts once per logical scan at the set level.
    long scan_raw(long from, long hi, long limit, const KeySink& sink) {
      return list_->do_scan(*this, from, hi, limit, sink);
    }
    const OpCounters& counters() const { return ctr_; }

    /// Fault injection (see faults.hpp): op-level kinds run a
    /// deliberately botched remove of `key`; lease-level kinds crash
    /// the reclaim handle itself. Only destruction may follow.
    void abandon(faults::FaultKind k, long key) {
      list_->do_abandon(*this, k, key);
    }

    Handle(Handle&&) = default;  // MaybeOwned re-seats its pointer
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

   private:
    friend class DoublyFamilyList;
    Handle(DoublyFamilyList* list, ReclaimHandle rh)  // owning
        : list_(list), rh_(std::move(rh)) {}
    Handle(DoublyFamilyList* list, ReclaimHandle* rh)  // borrowing
        : list_(list), rh_(rh) {}

    DoublyFamilyList* list_;
    // Stand-alone handles own their reclaim handle; shard handles
    // borrow the one their worker leased for the whole sharded set.
    reclaim::MaybeOwned<ReclaimHandle> rh_;
    OpCounters ctr_;
    Node* cursor_ = nullptr;
    unsigned hint_tick_ = 0;  // throttles hint publishes (1 in 8 ops)
  };

  explicit DoublyFamilyList(std::shared_ptr<Reclaim> domain = nullptr,
                            bool hints = true)
      : domain_(domain ? std::move(domain) : std::make_shared<Reclaim>()),
        head_(domain_->construct(kSentinelKey, nullptr, nullptr)),
        hints_(hints) {
    domain_->track(head_);
  }
  /// Stand-alone list with an explicit allocation mode (slab twins).
  explicit DoublyFamilyList(alloc::Mode mode, bool hints = true)
      : DoublyFamilyList(std::make_shared<Reclaim>(mode), hints) {}
  DoublyFamilyList(const DoublyFamilyList&) = delete;
  DoublyFamilyList& operator=(const DoublyFamilyList&) = delete;

  ~DoublyFamilyList() {
    if constexpr (Reclaim::kReclaims) {
      Node* n = head_;
      while (n != nullptr) {
        Node* next = n->next.load().ptr;
        domain_->destroy(n);
        n = next;
      }
    }
  }

  /// Stand-alone use: lease a fresh per-thread handle from the domain.
  Handle make_handle() { return Handle(this, domain_->make_handle()); }

  /// Sharded use: borrow a per-thread reclaim handle the caller leased
  /// from this engine's (shared) domain. `shared` must outlive the
  /// returned handle.
  Handle make_handle(ReclaimHandle& shared) { return Handle(this, &shared); }

  // --- quiescent API ------------------------------------------------

  bool validate(std::string* err) const {
    if (!quiescent::validate_chain(head_, domain_->live_nodes() + 1, err))
      return false;
    if constexpr (kStable) {
      // Back-pointer sanity: every linked node's hint has a strictly
      // smaller key (or is the head sentinel). Only checkable under the
      // arena — with mid-run reclamation the hints may dangle and are
      // never dereferenced, by the engine or by us.
      for (const Node* n = head_->next.load_ptr(); n != nullptr;
           n = n->next.load().ptr) {
        const Node* b = n->back.load(std::memory_order_relaxed);
        if (b == nullptr) {
          if (err) *err = "node with null back pointer";
          return false;
        }
        if (b != head_ && b->key >= n->key) {
          if (err) *err = "back pointer does not decrease the key";
          return false;
        }
      }
    }
    return true;
  }
  std::size_t size() const { return quiescent::size(head_); }
  std::vector<long> snapshot() const { return quiescent::snapshot(head_); }

  std::size_t allocated_nodes() const { return domain_->live_nodes(); }

  /// Retired-and-not-yet-freed count (0 under the arena); the soak
  /// harness samples it as the limbo-depth series.
  std::size_t limbo_nodes() const {
    if constexpr (Reclaim::kReclaims)
      return domain_->limbo_nodes();
    else
      return 0;
  }

  /// Supervisor recovery and blast-radius metrics, forwarded to the
  /// reclamation domain (no-op / all-zero under the arena). See
  /// src/faults/faults.hpp.
  std::size_t reap_crashed() {
    if constexpr (Reclaim::kReclaims)
      return domain_->reap_crashed();
    else
      return 0;
  }
  faults::BlastStats blast_stats() const {
    if constexpr (Reclaim::kReclaims)
      return domain_->blast_stats();
    else
      return {};
  }

  /// Test-only: break the order invariant by swapping the keys of the
  /// first two physically linked nodes (requires >= 2 nodes).
  void corrupt_order_for_test() {
    Node* a = head_->next.load_ptr();
    if (a == nullptr) return;
    Node* b = a->next.load_ptr();
    if (b == nullptr) return;
    std::swap(a->key, b->key);
  }

 private:
  friend class Handle;

  static constexpr long kSentinelKey = std::numeric_limits<long>::min();

  struct Pos {
    Node* prev;
    Node* cur;
  };

  /// Walk back pointers from `n` until a live node (keys strictly
  /// decrease along the chain, so this terminates at the head). Under
  /// a reclaiming policy the hints may dangle, so a dead start falls
  /// back to the head instead.
  Node* recover(Node* n) const {
    if constexpr (kStable) {
      while (n != head_ && n->next.load().marked)
        n = n->back.load(std::memory_order_acquire);
      return n;
    } else {
      return (n != head_ && n->next.load().marked) ? head_ : n;
    }
  }

  /// Forget the handle's cursor hint, releasing the persistent hazard
  /// cell only if this engine still owns it (core::hazard's
  /// owner-tagged cursor protocol; under a sharded set the cell may
  /// meanwhile guard another shard's cursor).
  void drop_cursor(Handle& h) {
    h.cursor_ = nullptr;
    if constexpr (kHazards) hazard::release_cursor(*h.rh_, this);
  }

  /// Validated hint-index candidate, or nullptr -- same flavors and
  /// safety argument as the singly family (see its hint_start and
  /// hint_index.hpp): the back-pointer machinery is irrelevant here,
  /// a hint is validated forward (key/mark) like any anchor.
  Node* hint_start(Handle& h, long key) {
    if constexpr (kHazards) {
      return hints_.best(key, [&](Node* n, int slot) {
        h.rh_->protect(hazard::kAnchor, n);
        if (hints_.slot_node(slot) != n) return false;
        return n->key < key && !n->next.load().marked;
      });
    } else {
      return hints_.best(key, [&](Node* n, int) {
        return n->key < key && !n->next.load().marked;
      });
    }
  }

  /// Advertise `n` in the hint index, 1 op in 8 (hint_index.hpp caller
  /// contract: n covered by the caller's guard, observed unmarked
  /// during this op).
  void maybe_publish(Handle& h, Node* n) {
    if (!hints_.enabled()) return;
    if (n == nullptr || n == head_) return;
    if ((++h.hint_tick_ & 7u) != 0) return;
    hints_.publish(n->key, n);
  }

  Node* start_node(Handle& h, long key) {
    Node* c = nullptr;
    if constexpr (kCursorOn) {
      if constexpr (kHazards) {
        // Another shard took the cell since our last op: our node is
        // unprotected and must not be dereferenced.
        if (!hazard::owns_cursor(*h.rh_, this)) h.cursor_ = nullptr;
      }
      c = h.cursor_;
      if (c != nullptr && c->key < key) {
        c = recover(c);  // dead cursor: hop back instead of head restart
        if (c == head_) {
          c = nullptr;  // keep the cursor; the head floor wins below
        } else if (c->key >= key) {
          drop_cursor(h);
          c = nullptr;
        }
      } else if (c != nullptr) {
        drop_cursor(h);
        c = nullptr;
      }
    }
    Node* g = hint_start(h, key);
    Node* s = start::tighter(head_, c, g);
    if (s != head_ && s == g) ++h.ctr_.hint_hits;
    return s;
  }

  void update_cursor(Handle& h, Node* n) {
    if constexpr (kCursorOn) {
      if (n == head_) n = nullptr;
      if constexpr (kHazards) hazard::publish_cursor(*h.rh_, this, n);
      h.cursor_ = n;
    }
  }

  void retire_run(Handle& h, Node* first, Node* last) {
    if constexpr (Reclaim::kReclaims) {
      Node* n = first;
      while (n != last) {
        Node* next = n->next.load().ptr;
        hints_.purge(n);  // no slot may name n once retire can free it
        h.rh_->retire(n);
        n = next;
      }
    }
  }

  Pos search(Handle& h, long key) {
    if constexpr (kHazards)
      return search_hazard(h, key);
    else
      return search_plain(h, key);
  }

  Pos search_plain(Handle& h, long key) {
    Node* start = start_node(h, key);
    for (;;) {
      start = recover(start);
      Node* prev = start;
      const auto pv = prev->next.load();
      if (pv.marked) continue;  // died between recover and load; loop
      Node* left_next = pv.ptr;
      Node* cur = left_next;
      while (cur != nullptr) {
        const auto cv = cur->next.load();
        if (cv.marked) {
          cur = cv.ptr;
          continue;
        }
        if (cur->key >= key) break;
        prev = cur;
        left_next = cv.ptr;
        cur = cv.ptr;
      }
      if (left_next == cur) return {prev, cur};
      if (prev->next.cas_clean(left_next, cur)) {
        if constexpr (kPreciseBack) {
          if (cur != nullptr)
            cur->back.store(prev, std::memory_order_release);
        }
        retire_run(h, left_next, cur);
        return {prev, cur};
      }
      // Cleanup CAS lost: resume from prev (recover() hops back if prev
      // itself got marked) rather than from the head.
      ++h.ctr_.restarts;
      start = prev;
    }
  }

  /// The shared anchored-validation hazard walk (see list_base.hpp).
  /// No back pointer is ever followed; a restart goes to the cursor or
  /// head.
  Pos search_hazard(Handle& h, long key) {
    const auto w =
        hazard::anchored_walk<Traversal::kMild, Backoff::kNone, true, Node>(
            *h.rh_, key, [&] { return start_node(h, key); },
            [&] { drop_cursor(h); },
            [&](Node* prev, Node* first, Node* last) {
              if constexpr (kPreciseBack) {
                // last is walk-slot protected: retire cannot free it
                // under us.
                if (last != nullptr)
                  last->back.store(prev, std::memory_order_release);
              }
              retire_run(h, first, last);
            },
            &h.ctr_.restarts);
    return {w.prev, w.cur};
  }

  bool do_add(Handle& h, long key) {
    [[maybe_unused]] auto guard = h.rh_->guard();
    Node* node = nullptr;
    for (;;) {
      const Pos p = search(h, key);
      if (p.cur != nullptr && p.cur->key == key) {
        h.rh_->dispose(node);  // never published, still private
        update_cursor(h, p.prev);
        return false;
      }
      if (node == nullptr) {
        node = h.rh_->construct(key, p.cur, p.prev);
      } else {
        node->next.store(p.cur);
        node->back.store(p.prev, std::memory_order_relaxed);
      }
      if (p.prev->next.cas_clean(p.cur, node)) {
        domain_->track(node);
        if constexpr (kPreciseBack) {
          // p.cur is still covered (arena/EBR: stable or pinned;
          // HP: walk slot), so the refresh write cannot hit freed
          // memory even if p.cur was concurrently retired.
          if (p.cur != nullptr)
            p.cur->back.store(node, std::memory_order_release);
        }
        if constexpr (kHazards) {
          update_cursor(h, p.prev);  // p.prev is anchor-protected; the
          maybe_publish(h, p.prev);  // fresh node is not in any slot
        } else {
          update_cursor(h, node);
          maybe_publish(h, node);
        }
        return true;
      }
    }
  }

  bool do_remove(Handle& h, long key) {
    [[maybe_unused]] auto guard = h.rh_->guard();
    const Pos p = search(h, key);
    if (p.cur == nullptr || p.cur->key != key) {
      update_cursor(h, p.prev);
      return false;
    }
    bool won = false;
    Node* succ = nullptr;
    for (;;) {
      const auto cv = p.cur->next.load();
      if (cv.marked) break;
      if (p.cur->next.cas_mark(cv.ptr)) {
        won = true;
        succ = cv.ptr;
        break;
      }
    }
    update_cursor(h, p.prev);
    maybe_publish(h, p.prev);
    if (!won) return false;
    if constexpr (kHazards) {
      // Pin succ before the unlink (the kRun slot is free between
      // searches): if the CAS below succeeds, succ was still attached
      // when the hazard was already visible, so the precise-back
      // refresh may dereference it.
      if (succ != nullptr) h.rh_->protect(hazard::kRun, succ);
    }
    if (p.prev->next.cas_clean(p.cur, succ)) {
      if constexpr (kPreciseBack) {
        if (succ != nullptr)
          succ->back.store(p.prev, std::memory_order_release);
      }
      if constexpr (Reclaim::kReclaims) {
        hints_.purge(p.cur);
        h.rh_->retire(p.cur);
      }
    }
    return true;
  }

  /// Fault dispatch (Handle::abandon) -- same contract as the singly
  /// family: op-level kinds count as a remove attempt (the logical
  /// removal happens, so the population ledger keeps balancing) and
  /// leave the reclaim lease healthy; lease-level kinds crash it.
  void do_abandon(Handle& h, faults::FaultKind k, long key) {
    if (faults::is_op_fault(k)) {
      ++h.ctr_.rem_calls;
      h.ctr_.rems += k == faults::FaultKind::kMidOpAbandon
                         ? do_remove_abandoned(h, key)
                         : do_remove_leaky(h, key);
    } else {
      h.rh_->abandon(k);
    }
  }

  /// kMidOpAbandon: win the marking CAS, then vanish -- no unlink, no
  /// back-pointer refresh, no cursor update. Survivors sweep the node
  /// (and their recover() hops treat its stale hint like any other
  /// imprecise one). Returns whether the logical remove took effect.
  bool do_remove_abandoned(Handle& h, long key) {
    [[maybe_unused]] auto guard = h.rh_->guard();
    const Pos p = search(h, key);
    if (p.cur == nullptr || p.cur->key != key) return false;
    for (;;) {
      const auto cv = p.cur->next.load();
      if (cv.marked) return false;  // another remover won
      if (p.cur->next.cas_mark(cv.ptr)) return true;
    }
  }

  /// kRetireSkipped: a complete remove that dies between the unlink
  /// CAS and the retire -- the successor's back hint is also left
  /// stale (hints are correctness-neutral; a crashed peer maintains
  /// nothing). The detached node goes to the domain's leak ledger; a
  /// failed unlink degrades to kMidOpAbandon and nothing leaks.
  bool do_remove_leaky(Handle& h, long key) {
    [[maybe_unused]] auto guard = h.rh_->guard();
    const Pos p = search(h, key);
    if (p.cur == nullptr || p.cur->key != key) return false;
    bool won = false;
    Node* succ = nullptr;
    for (;;) {
      const auto cv = p.cur->next.load();
      if (cv.marked) break;
      if (p.cur->next.cas_mark(cv.ptr)) {
        won = true;
        succ = cv.ptr;
        break;
      }
    }
    if (!won) return false;
    if constexpr (kHazards) {
      // Pin succ as in do_remove: the unlink CAS publishing succ at
      // p.prev must not race its reclamation.
      if (succ != nullptr) h.rh_->protect(hazard::kRun, succ);
    }
    if (p.prev->next.cas_clean(p.cur, succ)) {
      if constexpr (Reclaim::kReclaims) {
        hints_.purge(p.cur);  // leaves the live chain now; freed at
        h.rh_->leak(p.cur);   // teardown via the leak ledger
      }
    }
    return true;
  }

  bool do_contains(Handle& h, long key) {
    [[maybe_unused]] auto guard = h.rh_->guard();
    if constexpr (kHazards) {
      return contains_hazard(h, key);
    } else {
      Node* prev = start_node(h, key);
      Node* cur = prev->next.load().ptr;
      while (cur != nullptr) {
        const auto cv = cur->next.load();
        if (cv.marked) {
          cur = cv.ptr;
          continue;
        }
        if (cur->key >= key) break;
        prev = cur;
        cur = cv.ptr;
      }
      update_cursor(h, prev);
      maybe_publish(h, prev);
      return cur != nullptr && cur->key == key;
    }
  }

  bool contains_hazard(Handle& h, long key) {
    const auto w =
        hazard::anchored_walk<Traversal::kMild, Backoff::kNone, false, Node>(
            *h.rh_, key, [&] { return start_node(h, key); },
            [&] { drop_cursor(h); }, [](Node*, Node*, Node*) {},
            &h.ctr_.restarts);
    update_cursor(h, w.prev);
    maybe_publish(h, w.prev);  // kAnchor still covers w.prev
    return w.cur != nullptr && w.cur->key == key;
  }

  /// The scan primitive behind range_scan()/ascend(). Back pointers
  /// are never involved: scans walk forward only, with the same
  /// protocol split as the singly family (arena free walk / one EBR
  /// pin per scan / re-anchoring HP scan), and never touch the cursor.
  long do_scan(Handle& h, long from, long hi, long limit,
               const KeySink& sink) {
    [[maybe_unused]] auto guard = h.rh_->guard();
    if constexpr (kHazards) {
      return scan::hazard_scan(
          *h.rh_, head_, from, hi, limit, sink,
          [&] {
            Node* g = hint_start(h, from);
            if (g == nullptr) return head_;
            ++h.ctr_.hint_hits;
            return g;  // validated key < from, kAnchor-covered
          },
          &h.ctr_.restarts);
    } else {
      // A validated hint with key < from is a correct pseudo-head: all
      // keys it skips are below the range.
      Node* g = hint_start(h, from);
      if (g != nullptr) ++h.ctr_.hint_hits;
      return scan::plain_scan(g != nullptr ? g : head_, from, hi, limit,
                              sink);
    }
  }

  std::shared_ptr<Reclaim> domain_;
  Node* head_;
  HintIndex<Node> hints_;
};

using DoublyList = DoublyFamilyList<Cursor::kNone, true>;
using DoublyCursorList = DoublyFamilyList<Cursor::kPerHandle, true>;
using DoublyCursorNoPrecList = DoublyFamilyList<Cursor::kPerHandle, false>;

}  // namespace pragmalist::core
