// The doubly-linked variants of the paper (c and f): the singly-linked
// pragmatic list plus an unsynchronized back pointer per node. The back
// pointer is a *hint*, never part of the correctness argument for
// membership: it always points to some node with a strictly smaller key
// (initially the insert predecessor), so following back pointers from a
// dead node reaches a live node with key < target and the search can
// resume there instead of at the head. That turns the mild variant's
// restart-from-head on a failed cleanup CAS — and a handle's stale
// cursor — into a short local walk.
//
// The kPreciseBack knob (ablation id `doubly_cursor_noprec` turns it
// off) refreshes the survivor's back pointer after every successful
// unlink/insert so hints stay one hop tight; imprecise mode leaves the
// insert-time hint in place and walks farther on recovery.
#pragma once

#include <atomic>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/iset.hpp"
#include "src/core/list_base.hpp"

namespace pragmalist::core {

template <Cursor kCursor, bool kPreciseBack>
class DoublyFamilyList {
  struct Node {
    long key;
    MarkPtr<Node> next;
    std::atomic<Node*> back;
    Node* reg_next = nullptr;

    Node(long k, Node* succ, Node* pred) : key(k), next(succ), back(pred) {}
  };

 public:
  class Handle {
   public:
    bool add(long key) {
      ++ctr_.add_calls;
      const bool ok = list_->do_add(*this, key);
      ctr_.adds += ok;
      return ok;
    }
    bool remove(long key) {
      ++ctr_.rem_calls;
      const bool ok = list_->do_remove(*this, key);
      ctr_.rems += ok;
      return ok;
    }
    bool contains(long key) {
      ++ctr_.con_calls;
      const bool ok = list_->do_contains(*this, key);
      ctr_.cons += ok;
      return ok;
    }
    const OpCounters& counters() const { return ctr_; }

   private:
    friend class DoublyFamilyList;
    explicit Handle(DoublyFamilyList* list) : list_(list) {}

    DoublyFamilyList* list_;
    OpCounters ctr_;
    Node* cursor_ = nullptr;
  };

  DoublyFamilyList() : head_(new Node(kSentinelKey, nullptr, nullptr)) {
    registry_.track(head_);
  }

  Handle make_handle() { return Handle(this); }

  // --- quiescent API ------------------------------------------------

  bool validate(std::string* err) const {
    if (!quiescent::validate_chain(head_, registry_.count() + 1, err))
      return false;
    // Back-pointer sanity: every linked node's hint has a strictly
    // smaller key (or is the head sentinel).
    for (const Node* n = head_->next.load_ptr(); n != nullptr;
         n = n->next.load().ptr) {
      const Node* b = n->back.load(std::memory_order_relaxed);
      if (b == nullptr) {
        if (err) *err = "node with null back pointer";
        return false;
      }
      if (b != head_ && b->key >= n->key) {
        if (err) *err = "back pointer does not decrease the key";
        return false;
      }
    }
    return true;
  }
  std::size_t size() const { return quiescent::size(head_); }
  std::vector<long> snapshot() const { return quiescent::snapshot(head_); }

  /// Test-only: break the order invariant by swapping the keys of the
  /// first two physically linked nodes (requires >= 2 nodes).
  void corrupt_order_for_test() {
    Node* a = head_->next.load_ptr();
    if (a == nullptr) return;
    Node* b = a->next.load_ptr();
    if (b == nullptr) return;
    std::swap(a->key, b->key);
  }

 private:
  friend class Handle;

  static constexpr long kSentinelKey = std::numeric_limits<long>::min();

  struct Pos {
    Node* prev;
    Node* cur;
  };

  /// Walk back pointers from `n` until a live node (keys strictly
  /// decrease along the chain, so this terminates at the head).
  Node* recover(Node* n) const {
    while (n != head_ && n->next.load().marked)
      n = n->back.load(std::memory_order_acquire);
    return n;
  }

  Node* start_node(Handle& h, long key) {
    if constexpr (kCursor == Cursor::kPerHandle) {
      Node* c = h.cursor_;
      if (c != nullptr && c != head_ && c->key < key) {
        c = recover(c);  // dead cursor: hop back instead of head restart
        if (c == head_ || c->key < key) return c;
      }
      h.cursor_ = nullptr;
    }
    return head_;
  }

  void update_cursor(Handle& h, Node* n) {
    if constexpr (kCursor == Cursor::kPerHandle) h.cursor_ = n;
  }

  Pos search(Handle& h, long key) {
    Node* start = start_node(h, key);
    for (;;) {
      start = recover(start);
      Node* prev = start;
      const auto pv = prev->next.load();
      if (pv.marked) continue;  // died between recover and load; loop
      Node* left_next = pv.ptr;
      Node* cur = left_next;
      while (cur != nullptr) {
        const auto cv = cur->next.load();
        if (cv.marked) {
          cur = cv.ptr;
          continue;
        }
        if (cur->key >= key) break;
        prev = cur;
        left_next = cv.ptr;
        cur = cv.ptr;
      }
      if (left_next == cur) return {prev, cur};
      if (prev->next.cas_clean(left_next, cur)) {
        if constexpr (kPreciseBack) {
          if (cur != nullptr)
            cur->back.store(prev, std::memory_order_release);
        }
        return {prev, cur};
      }
      // Cleanup CAS lost: resume from prev (recover() hops back if prev
      // itself got marked) rather than from the head.
      start = prev;
    }
  }

  bool do_add(Handle& h, long key) {
    Node* node = nullptr;
    for (;;) {
      const Pos p = search(h, key);
      if (p.cur != nullptr && p.cur->key == key) {
        update_cursor(h, p.prev);
        return false;
      }
      if (node == nullptr) {
        node = new Node(key, p.cur, p.prev);
        registry_.track(node);
      } else {
        node->next.store(p.cur);
        node->back.store(p.prev, std::memory_order_relaxed);
      }
      if (p.prev->next.cas_clean(p.cur, node)) {
        if constexpr (kPreciseBack) {
          if (p.cur != nullptr)
            p.cur->back.store(node, std::memory_order_release);
        }
        update_cursor(h, node);
        return true;
      }
    }
  }

  bool do_remove(Handle& h, long key) {
    const Pos p = search(h, key);
    if (p.cur == nullptr || p.cur->key != key) {
      update_cursor(h, p.prev);
      return false;
    }
    bool won = false;
    Node* succ = nullptr;
    for (;;) {
      const auto cv = p.cur->next.load();
      if (cv.marked) break;
      if (p.cur->next.cas_mark(cv.ptr)) {
        won = true;
        succ = cv.ptr;
        break;
      }
    }
    update_cursor(h, p.prev);
    if (!won) return false;
    if (p.prev->next.cas_clean(p.cur, succ)) {
      if constexpr (kPreciseBack) {
        if (succ != nullptr)
          succ->back.store(p.prev, std::memory_order_release);
      }
    }
    return true;
  }

  bool do_contains(Handle& h, long key) {
    Node* prev = start_node(h, key);
    Node* cur = prev->next.load().ptr;
    while (cur != nullptr) {
      const auto cv = cur->next.load();
      if (cv.marked) {
        cur = cv.ptr;
        continue;
      }
      if (cur->key >= key) break;
      prev = cur;
      cur = cv.ptr;
    }
    update_cursor(h, prev == head_ ? nullptr : prev);
    return cur != nullptr && cur->key == key;
  }

  Node* head_;
  AllocRegistry<Node> registry_;
};

using DoublyList = DoublyFamilyList<Cursor::kNone, true>;
using DoublyCursorList = DoublyFamilyList<Cursor::kPerHandle, true>;
using DoublyCursorNoPrecList = DoublyFamilyList<Cursor::kPerHandle, false>;

}  // namespace pragmalist::core
