// Shared machinery for the marked-pointer list variants:
//
//  * MarkPtr     -- an atomic next-pointer whose low bit is the Harris
//                   deletion mark. Marking a node's *own* next pointer
//                   logically deletes the node and simultaneously
//                   poisons any in-flight CAS that expected the
//                   unmarked value, which is what makes the pragmatic
//                   variants safe without draconic traversal rules.
//  * AllocRegistry -- the paper's reclamation scheme: every node ever
//                   allocated is threaded onto a lock-free registry and
//                   freed when the list is destroyed. Nothing is freed
//                   (or reused) mid-run, so traversals may hold stale
//                   pointers and CAS never suffers ABA. The
//                   hazard-pointer and epoch baselines exist precisely
//                   to price this choice against real reclamation.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace pragmalist::core {

inline constexpr std::uintptr_t kMarkBit = 1;

// Design knobs of the paper's variants; see singly_family.hpp for the
// full semantics of each.
enum class Traversal { kDraconic, kMild };
enum class Marking { kCas, kFetchOr };
enum class Cursor { kNone, kPerHandle };
enum class Backoff { kNone, kExponential };

/// Bounded exponential backoff for CAS retry loops (the ablation's
/// `backoff` knob). Starts at 16 pause iterations, doubles to 1024.
class Backoffer {
 public:
  void pause() {
    for (std::uint32_t i = 0; i < (1u << shift_); ++i) cpu_relax();
    if (shift_ < 10) ++shift_;
  }

 private:
  static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }
  std::uint32_t shift_ = 4;
};

template <typename Node>
class MarkPtr {
 public:
  struct Value {
    Node* ptr;
    bool marked;
  };

  MarkPtr() : bits_(0) {}
  explicit MarkPtr(Node* p) : bits_(reinterpret_cast<std::uintptr_t>(p)) {}

  Value load(std::memory_order order = std::memory_order_acquire) const {
    return unpack(bits_.load(order));
  }

  Node* load_ptr(std::memory_order order = std::memory_order_acquire) const {
    return unpack(bits_.load(order)).ptr;
  }

  /// Re-read via a no-op RMW (fetch_or 0, seq_cst). Unlike a plain
  /// load, an RMW reads the *latest* value in this cell's modification
  /// order, so it cannot lag behind a concurrent mark. The hint index
  /// publish protocol depends on exactly that (hint_index.hpp): the
  /// post-publish mark re-check must not miss a mark that a purge has
  /// already acted on.
  Value load_rmw() {
    return unpack(bits_.fetch_or(0, std::memory_order_seq_cst));
  }

  void store(Node* p, std::memory_order order = std::memory_order_release) {
    bits_.store(pack(p, false), order);
  }

  /// CAS from the *unmarked* pointer `expected` to the unmarked pointer
  /// `desired`. Fails if a mark appeared: this is the only way the
  /// variants ever modify a next pointer, so a marked node's next is
  /// frozen forever -- the key structural invariant.
  bool cas_clean(Node* expected, Node* desired) {
    std::uintptr_t e = pack(expected, false);
    return bits_.compare_exchange_strong(e, pack(desired, false),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }

  /// CAS from the unmarked `expected` to the *marked* same pointer:
  /// the logical-deletion step of the CAS-marking variants.
  bool cas_mark(Node* expected) {
    std::uintptr_t e = pack(expected, false);
    return bits_.compare_exchange_strong(e, pack(expected, true),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire);
  }

  /// Unconditionally set the mark bit; returns the previous raw value.
  /// One atomic instruction replaces the CAS retry loop -- the paper's
  /// fetch-or marking variant (e). The caller owns the deletion iff the
  /// bit was previously clear.
  Value fetch_or_mark() {
    return unpack(bits_.fetch_or(kMarkBit, std::memory_order_acq_rel));
  }

 private:
  static std::uintptr_t pack(Node* p, bool marked) {
    return reinterpret_cast<std::uintptr_t>(p) | (marked ? kMarkBit : 0);
  }
  static Value unpack(std::uintptr_t bits) {
    return {reinterpret_cast<Node*>(bits & ~kMarkBit),
            (bits & kMarkBit) != 0};
  }

  std::atomic<std::uintptr_t> bits_;
};

/// Treiber push of `n` onto the intrusive stack threaded through the
/// nodes' `reg_next` field. Shared by the alloc registry and the
/// baselines' retire/leftover stacks.
template <typename Node>
void push_intrusive(std::atomic<Node*>& head_atomic, Node* n) {
  Node* head = head_atomic.load(std::memory_order_relaxed);
  do {
    n->reg_next = head;
  } while (!head_atomic.compare_exchange_weak(head, n,
                                              std::memory_order_release,
                                              std::memory_order_relaxed));
}

/// Lock-free registry of every node a list ever allocated (via the
/// node's `reg_next` field); the owning list frees the lot on
/// destruction. See file comment for why this is the paper's scheme.
template <typename Node>
class AllocRegistry {
 public:
  AllocRegistry() = default;
  AllocRegistry(const AllocRegistry&) = delete;
  AllocRegistry& operator=(const AllocRegistry&) = delete;

  ~AllocRegistry() { free_all(); }

  void track(Node* n) {
    count_.fetch_add(1, std::memory_order_relaxed);
    push_intrusive(head_, n);
  }

  std::size_t count() const { return count_.load(std::memory_order_relaxed); }

  void free_all() {
    free_all([](Node* n) { delete n; });
  }

  /// Drain with a custom deleter -- domains whose nodes live in slab
  /// slots return them to the pool instead of `delete`ing.
  template <typename Free>
  void free_all(Free&& free_node) {
    Node* n = head_.exchange(nullptr, std::memory_order_acquire);
    while (n != nullptr) {
      Node* next = n->reg_next;
      free_node(n);
      n = next;
    }
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<Node*> head_{nullptr};
  std::atomic<std::size_t> count_{0};
};

/// The anchored-validation hazard-pointer traversal shared by the list
/// families (used whenever the reclamation policy sets kHazards).
///
/// Plain hazard pointers are incompatible with traversals that step
/// over marked nodes (Michael, TPDS'04): a marked node's next pointer
/// is frozen, so re-reading it can never reveal that its successor was
/// swept out and freed. The walk instead revalidates against the *run
/// anchor*: `prev` is the last live node (slot kAnchor) and `left_next`
/// the first node of the dead run hanging off it. Any sweep that
/// detaches -- and hence retires -- any node of that run must CAS
/// `prev->next` away from `left_next` (marked nexts are frozen; the
/// anchor cell is the run's only mutable attachment point). So after
/// publishing a hazard on the next node, one re-read of `prev->next`
/// suffices: still `left_next`-and-unmarked means nothing in the run
/// was retired before the hazard became visible; anything else
/// restarts. For the address compare to be meaningful, `left_next`
/// itself must stay hazard-protected for the whole run (slot kRun):
/// an unprotected run head could be freed and its address recycled by
/// a fresh insert, making both the anchor re-read and the final sweep
/// CAS succeed against a different, live node (ABA).
namespace hazard {

// Slot roles (reclaim::Hp::kSlots >= 4):
inline constexpr int kAnchor = 0;  // last live predecessor `prev`
inline constexpr int kWalk = 1;    // the node the walk stands on
inline constexpr int kRun = 2;     // current dead run's head; reused as
                                   // the doubly family's succ pin
inline constexpr int kCursor = 3;  // per-handle cursor, held across ops

// The persistent kCursor cell is a per-*thread* resource: under a
// sharded set many list engines borrow one reclaim handle, so the cell
// carries an owner tag (reclaim::Hp::Handle::cursor_owner) naming the
// engine whose cursor it currently protects. These three helpers are
// the whole protocol -- both list families use them verbatim, so the
// rules live once:
//   * only the owner may clear the cell (another engine's cursor may
//     be parked there);
//   * publishing stamps the caller as owner;
//   * an engine that is not the owner must treat its remembered cursor
//     node as unprotected and never dereference it.

/// True when `owner` (an engine) still holds the kCursor cell.
template <typename ReclaimHandle>
bool owns_cursor(const ReclaimHandle& rh, const void* owner) {
  return rh.cursor_owner == owner;
}

/// Clear the cell iff `owner` holds it.
template <typename ReclaimHandle>
void release_cursor(ReclaimHandle& rh, const void* owner) {
  if (rh.cursor_owner == owner) {
    rh.clear(kCursor);
    rh.cursor_owner = nullptr;
  }
}

/// Protect `n` in the cell and stamp `owner`; nullptr releases instead.
template <typename ReclaimHandle, typename Node>
void publish_cursor(ReclaimHandle& rh, const void* owner, Node* n) {
  if (n == nullptr) {
    release_cursor(rh, owner);
  } else {
    rh.protect(kCursor, n);
    rh.cursor_owner = owner;
  }
}

template <typename Node>
struct WalkPos {
  Node* prev;  // protected via kAnchor, prev->next observed == cur
               // (kMutate) or == some run reaching cur (read-only)
  Node* cur;   // protected via kWalk; first live node with key >=
               // target, or nullptr
};

/// Walk toward `key` from start_node(). kMutate: guarantee physical
/// adjacency prev->next == cur on return, sweeping the dead run with
/// one CAS if needed and invoking on_swept(prev, first, last) on
/// success (the caller retires the detached [first..last) -- purging
/// any hint-index slots first -- and refreshes back hints there; the
/// draconic inline unlink routes through the same hook with a
/// one-node run, so the caller's purge-before-retire rule covers it
/// too). Read-only (!kMutate): never CAS; cur may sit behind a dead
/// run. on_dead_start() runs when the start node died under the walk
/// (the caller drops its cursor); start_node() is then expected to
/// fall back to the head.
///
/// Bounded restart: a lost anchor (failed revalidation or sweep CAS)
/// no longer abandons the whole walk. `prev` is still kAnchor-
/// protected, so if it is still unmarked the next pass resumes from
/// it -- the validated prefix of the key space is never re-walked,
/// which is what turns an HP read's worst case from "restart from the
/// head unboundedly" into "local retry at the contention point". Only
/// a *dead* resume point decays to start_node() (cursor/hint/head).
/// Every lost anchor bumps *restarts when the caller passes a counter
/// (surfaced as OpCounters::restarts).
template <Traversal kTraversal, Backoff kBackoff, bool kMutate,
          typename Node, typename ReclaimHandle, typename StartFn,
          typename DeadStartFn, typename SweptFn>
WalkPos<Node> anchored_walk(ReclaimHandle& rh, long key, StartFn&& start_node,
                            DeadStartFn&& on_dead_start, SweptFn&& on_swept,
                            long* restarts = nullptr) {
  Backoffer bo;
  Node* resume = nullptr;  // last validated anchor, still in kAnchor
  for (;;) {
    const bool resumed = resume != nullptr;
    Node* prev;
    if (resumed) {
      prev = resume;  // kAnchor already covers it
      resume = nullptr;
    } else {
      prev = start_node();  // head, or a cursor/hint covered elsewhere
      rh.protect(kAnchor, prev);
    }
    const auto pv = prev->next.load();
    if (pv.marked) {
      if (resumed) continue;  // dead resume anchor: decay to start_node
      on_dead_start();  // cursor start died between its check and here
      continue;
    }
    Node* left_next = pv.ptr;
    Node* cur = left_next;
    bool restart = false;
    while (cur != nullptr) {
      rh.protect(kWalk, cur);
      {
        // Anchor revalidation: run still attached => cur not retired
        // before the hazard above became visible.
        const auto av = prev->next.load();
        if (av.marked || av.ptr != left_next) {
          restart = true;
          break;
        }
      }
      const auto cv = cur->next.load();
      if (cv.marked) {
        if constexpr (kTraversal == Traversal::kDraconic) {
          // Never step over a dead node: unlink it now or start over.
          // left_next == cur here, so the CAS expectation is covered
          // by the kWalk hazard. The detached one-node run goes
          // through on_swept like any other, so the caller's
          // purge-before-retire discipline holds here too.
          if (prev->next.cas_clean(cur, cv.ptr)) {
            on_swept(prev, cur, cv.ptr);
            left_next = cv.ptr;
            cur = cv.ptr;
            continue;
          }
          restart = true;
          break;
        } else {
          // Entering a run: pin its head for the run's duration (see
          // file comment -- the anchor compare and the sweep CAS are
          // ABA-unsafe otherwise). Gapless: kWalk still covers
          // cur == left_next at this point.
          if (cur == left_next) rh.protect(kRun, cur);
          cur = cv.ptr;  // pragmatic: walk through; validated at the top
          continue;
        }
      }
      if (cur->key >= key) break;
      prev = cur;
      rh.protect(kAnchor, cur);  // kWalk still covers cur
      left_next = cv.ptr;
      cur = cv.ptr;
    }
    if (!restart) {
      if (left_next == cur) return {prev, cur};
      if constexpr (!kMutate) {
        return {prev, cur};
      } else {
        // Swing the whole dead run [left_next..cur) out in one CAS.
        if (prev->next.cas_clean(left_next, cur)) {
          on_swept(prev, left_next, cur);
          return {prev, cur};
        }
      }
    }
    // Lost the anchor (revalidation or sweep CAS). prev stays kAnchor-
    // protected, so resume there next pass if it is still live.
    if (restarts != nullptr) ++*restarts;
    resume = prev;
    if constexpr (kBackoff == Backoff::kExponential) bo.pause();
  }
}

}  // namespace hazard

/// Traversal-start selection shared by the list families. Two
/// independent shortcut mechanisms can propose a start anchor for the
/// same search -- the per-handle cursor (Cursor::kPerHandle) and the
/// set-wide hint index (hint_index.hpp) -- and before this helper each
/// engine picked whichever it consulted first, so the two raced
/// instead of composing. The rule lives here, once: every candidate
/// the caller passes must already be *validated* (key < target,
/// unmarked, covered by the caller's guard -- under HP the cursor sits
/// in kCursor and the hint in kAnchor, so both stay protected through
/// the pick), and the tighter anchor -- the greatest key -- wins.
/// nullptr candidates mean "no proposal"; the head is the floor.
namespace start {

template <typename Node>
Node* tighter(Node* head, Node* cursor, Node* hint) {
  Node* best = head;
  if (cursor != nullptr && (best == head || cursor->key > best->key))
    best = cursor;
  if (hint != nullptr && (best == head || hint->key > best->key))
    best = hint;
  return best;
}

}  // namespace start

/// Ordered range scans shared by every marked-pointer list. `Node`
/// must expose `key` and a MarkPtr<Node> `next`. Three protocols, one
/// per reclamation capability (docs/ARCHITECTURE.md spells out the
/// safety arguments):
///
///   * arena  -- plain_scan, no protection: addresses are stable for
///     the list's lifetime, so the walk may dawdle freely.
///   * EBR    -- plain_scan inside ONE epoch pin covering the whole
///     scan (the caller's guard): nothing retired after the pin can be
///     freed until the scan unpins. Long scans therefore hold the
///     reclamation horizon -- the cost bench_scan prices against HP.
///   * HP     -- hazard_scan: the anchored-validation walk from
///     anchored_walk(), generalized to emit along the way. Per-step
///     publish + anchor revalidation, restart from the head on a lost
///     anchor, resuming *after* the last key already observed (the
///     restart invariant: no key is emitted twice, and each key of the
///     range is observed exactly once, at increasing positions).
///
/// All three skip marked nodes and never CAS: a scan is read-only even
/// on the draconic variants.
namespace scan {

/// Emit live keys in [from, hi] ascending, stopping after `limit`
/// emissions (limit < 0 = unbounded). Returns the number emitted.
/// Safe whenever node addresses stay valid for the walk's duration:
/// under the arena always, under EBR inside the caller's epoch pin,
/// and quiescently everywhere (snapshot() reuses it).
template <typename Node, typename Sink>
long plain_scan(const Node* head, long from, long hi, long limit,
                Sink&& sink) {
  long emitted = 0;
  for (const Node* n = head->next.load_ptr(); n != nullptr;) {
    const auto v = n->next.load();
    if (!v.marked) {
      if (n->key > hi || (limit >= 0 && emitted >= limit)) break;
      if (n->key >= from) {
        sink(n->key);
        ++emitted;
      }
    }
    n = v.ptr;
  }
  return emitted;
}

/// The hazard-pointer scan protocol. Walks with the anchored-validation
/// slot discipline of hazard::anchored_walk (kAnchor / kWalk / kRun;
/// the persistent kCursor cell is never touched, so a scan cannot
/// disturb the owning engine's cursor). On a failed anchor
/// revalidation the walk resumes from the last validated anchor while
/// that anchor is still live (it stays kAnchor-protected across the
/// restart) and only decays to start_node() -- a validated hint, or
/// the head -- when the anchor died; either way emission resumes past
/// `next_from`, the successor of the last emitted key, so re-walked
/// prefix keys (already observed in an earlier pass) are never
/// emitted twice and observation instants still increase along the
/// key space. start_node() must return either the head or a node
/// validated unmarked with key < the first position still wanted,
/// already covered by kAnchor. Each lost anchor bumps *restarts.
template <typename Node, typename ReclaimHandle, typename Sink,
          typename StartFn>
long hazard_scan(ReclaimHandle& rh, Node* head, long from, long hi,
                 long limit, Sink&& sink, StartFn&& start_node,
                 long* restarts = nullptr) {
  long emitted = 0;
  long next_from = from;  // first key position not yet observed
  Node* resume = nullptr;  // last validated anchor, still in kAnchor
  bool first_pass = true;
  for (;;) {
    bool restart = false;
    Node* prev;
    if (resume != nullptr && !resume->next.load().marked) {
      prev = resume;  // kAnchor already covers it
    } else if (first_pass) {
      prev = start_node();  // validated hint (kAnchor-covered) or head
      rh.protect(hazard::kAnchor, prev);
      // A hint start may die between its validation and here; the
      // in-loop anchor revalidation would catch it, but a dead start
      // should decay straight to the head, not spin.
      if (prev != head && prev->next.load().marked) {
        prev = head;
        rh.protect(hazard::kAnchor, prev);
      }
    } else {
      prev = head;  // the head sentinel is never marked
      rh.protect(hazard::kAnchor, prev);
    }
    first_pass = false;
    resume = nullptr;
    Node* left_next = prev->next.load().ptr;
    Node* cur = left_next;
    while (cur != nullptr) {
      rh.protect(hazard::kWalk, cur);
      {
        // Anchor revalidation: run still attached => cur not retired
        // before the hazard above became visible.
        const auto av = prev->next.load();
        if (av.marked || av.ptr != left_next) {
          restart = true;
          break;
        }
      }
      const auto cv = cur->next.load();
      if (cv.marked) {
        // Entering a dead run: pin its head for the run's duration
        // (same ABA argument as anchored_walk).
        if (cur == left_next) rh.protect(hazard::kRun, cur);
        cur = cv.ptr;
        continue;
      }
      if (cur->key > hi || (limit >= 0 && emitted >= limit)) return emitted;
      if (cur->key >= next_from) {
        sink(cur->key);
        ++emitted;
        if (cur->key == hi) return emitted;  // also dodges +1 overflow
        next_from = cur->key + 1;
      }
      prev = cur;
      rh.protect(hazard::kAnchor, cur);  // kWalk still covers cur
      left_next = cv.ptr;
      cur = cv.ptr;
    }
    if (!restart) return emitted;  // clean end of chain
    // Lost the anchor: resume from it while it lives (it stays in
    // kAnchor), decay to the head once it dies.
    if (restarts != nullptr) ++*restarts;
    resume = prev;
  }
}

/// Convenience overload: head start, no restart counter (quiescent
/// helpers and callers without a hint index).
template <typename Node, typename ReclaimHandle, typename Sink>
long hazard_scan(ReclaimHandle& rh, Node* head, long from, long hi,
                 long limit, Sink&& sink) {
  return hazard_scan(rh, head, from, hi, limit,
                     static_cast<Sink&&>(sink), [&] { return head; },
                     nullptr);
}

}  // namespace scan

/// Quiescent walkers shared by the list variants. `Node` must expose
/// `key` and a MarkPtr<Node> `next`.
namespace quiescent {

template <typename Node>
std::vector<long> snapshot(const Node* head) {
  // The full-range scan IS the quiescent snapshot walk; keep one
  // traversal, not two.
  std::vector<long> keys;
  scan::plain_scan(head, std::numeric_limits<long>::min(),
                   std::numeric_limits<long>::max(), /*limit=*/-1,
                   [&](long k) { keys.push_back(k); });
  return keys;
}

template <typename Node>
std::size_t size(const Node* head) {
  std::size_t count = 0;
  for (const Node* n = head->next.load_ptr(); n != nullptr;) {
    const auto v = n->next.load();
    if (!v.marked) ++count;
    n = v.ptr;
  }
  return count;
}

/// Physical-chain invariants every marked-pointer variant must satisfy
/// at quiescence:
///   1. keys never decrease along the chain;
///   2. of two adjacent equal keys at least one is marked (a dead
///      node can linger next to its live replacement, on either side);
///   3. no cycle (bounded by the number of tracked allocations).
template <typename Node>
bool validate_chain(const Node* head, std::size_t alloc_bound,
                    std::string* err) {
  const Node* prev = nullptr;
  std::size_t steps = 0;
  bool prev_marked = false;
  for (const Node* n = head->next.load_ptr(); n != nullptr;) {
    if (++steps > alloc_bound) {
      if (err) *err = "cycle: chain longer than total allocations";
      return false;
    }
    const auto v = n->next.load();
    if (prev != nullptr) {
      if (n->key < prev->key) {
        if (err) {
          std::ostringstream os;
          os << "order violated: " << prev->key << " before " << n->key;
          *err = os.str();
        }
        return false;
      }
      if (n->key == prev->key && !prev_marked && !v.marked) {
        if (err) {
          std::ostringstream os;
          os << "duplicate live key " << n->key;
          *err = os.str();
        }
        return false;
      }
    }
    prev = n;
    prev_marked = v.marked;
    n = v.ptr;
  }
  return true;
}

}  // namespace quiescent
}  // namespace pragmalist::core
