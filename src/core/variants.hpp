// Umbrella header: the six paper variants (a-f) plus the ablation-only
// configurations, exactly as the bench layer names them.
//
//   a) DraconicList        e) SinglyFetchOrList
//   b) SinglyList          f) DoublyCursorList
//   c) DoublyList             SinglyCursorBackoffList (ablation)
//   d) SinglyCursorList       DoublyCursorNoPrecList  (ablation)
//
// Each variant also exists under real mid-run reclamation (catalog ids
// `<variant>/ebr` and `<variant>/hp`); the `With` alias templates below
// spell the grid out once so the catalog and tests can name any cell.
#pragma once

#include "src/core/doubly_family.hpp"
#include "src/core/iset.hpp"
#include "src/core/singly_family.hpp"
#include "src/reclaim/reclaim.hpp"

namespace pragmalist::core {

template <template <typename> class R>
using DraconicListWith = SinglyFamilyList<Traversal::kDraconic, Marking::kCas,
                                          Cursor::kNone, Backoff::kNone, R>;
template <template <typename> class R>
using SinglyListWith = SinglyFamilyList<Traversal::kMild, Marking::kCas,
                                        Cursor::kNone, Backoff::kNone, R>;
template <template <typename> class R>
using DoublyListWith = DoublyFamilyList<Cursor::kNone, true, R>;
template <template <typename> class R>
using SinglyCursorListWith =
    SinglyFamilyList<Traversal::kMild, Marking::kCas, Cursor::kPerHandle,
                     Backoff::kNone, R>;
template <template <typename> class R>
using SinglyFetchOrListWith =
    SinglyFamilyList<Traversal::kMild, Marking::kFetchOr, Cursor::kPerHandle,
                     Backoff::kNone, R>;
template <template <typename> class R>
using DoublyCursorListWith = DoublyFamilyList<Cursor::kPerHandle, true, R>;

using DraconicListEbr = DraconicListWith<reclaim::Ebr>;
using SinglyListEbr = SinglyListWith<reclaim::Ebr>;
using DoublyListEbr = DoublyListWith<reclaim::Ebr>;
using SinglyCursorListEbr = SinglyCursorListWith<reclaim::Ebr>;
using SinglyFetchOrListEbr = SinglyFetchOrListWith<reclaim::Ebr>;
using DoublyCursorListEbr = DoublyCursorListWith<reclaim::Ebr>;

using DraconicListHp = DraconicListWith<reclaim::Hp>;
using SinglyListHp = SinglyListWith<reclaim::Hp>;
using DoublyListHp = DoublyListWith<reclaim::Hp>;
using SinglyCursorListHp = SinglyCursorListWith<reclaim::Hp>;
using SinglyFetchOrListHp = SinglyFetchOrListWith<reclaim::Hp>;
using DoublyCursorListHp = DoublyCursorListWith<reclaim::Hp>;

// The progress-guarantee matrix of iset.hpp, made compile-time law.
// Every mild variant's contains is CAS-free under every reclaimer; on
// arena/EBR it is additionally restart-free -- one forward pass by
// construction. A change that adds a CAS or a retry loop to those
// paths must flip the engine's trait and fails right here, instead of
// showing up as a latency regression three benches later.
static_assert(SinglyList::kContainsCasFree &&
                  SinglyListEbr::kContainsCasFree &&
                  SinglyListHp::kContainsCasFree,
              "mild singly contains must stay CAS-free");
static_assert(SinglyList::kContainsRestartFree &&
                  SinglyListEbr::kContainsRestartFree,
              "arena/EBR singly contains must stay restart-free");
static_assert(!SinglyListHp::kContainsRestartFree,
              "HP contains is bounded-restart, not restart-free");
static_assert(SinglyCursorList::kContainsRestartFree &&
                  SinglyFetchOrList::kContainsRestartFree &&
                  SinglyCursorListEbr::kContainsRestartFree &&
                  SinglyFetchOrListEbr::kContainsRestartFree,
              "cursor/fetch-or variants share the mild fast lane");
static_assert(!DraconicList::kContainsCasFree &&
                  !DraconicListEbr::kContainsCasFree &&
                  !DraconicListHp::kContainsCasFree,
              "draconic readers help unlink: CAS by design");
static_assert(DoublyList::kContainsCasFree &&
                  DoublyListEbr::kContainsCasFree &&
                  DoublyListHp::kContainsCasFree &&
                  DoublyCursorList::kContainsRestartFree &&
                  DoublyCursorListEbr::kContainsRestartFree &&
                  !DoublyCursorListHp::kContainsRestartFree,
              "doubly family: always mild, restart-free off hazards");

}  // namespace pragmalist::core
