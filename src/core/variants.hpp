// Umbrella header: the six paper variants (a-f) plus the ablation-only
// configurations, exactly as the bench layer names them.
//
//   a) DraconicList        e) SinglyFetchOrList
//   b) SinglyList          f) DoublyCursorList
//   c) DoublyList             SinglyCursorBackoffList (ablation)
//   d) SinglyCursorList       DoublyCursorNoPrecList  (ablation)
#pragma once

#include "src/core/doubly_family.hpp"
#include "src/core/iset.hpp"
#include "src/core/singly_family.hpp"
