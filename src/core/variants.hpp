// Umbrella header: the six paper variants (a-f) plus the ablation-only
// configurations, exactly as the bench layer names them.
//
//   a) DraconicList        e) SinglyFetchOrList
//   b) SinglyList          f) DoublyCursorList
//   c) DoublyList             SinglyCursorBackoffList (ablation)
//   d) SinglyCursorList       DoublyCursorNoPrecList  (ablation)
//
// Each variant also exists under real mid-run reclamation (catalog ids
// `<variant>/ebr` and `<variant>/hp`); the `With` alias templates below
// spell the grid out once so the catalog and tests can name any cell.
#pragma once

#include "src/core/doubly_family.hpp"
#include "src/core/iset.hpp"
#include "src/core/singly_family.hpp"
#include "src/reclaim/reclaim.hpp"

namespace pragmalist::core {

template <template <typename> class R>
using DraconicListWith = SinglyFamilyList<Traversal::kDraconic, Marking::kCas,
                                          Cursor::kNone, Backoff::kNone, R>;
template <template <typename> class R>
using SinglyListWith = SinglyFamilyList<Traversal::kMild, Marking::kCas,
                                        Cursor::kNone, Backoff::kNone, R>;
template <template <typename> class R>
using DoublyListWith = DoublyFamilyList<Cursor::kNone, true, R>;
template <template <typename> class R>
using SinglyCursorListWith =
    SinglyFamilyList<Traversal::kMild, Marking::kCas, Cursor::kPerHandle,
                     Backoff::kNone, R>;
template <template <typename> class R>
using SinglyFetchOrListWith =
    SinglyFamilyList<Traversal::kMild, Marking::kFetchOr, Cursor::kPerHandle,
                     Backoff::kNone, R>;
template <template <typename> class R>
using DoublyCursorListWith = DoublyFamilyList<Cursor::kPerHandle, true, R>;

using DraconicListEbr = DraconicListWith<reclaim::Ebr>;
using SinglyListEbr = SinglyListWith<reclaim::Ebr>;
using DoublyListEbr = DoublyListWith<reclaim::Ebr>;
using SinglyCursorListEbr = SinglyCursorListWith<reclaim::Ebr>;
using SinglyFetchOrListEbr = SinglyFetchOrListWith<reclaim::Ebr>;
using DoublyCursorListEbr = DoublyCursorListWith<reclaim::Ebr>;

using DraconicListHp = DraconicListWith<reclaim::Hp>;
using SinglyListHp = SinglyListWith<reclaim::Hp>;
using DoublyListHp = DoublyListWith<reclaim::Hp>;
using SinglyCursorListHp = SinglyCursorListWith<reclaim::Hp>;
using SinglyFetchOrListHp = SinglyFetchOrListWith<reclaim::Hp>;
using DoublyCursorListHp = DoublyCursorListWith<reclaim::Hp>;

}  // namespace pragmalist::core
