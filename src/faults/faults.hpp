// Deterministic fault injection: crash-faulty workers for the soak /
// linearizability tiers and the blast-radius metrics that price each
// reclaimer's exposure to them.
//
// The taxonomy models a request handler dying at the four places a
// crash hurts a lock-free list differently:
//
//   kAbortWithGuardHeld    -- the worker dies inside a critical
//     section: its EBR epoch pin (or its published hazard cells) is
//     never released. EBR's horizon stalls -- nothing retired since the
//     pin can be freed until a supervisor reaps the lease; HP merely
//     quarantines the handful of nodes the dead cells name.
//   kRetireSkipped         -- the worker unlinks a node but dies before
//     retiring it: a real leak, invisible to limbo. The domain
//     *attributes* it (leaked_nodes) so the footprint ledger still
//     balances: allocated == live + limbo + leaked (+ sentinels).
//   kDepartWithoutRelease  -- the worker dies between operations,
//     skipping the departure protocol: no final collect/scan, no EBR
//     orphan hand-off, no HP cell clear / slot release. Its limbo is
//     parked, unadoptable, until the lease is reaped.
//   kMidOpAbandon          -- the worker dies between the remove's
//     marking CAS and the unlink/helping step: the node is logically
//     deleted but physically linked, and only cooperative helping by
//     the survivors (the paper's core mechanism) ever cleans it up.
//
// A FaultPlan is a deterministic map: worker arrival id -> (op
// ordinal, kind). Same plan + same seed + same schedule = the same
// crashes at the same operations, which is what makes the fault tier a
// tier-1 test rather than a flaky soak. Injection happens through
// ISetHandle::abandon(kind, key) (see core/iset.hpp); recovery through
// the domain's reap_crashed() -- the supervisor operation a real
// service runs when it notices a dead request handler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

namespace pragmalist::faults {

enum class FaultKind {
  kAbortWithGuardHeld,
  kRetireSkipped,
  kDepartWithoutRelease,
  kMidOpAbandon,
};

inline constexpr FaultKind kAllFaultKinds[] = {
    FaultKind::kAbortWithGuardHeld,
    FaultKind::kRetireSkipped,
    FaultKind::kDepartWithoutRelease,
    FaultKind::kMidOpAbandon,
};
inline constexpr int kNumFaultKinds = 4;

constexpr std::string_view fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kAbortWithGuardHeld:
      return "guard-held";
    case FaultKind::kRetireSkipped:
      return "retire-skipped";
    case FaultKind::kDepartWithoutRelease:
      return "depart-no-release";
    case FaultKind::kMidOpAbandon:
      return "mid-op";
  }
  return "?";
}

/// True for the kinds injected *during* an operation (the engine owns
/// them); false for the kinds that crash the reclaim lease itself.
constexpr bool is_op_fault(FaultKind k) {
  return k == FaultKind::kMidOpAbandon || k == FaultKind::kRetireSkipped;
}

/// One planned crash: the worker dies when it has completed exactly
/// `op_ordinal` operations (so ordinal 0 = crash before the first op).
struct FaultSpec {
  long op_ordinal = 0;
  FaultKind kind = FaultKind::kMidOpAbandon;
};

/// Deterministic crash schedule keyed by worker arrival id (the soak
/// driver's DynamicTeam never reuses arrival ids, so "worker 3" names
/// the same lease on every run). At most one fault per worker: after
/// it fires, that worker is dead.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Explicit builder form (tests): worker `worker` crashes with
  /// `kind` after `op_ordinal` completed ops.
  FaultPlan& at(int worker, long op_ordinal, FaultKind kind) {
    plan_[worker] = FaultSpec{op_ordinal, kind};
    return *this;
  }

  /// Seeded mix: `n` faults cycling through `kinds`, on distinct
  /// workers drawn from [0, max_worker), at ordinals drawn from
  /// [min_ordinal, max_ordinal]. Same seed -> same plan.
  static FaultPlan mix(std::uint64_t seed, int n, int max_worker,
                       long min_ordinal, long max_ordinal,
                       const std::vector<FaultKind>& kinds = {
                           kAllFaultKinds,
                           kAllFaultKinds + kNumFaultKinds}) {
    FaultPlan p;
    if (n <= 0 || max_worker <= 0 || kinds.empty()) return p;
    if (n > max_worker) n = max_worker;
    std::uint64_t x = seed;
    const long span = max_ordinal >= min_ordinal
                          ? max_ordinal - min_ordinal + 1
                          : 1;
    for (int i = 0; i < n; ++i) {
      // Distinct workers: draw until unused (n <= max_worker, so this
      // terminates; splitmix64 below has full 2^64 period).
      int w;
      do {
        w = static_cast<int>(splitmix64(x) %
                             static_cast<std::uint64_t>(max_worker));
      } while (p.plan_.count(w) != 0);
      const long ordinal =
          min_ordinal +
          static_cast<long>(splitmix64(x) % static_cast<std::uint64_t>(span));
      p.at(w, ordinal, kinds[static_cast<std::size_t>(i) % kinds.size()]);
    }
    return p;
  }

  /// The planned crash for this worker, or nullptr if it is
  /// well-behaved.
  const FaultSpec* find(int worker) const {
    const auto it = plan_.find(worker);
    return it == plan_.end() ? nullptr : &it->second;
  }

  std::size_t size() const { return plan_.size(); }
  bool empty() const { return plan_.empty(); }

  int count(FaultKind k) const {
    int n = 0;
    for (const auto& [w, spec] : plan_)
      if (spec.kind == k) ++n;
    return n;
  }

  const std::map<int, FaultSpec>& entries() const { return plan_; }

 private:
  // Standalone splitmix64 so this header (included by core/iset.hpp)
  // depends on nothing but the standard library.
  static std::uint64_t splitmix64(std::uint64_t& x) {
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d649bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::map<int, FaultSpec> plan_;
};

/// Per-domain blast-radius snapshot: what the crashes have cost so
/// far. Safe to sample while workers run (all counters are relaxed
/// atomics domain-side); the soak sampler records one per tick.
struct BlastStats {
  // Nodes unlinked but never retired (kRetireSkipped), attributed by
  // the domain. They stay allocated until domain teardown and are
  // *excluded* from limbo: footprint == live + limbo + leaked.
  std::size_t leaked_nodes = 0;
  // Abandoned leases not yet reaped. Each occupies a slot and, for the
  // guard-held kind under EBR, stalls the reclamation horizon.
  std::size_t crashed_slots = 0;
  // Hazard cells still published by crashed leases (HP only): each
  // quarantines at most one node per scan until the lease is reaped.
  std::size_t leaked_cells = 0;
  // Retired-not-freed nodes parked on crashed leases -- counted inside
  // limbo_nodes() but unadoptable until reap_crashed().
  std::size_t parked_limbo = 0;
  // EBR only: global epoch minus the reclamation horizon
  // (min pinned epoch). A live abandoned pin holds this at >= 1
  // forever; 0 means the horizon is current.
  std::uint64_t horizon_lag = 0;
  // Slab mode only: distinct slabs pinned live by leaked_nodes. A
  // leaked slot holds its whole 16 KiB slab out of release_empty_slabs()
  // until domain teardown -- the slab-granular cost of a node leak.
  std::size_t leaked_slabs = 0;
};

}  // namespace pragmalist::faults
