// The shard mapper: a pure function from key to shard index, shared by
// the sharded set (routing operations), the workload layer (predicting
// where a key stream lands), and the reporting helpers (attributing
// per-shard load). One definition so every layer agrees on the
// partition.
//
// Keys are mixed with a Fibonacci multiplicative hash (the golden-ratio
// multiplier 2^64/phi) and folded high-into-low before the modulo:
// bench key universes are dense integer ranges [0, u), and an unmixed
// `key % shards` would stripe neighbouring keys across shards --
// defeating exactly the locality experiments (cursors, zipf skew) the
// benches run. After mixing, the map is uniform over dense ranges yet
// still deterministic: a given key always lands on the same shard, so
// a zipf-skewed stream concentrates its hot ranks on a few *hot
// shards* -- the load-imbalance scenario the shard-load reports exist
// to show.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pragmalist::shard {

/// 2^64 / golden ratio, the standard Fibonacci-hash multiplier.
inline constexpr std::uint64_t kShardMixer = 0x9E3779B97F4A7C15ull;

/// Shard index of `key` in a `shards`-way partition (shards >= 1).
inline std::size_t shard_of(long key, std::size_t shards) {
  std::uint64_t x = static_cast<std::uint64_t>(key) * kShardMixer;
  x ^= x >> 32;  // fold: the multiplier's entropy sits in the high bits
  return static_cast<std::size_t>(x % shards);
}

}  // namespace pragmalist::shard
