// Hash-sharded set: N independent lists of one engine type behind a
// single set interface. The key space is partitioned by
// shard::shard_of, so each shard is a shorter, less contended list and
// aggregate throughput scales past the single-list ceiling.
//
// The part that is *not* a trivial fan-out is reclamation. All shards
// share ONE reclamation domain (the engines' shared_ptr<Reclaim>
// constructor parameter exists for this), and every worker leases ONE
// per-thread reclaim handle which all of its per-shard engine handles
// borrow (Engine::make_handle(ReclaimHandle&)). Consequences:
//
//   * one epoch clock / hazard-slot table / registry for the whole
//     sharded set -- reclamation state is O(threads), never
//     O(threads x shards), and a 200-thread 8-shard service fits the
//     same 256-slot domain a single list does;
//   * retire ordering between shards is free: a thread's epoch pin or
//     hazard cells cover whichever shard it is currently operating on;
//   * domain-level metrics (allocated_nodes, limbo_nodes) already
//     aggregate across shards, so the footprint/limbo bounds of the
//     churn and soak tiers apply to the sharded set verbatim;
//   * under HP, the persistent cursor cell is a per-thread resource
//     shared by all shards; the engines' cursor_owner protocol
//     (reclaim/hp.hpp) keeps exactly one shard's cursor protected --
//     the hot shard keeps its locality win, the others fall back to
//     head starts.
//
// Quiescent calls (validate/size/snapshot/shard_sizes) follow the same
// contract as every engine: all worker handles closed. Per-shard op
// counts are accumulated handle-locally and folded into the set's
// atomics at handle close, so shard_ops() is also quiescent-only.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/alloc/slab.hpp"
#include "src/common/debug.hpp"
#include "src/core/iset.hpp"
#include "src/faults/faults.hpp"
#include "src/shard/shard_map.hpp"

namespace pragmalist::shard {

namespace detail {
// Engines expose op-level fault injection (Handle::abandon(kind, key));
// the Michael baselines do not -- for them an op-level "crash" degrades
// to a clean no-op, matching ISetHandle's default.
template <typename T, typename = void>
struct HasOpAbandon : std::false_type {};
template <typename T>
struct HasOpAbandon<T, std::void_t<decltype(std::declval<T&>().abandon(
                           faults::FaultKind::kMidOpAbandon, 0L))>>
    : std::true_type {};

// Engines that allocate nodes through the domain (construct/dispose)
// advertise kPoolAllocates; only those may run the shared domain in
// slab mode. Baselines that `new` their own nodes must clamp to heap,
// or the domain would try to return foreign pointers to a slab.
template <typename T, typename = void>
struct PoolAllocates : std::false_type {};
template <typename T>
struct PoolAllocates<T, std::enable_if_t<T::kPoolAllocates>>
    : std::true_type {};
}  // namespace detail

template <typename Engine>
class ShardedSet {
 public:
  using Reclaim = typename Engine::Reclaim;
  using ReclaimHandle = typename Engine::ReclaimHandle;

  class Handle {
   public:
    bool add(long key) { return handles_[set_->shard_of(key)].add(key); }
    bool remove(long key) {
      return handles_[set_->shard_of(key)].remove(key);
    }
    bool contains(long key) {
      return handles_[set_->shard_of(key)].contains(key);
    }

    // A global ordered scan over a hash partition is a k-way merge:
    // every shard holds an arbitrary subset of [lo, hi], so each shard
    // contributes an ascending cursor (paged through the engines'
    // uncounted scan_raw primitive) and the merge emits the minimum
    // across cursors. All per-shard pages run under this worker's ONE
    // borrowed reclaim handle, one page at a time -- under EBR each
    // page is one epoch pin (the merge never holds a pin across the
    // whole scan), under HP each page re-anchors per step as usual.
    // Keys are unique across shards (the partition routes each key to
    // exactly one shard), so the merge needs no duplicate handling.
    long range_scan(long lo, long hi, const core::KeySink& sink) {
      return core::counted_range_scan(*this, scan_ctr_, lo, hi, sink);
    }
    std::vector<long> ascend(long from, std::size_t limit) {
      return core::counted_ascend(*this, scan_ctr_, from, limit);
    }
    /// Uncounted merge primitive (the counted forms above delegate
    /// here, like every engine handle's scan_raw).
    long scan_raw(long from, long hi, long limit,
                  const core::KeySink& sink) {
      return merge_scan(from, hi, limit, sink);
    }

    core::OpCounters counters() const {
      // Point ops live in the per-shard engine ledgers; scans are
      // whole-set operations counted here (never per shard, which
      // would inflate scan_calls by the page fan-out).
      core::OpCounters agg = scan_ctr_;
      for (const auto& h : handles_) agg += h.counters();
      return agg;
    }

    /// Fault injection: op-level kinds route to `key`'s shard like any
    /// other op; lease-level kinds crash the ONE reclaim handle this
    /// worker leased for the whole set -- which is the point: a single
    /// crashed worker's blast radius covers every shard at once,
    /// because reclamation state is per thread, not per shard.
    void abandon(faults::FaultKind k, long key) {
      if (faults::is_op_fault(k)) {
        if constexpr (detail::HasOpAbandon<typename Engine::Handle>::value)
          handles_[set_->shard_of(key)].abandon(k, key);
      } else {
        rh_->abandon(k);
      }
    }

    // Default move is safe: the engine handles point at *rh_, whose
    // heap address survives the move (a moved-from handles_ is empty,
    // so the moved-from destructor folds nothing).
    Handle(Handle&&) = default;
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    ~Handle() {
      // Fold the per-shard ledgers (each engine handle's own counters)
      // into the set's quiescent totals.
      for (std::size_t s = 0; s < handles_.size(); ++s)
        set_->shard_ops_[s].fetch_add(handles_[s].counters().total_ops(),
                                      std::memory_order_relaxed);
      // Members die in reverse order: the borrowing engine handles
      // first, the owned reclaim handle (departure protocol: final
      // scan/collect, orphan hand-off, slot release) last.
    }

   private:
    friend class ShardedSet;
    explicit Handle(ShardedSet* set)
        : set_(set),
          rh_(std::make_unique<ReclaimHandle>(set->domain_->make_handle())) {
      handles_.reserve(set->shards_.size());
      for (auto& engine : set->shards_)
        handles_.push_back(engine->make_handle(*rh_));
    }

    /// Keys per scan_raw page. Large enough that refills are rare on
    /// realistic widths, small enough that a page (one EBR pin) never
    /// pins the epoch for long.
    static constexpr long kScanPage = 64;

    struct ShardCursor {
      std::vector<long> page;
      std::size_t idx = 0;
      long next_from = 0;
      bool drained = false;  // shard has nothing further in range
    };

    void refill(std::size_t s, ShardCursor& c, long hi) {
      c.page.clear();
      c.idx = 0;
      handles_[s].scan_raw(c.next_from, hi, kScanPage,
                           [&](long k) { c.page.push_back(k); });
      // A short page means the shard's range is exhausted; a full page
      // ending on hi must not advance past it (hi may be LONG_MAX).
      if (c.page.size() < static_cast<std::size_t>(kScanPage) ||
          c.page.back() >= hi)
        c.drained = true;
      else
        c.next_from = c.page.back() + 1;
    }

    long merge_scan(long from, long hi, long limit,
                    const core::KeySink& sink) {
      const std::size_t n = handles_.size();
      std::vector<ShardCursor> cursors(n);
      for (std::size_t s = 0; s < n; ++s) {
        cursors[s].next_from = from;
        refill(s, cursors[s], hi);
      }
      long emitted = 0;
      while (limit < 0 || emitted < limit) {
        // Linear min across the cursor heads: shard counts are small
        // (typically <= 16), so a heap would cost more than it saves.
        std::size_t best = n;
        for (std::size_t s = 0; s < n; ++s) {
          const ShardCursor& c = cursors[s];
          if (c.idx >= c.page.size()) continue;
          if (best == n ||
              c.page[c.idx] < cursors[best].page[cursors[best].idx])
            best = s;
        }
        if (best == n) break;  // every cursor drained
        ShardCursor& c = cursors[best];
        sink(c.page[c.idx]);
        ++emitted;
        // Refill only if more output is still wanted: when the
        // limit-th key was a page's last entry, a fresh page (a whole
        // scan_raw walk, one EBR pin) would be fetched and discarded.
        if (++c.idx >= c.page.size() && !c.drained &&
            (limit < 0 || emitted < limit))
          refill(best, c, hi);
      }
      return emitted;
    }

    ShardedSet* set_;
    // Heap-held so the borrowed pointers inside the engine handles
    // survive moves of this Handle. Declared before handles_: borrowers
    // are destroyed before the handle they borrow.
    std::unique_ptr<ReclaimHandle> rh_;
    std::vector<typename Engine::Handle> handles_;
    core::OpCounters scan_ctr_;  // whole-set scan ledger (see counters)
  };

  explicit ShardedSet(int shards,
                      alloc::Mode mode = alloc::Mode::kHeap,
                      bool hints = true)
      : domain_(std::make_shared<Reclaim>(
            detail::PoolAllocates<Engine>::value ? mode
                                                 : alloc::Mode::kHeap)) {
    PRAGMALIST_CHECK(shards >= 1, "ShardedSet needs at least one shard");
    shards_.reserve(static_cast<std::size_t>(shards));
    for (int i = 0; i < shards; ++i) {
      // Engines take a per-shard hint-index switch; baselines without
      // one (the Michael lists) only accept the shared domain. The
      // catalog rejects `/nohint` for those before we get here.
      if constexpr (std::is_constructible_v<Engine, std::shared_ptr<Reclaim>,
                                            bool>) {
        shards_.push_back(std::make_unique<Engine>(domain_, hints));
      } else {
        PRAGMALIST_CHECK(hints,
                         "this engine has no hint index to disable");
        shards_.push_back(std::make_unique<Engine>(domain_));
      }
    }
    shard_ops_ =
        std::make_unique<std::atomic<long>[]>(static_cast<std::size_t>(shards));
    for (int i = 0; i < shards; ++i)
      shard_ops_[static_cast<std::size_t>(i)].store(
          0, std::memory_order_relaxed);
  }
  ShardedSet(const ShardedSet&) = delete;
  ShardedSet& operator=(const ShardedSet&) = delete;

  /// Safe to call concurrently from worker threads (leases a reclaim
  /// handle from the shared domain, then only reads shards_).
  Handle make_handle() { return Handle(this); }

  std::size_t shard_of(long key) const {
    return shard::shard_of(key, shards_.size());
  }

  // --- quiescent API ------------------------------------------------

  bool validate(std::string* err) const {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (!shards_[s]->validate(err)) {
        if (err != nullptr)
          *err = "shard " + std::to_string(s) + ": " + *err;
        return false;
      }
    }
    return true;
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& engine : shards_) total += engine->size();
    return total;
  }

  /// Ascending over the whole key space: per-shard snapshots are
  /// sorted, but the hash partition interleaves them arbitrarily.
  std::vector<long> snapshot() const {
    std::vector<long> all;
    for (const auto& engine : shards_) {
      const auto part = engine->snapshot();
      all.insert(all.end(), part.begin(), part.end());
    }
    std::sort(all.begin(), all.end());
    return all;
  }

  /// Domain-wide (the shared domain already aggregates every shard).
  std::size_t allocated_nodes() const { return domain_->live_nodes(); }

  std::size_t limbo_nodes() const {
    if constexpr (Reclaim::kReclaims)
      return domain_->limbo_nodes();
    else
      return 0;
  }

  /// Supervisor recovery and blast-radius metrics: one shared domain,
  /// so one call covers every shard (no-op / all-zero under the
  /// arena). See src/faults/faults.hpp.
  std::size_t reap_crashed() {
    if constexpr (Reclaim::kReclaims)
      return domain_->reap_crashed();
    else
      return 0;
  }
  faults::BlastStats blast_stats() const {
    if constexpr (Reclaim::kReclaims)
      return domain_->blast_stats();
    else
      return {};
  }

  int shard_count() const { return static_cast<int>(shards_.size()); }

  /// Operations routed to each shard (attempts, all op kinds), folded
  /// in as worker handles close.
  std::vector<long> shard_ops() const {
    std::vector<long> ops(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s)
      ops[s] = shard_ops_[s].load(std::memory_order_relaxed);
    return ops;
  }

  /// Live keys per shard.
  std::vector<std::size_t> shard_sizes() const {
    std::vector<std::size_t> sizes(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s)
      sizes[s] = shards_[s]->size();
    return sizes;
  }

 private:
  friend class Handle;

  // Declared before shards_: engines (which may free still-linked
  // nodes through their destructors) die before the domain they share.
  std::shared_ptr<Reclaim> domain_;
  std::vector<std::unique_ptr<Engine>> shards_;
  std::unique_ptr<std::atomic<long>[]> shard_ops_;
};

}  // namespace pragmalist::shard
