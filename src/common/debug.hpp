// Runtime invariant checking that stays on in release builds: the bench
// binaries refuse to report numbers from a corrupted structure, so the
// check must not compile away under NDEBUG.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pragmalist::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* msg,
                                      const char* file, int line) {
  std::fprintf(stderr, "PRAGMALIST_CHECK failed at %s:%d\n  expr: %s\n  %s\n",
               file, line, expr, msg ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace pragmalist::detail

#define PRAGMALIST_CHECK(cond, msg)                                         \
  do {                                                                      \
    if (!(cond))                                                            \
      ::pragmalist::detail::check_failed(#cond, (msg), __FILE__, __LINE__); \
  } while (0)
