#include "src/common/affinity.hpp"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace pragmalist {

int hardware_cpus() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

bool pin_current_thread(int cpu) {
#if defined(__linux__)
  const int n = hardware_cpus();
  if (cpu < 0) return false;
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(static_cast<unsigned>(cpu % n), &mask);
  return pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace pragmalist
