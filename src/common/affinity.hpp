// CPU topology queries and thread pinning. Pinning is best effort: on
// platforms without pthread affinity (or when the mask is rejected) the
// call is a no-op and the benchmark still runs, just unpinned.
#pragma once

namespace pragmalist {

/// Number of logical CPUs visible to this process (at least 1).
int hardware_cpus();

/// Pin the calling thread to `cpu` (modulo the visible CPU count).
/// Returns true if the affinity mask was applied.
bool pin_current_thread(int cpu);

}  // namespace pragmalist
