// Per-domain slab allocation for list nodes. Every reclaim domain owns
// one SlabPool: engines allocate nodes from cache-line-aligned slabs
// through per-thread ThreadCaches (the fast path is an array pop with
// no lock, no CAS), retire still flows through the policy's existing
// retire/collect surface, and a *free* returns the slot to the owning
// slab's lock-free free list -- whole slabs are released back to the
// OS only when empty and quiescent.
//
// Why a pool per *domain* and not per list: the domain is the unit
// that outlives every node it ever freed (handles lease from it,
// shards share it), so "the slab may be unmapped" and "no reader can
// hold a node" are decided by the same object. The policy's horizon
// (epoch distance, hazard scan) keeps protecting recycled *slots*
// exactly as it protected heap nodes; the pool only changes where the
// bytes come from.
//
// Concurrency design, deliberately minimal:
//   * per-slab free list: push-only Treiber stack. Frees (any thread)
//     push; only refills consume, and they drain the whole list with
//     one exchange(nullptr) -- there is no lock-free *pop*, so there
//     is no ABA window to reason about.
//   * virgin slots: per-slab bump counter, advanced only under the
//     pool mutex (refills are amortized over kRefill slots, so the
//     mutex is off the per-op path by construction).
//   * slab release: a slab with used == 0 has no outstanding slot
//     anywhere (thread caches count as outstanding), so with refills
//     excluded by the mutex nothing can touch it concurrently.
//
// Mode::kHeap keeps the exact pre-slab behavior (plain new/delete):
// the policies default to it so raw-domain unit tests and the Michael
// baselines -- which `new` nodes themselves -- stay correct, and the
// catalog's `/heap` twin ids price the slab win instead of asserting
// it. Only paths where *every* node flows through the pool may turn
// kSlab on (the engines advertise this with kPoolAllocates).
//
// Under ASan, free slots are poisoned while they sit in a free list or
// a thread cache and unpoisoned on acquire -- the allocator-lifetime
// tripwire: a reader that dereferences a recycled slot the reclaim
// horizon should still be protecting faults immediately instead of
// silently reading the next owner's bytes.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

#include "src/common/debug.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PRAGMALIST_ASAN 1
#endif
#elif defined(__SANITIZE_ADDRESS__)
#define PRAGMALIST_ASAN 1
#endif

#if defined(PRAGMALIST_ASAN)
#include <sanitizer/asan_interface.h>
#define PRAGMALIST_POISON(p, n) ASAN_POISON_MEMORY_REGION((p), (n))
#define PRAGMALIST_UNPOISON(p, n) ASAN_UNPOISON_MEMORY_REGION((p), (n))
#else
#define PRAGMALIST_POISON(p, n) ((void)(p), (void)(n))
#define PRAGMALIST_UNPOISON(p, n) ((void)(p), (void)(n))
#endif

namespace pragmalist::alloc {

/// Where a domain's nodes come from. kHeap is plain new/delete (the
/// pre-slab behavior and the `/heap` bench twins); kSlab is the pool.
enum class Mode { kHeap, kSlab };

/// Pool-level counters, all monotonic except slabs_live/slots_in_use.
struct SlabStats {
  std::size_t slabs_created = 0;
  std::size_t slabs_released = 0;
  std::size_t slabs_live = 0;
  std::size_t slots_per_slab = 0;
  std::size_t slot_acquires = 0;
  std::size_t slot_releases = 0;
  std::size_t refills = 0;
};

template <typename Node>
class SlabPool {
 public:
  /// Power-of-two slab size: ptr -> owning slab is one mask, no map.
  static constexpr std::size_t kSlabBytes = 16 * 1024;

  explicit SlabPool(Mode mode = Mode::kHeap) : mode_(mode) {}
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  ~SlabPool() {
    for (Slab* s : slabs_) operator delete(s, std::align_val_t(kSlabBytes));
  }

  Mode mode() const { return mode_; }

  /// Construct a node. Heap mode is a plain `new`; slab mode acquires
  /// a slot (one refill's worth at a time under the pool mutex) and
  /// placement-constructs. Prefer the ThreadCache fast path -- this is
  /// the shared slow path it refills from.
  template <typename... Args>
  Node* construct(Args&&... args) {
    if (mode_ == Mode::kHeap) return new Node(std::forward<Args>(args)...);
    void* slot = nullptr;
    const std::size_t got = refill(&slot, 1);
    PRAGMALIST_CHECK(got == 1, "slab pool failed to produce a slot");
    return ::new (slot) Node(std::forward<Args>(args)...);
  }

  /// Destroy a node and return its memory. Null-safe.
  void destroy(Node* n) {
    if (n == nullptr) return;
    if (mode_ == Mode::kHeap) {
      delete n;
      return;
    }
    n->~Node();
    release(n);
  }

  /// Fill `out[0..want)` with ready-to-construct slots; returns the
  /// count delivered (always `want` -- a fresh slab covers any
  /// shortfall). Slab mode only.
  std::size_t refill(void** out, std::size_t want) {
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t got = 0;
    for (Slab* s : slabs_) {
      got += harvest(s, out + got, want - got);
      if (got == want) break;
    }
    while (got < want) {
      Slab* s = new_slab();
      got += harvest(s, out + got, want - got);
    }
    refills_.fetch_add(1, std::memory_order_relaxed);
    acquires_.fetch_add(got, std::memory_order_relaxed);
    return got;
  }

  /// Return one slot to its *owning* slab's free list (lock-free; any
  /// thread). Slab mode only.
  void release(void* slot) {
    Slab* s = owning_slab(slot);
    push_free(s, slot);
    s->used.fetch_sub(1, std::memory_order_release);
    releases_.fetch_add(1, std::memory_order_relaxed);
  }

  /// The owning slab's base address (slab mode, pool-allocated `p`
  /// only -- this is an address mask, not a lookup).
  const void* slab_of(const void* p) const {
    return reinterpret_cast<const void*>(
        reinterpret_cast<std::uintptr_t>(p) &
        ~static_cast<std::uintptr_t>(kSlabBytes - 1));
  }

  /// Release every slab with no outstanding slot back to the OS.
  /// Quiescent-only: callers guarantee no concurrent construct/refill
  /// on this pool (thread caches hold their slots as outstanding, so a
  /// merely *cached* slab never qualifies). Returns slabs released.
  std::size_t release_empty_slabs() {
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t released = 0;
    std::vector<Slab*> keep;
    keep.reserve(slabs_.size());
    for (Slab* s : slabs_) {
      if (s->used.load(std::memory_order_acquire) == 0) {
        operator delete(s, std::align_val_t(kSlabBytes));
        ++released;
      } else {
        keep.push_back(s);
      }
    }
    slabs_.swap(keep);
    released_.fetch_add(released, std::memory_order_relaxed);
    return released;
  }

  std::size_t slab_count() const {
    std::lock_guard<std::mutex> lk(mu_);
    return slabs_.size();
  }

  /// Slots currently handed out (constructed nodes + thread-cached).
  std::size_t slots_in_use() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::size_t used = 0;
    for (const Slab* s : slabs_)
      used += s->used.load(std::memory_order_acquire);
    return used;
  }

  SlabStats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    SlabStats st;
    st.slabs_created = created_;
    st.slabs_released = released_.load(std::memory_order_relaxed);
    st.slabs_live = slabs_.size();
    st.slots_per_slab = kCapacity;
    st.slot_acquires = acquires_.load(std::memory_order_relaxed);
    st.slot_releases = releases_.load(std::memory_order_relaxed);
    st.refills = refills_.load(std::memory_order_relaxed);
    return st;
  }

 private:
  /// Slab header, resident at the slab's base; slots follow after a
  /// cache-line gap (the header's free list / counters must not share
  /// a line with slot 0's hot node fields).
  struct Slab {
    std::atomic<void*> free_list{nullptr};  // push-only Treiber stack
    std::atomic<std::uint32_t> bump{0};     // virgin slots handed out
    std::atomic<std::uint32_t> used{0};     // outstanding slots
  };

  // Slots pack at node granularity, not cache-line granularity: list
  // ops are traversal-bound, and halving the stride halves the cache
  // lines a walk touches. Denser than malloc, too -- no per-chunk
  // header. Adjacent nodes sharing a line is the same trade malloc
  // makes. The free-list link must fit in a slot, hence the pointer
  // floor.
  static constexpr std::size_t kSlotAlign = alignof(Node);
  static constexpr std::size_t kSlotMin =
      sizeof(Node) > sizeof(void*) ? sizeof(Node) : sizeof(void*);
  static constexpr std::size_t kStride =
      (kSlotMin + kSlotAlign - 1) / kSlotAlign * kSlotAlign;
  static constexpr std::size_t kHeaderAlign =
      alignof(Node) > 64 ? alignof(Node) : 64;
  static constexpr std::size_t kSlotsOffset =
      (sizeof(Slab) + kHeaderAlign - 1) / kHeaderAlign * kHeaderAlign;
  static constexpr std::size_t kCapacity =
      (kSlabBytes - kSlotsOffset) / kStride;
  static_assert((kSlabBytes & (kSlabBytes - 1)) == 0,
                "slab size must be a power of two for the address mask");
  static_assert(kCapacity >= 8, "node too large for the slab geometry");
  static_assert(kStride >= sizeof(void*),
                "free-list link must fit in a slot");

  Slab* owning_slab(void* p) {
    return reinterpret_cast<Slab*>(const_cast<void*>(slab_of(p)));
  }

  static void* slot_at(Slab* s, std::size_t i) {
    return reinterpret_cast<char*>(s) + kSlotsOffset + i * kStride;
  }

  static void push_free(Slab* s, void* slot) {
    // The link lives in the slot itself; everything past it stays
    // poisoned until the slot is handed out again. Poison *before*
    // publishing: once the CAS lands a concurrent refill may grab and
    // unpoison the slot immediately.
    PRAGMALIST_UNPOISON(slot, sizeof(void*));
    PRAGMALIST_POISON(static_cast<char*>(slot) + sizeof(void*),
                      kStride - sizeof(void*));
    void* head = s->free_list.load(std::memory_order_relaxed);
    do {
      *reinterpret_cast<void**>(slot) = head;
    } while (!s->free_list.compare_exchange_weak(
        head, slot, std::memory_order_release, std::memory_order_relaxed));
  }

  /// Under mu_: take up to `room` slots from `s` (freed first, then
  /// virgin), pushing any over-grabbed freed slots straight back.
  std::size_t harvest(Slab* s, void** out, std::size_t room) {
    std::size_t n = 0;
    void* head = s->free_list.exchange(nullptr, std::memory_order_acquire);
    while (head != nullptr && n < room) {
      void* next = *reinterpret_cast<void**>(head);
      PRAGMALIST_UNPOISON(head, kStride);
      out[n++] = head;
      head = next;
    }
    while (head != nullptr) {
      void* next = *reinterpret_cast<void**>(head);
      push_free(s, head);
      head = next;
    }
    while (n < room) {
      const std::uint32_t b = s->bump.load(std::memory_order_relaxed);
      if (b >= kCapacity) break;
      s->bump.store(b + 1, std::memory_order_relaxed);
      out[n++] = slot_at(s, b);
    }
    s->used.fetch_add(static_cast<std::uint32_t>(n),
                      std::memory_order_relaxed);
    return n;
  }

  /// Under mu_.
  Slab* new_slab() {
    void* mem = operator new(kSlabBytes, std::align_val_t(kSlabBytes));
    Slab* s = ::new (mem) Slab();
    slabs_.push_back(s);
    ++created_;
    return s;
  }

  const Mode mode_;
  mutable std::mutex mu_;
  std::vector<Slab*> slabs_;
  std::size_t created_ = 0;
  std::atomic<std::size_t> released_{0};
  std::atomic<std::size_t> acquires_{0};
  std::atomic<std::size_t> releases_{0};
  std::atomic<std::size_t> refills_{0};
};

/// Per-thread slot cache, owned by a policy Handle: construct() pops a
/// cached slot (refilling kRefill at a time from the pool), destroy()
/// caches the slot for reuse, and the destructor drains everything
/// back to the owning slabs -- a departed worker leaves nothing
/// stranded, which is what lets empty slabs actually be released.
/// Pass-through (plain new/delete) when the pool runs in heap mode.
template <typename Node>
class ThreadCache {
 public:
  static constexpr std::size_t kCacheCap = 64;
  static constexpr std::size_t kRefill = 32;

  ThreadCache() = default;  // detached (moved-from) cache
  explicit ThreadCache(SlabPool<Node>* pool) : pool_(pool) {}
  ThreadCache(const ThreadCache&) = delete;
  ThreadCache& operator=(const ThreadCache&) = delete;

  ThreadCache(ThreadCache&& o) noexcept : pool_(o.pool_), n_(o.n_) {
    for (std::size_t i = 0; i < n_; ++i) slots_[i] = o.slots_[i];
    o.pool_ = nullptr;
    o.n_ = 0;
  }
  ThreadCache& operator=(ThreadCache&& o) noexcept {
    if (this != &o) {
      drain();
      pool_ = o.pool_;
      n_ = o.n_;
      for (std::size_t i = 0; i < n_; ++i) slots_[i] = o.slots_[i];
      o.pool_ = nullptr;
      o.n_ = 0;
    }
    return *this;
  }

  ~ThreadCache() { drain(); }

  template <typename... Args>
  Node* construct(Args&&... args) {
    if (pool_ == nullptr || pool_->mode() == Mode::kHeap)
      return pool_ != nullptr ? pool_->construct(std::forward<Args>(args)...)
                              : new Node(std::forward<Args>(args)...);
    if (n_ == 0) n_ = pool_->refill(slots_, kRefill);
    void* slot = slots_[--n_];
    PRAGMALIST_UNPOISON(slot, sizeof(Node));
    return ::new (slot) Node(std::forward<Args>(args)...);
  }

  void destroy(Node* n) {
    if (n == nullptr) return;
    if (pool_ == nullptr || pool_->mode() == Mode::kHeap) {
      if (pool_ != nullptr)
        pool_->destroy(n);
      else
        delete n;
      return;
    }
    n->~Node();
    if (n_ < kCacheCap) {
      slots_[n_++] = n;
      PRAGMALIST_POISON(n, sizeof(Node));
    } else {
      pool_->release(n);
    }
  }

  /// Return every cached slot to its owning slab (idempotent).
  void drain() {
    if (pool_ == nullptr || pool_->mode() == Mode::kHeap) {
      n_ = 0;
      return;
    }
    while (n_ > 0) {
      void* slot = slots_[--n_];
      PRAGMALIST_UNPOISON(slot, sizeof(Node));
      pool_->release(slot);
    }
  }

  std::size_t cached() const { return n_; }

 private:
  SlabPool<Node>* pool_ = nullptr;
  std::size_t n_ = 0;
  void* slots_[kCacheCap];
};

}  // namespace pragmalist::alloc
