#include "src/service/soak.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

#include "src/common/debug.hpp"
#include "src/harness/drivers.hpp"
#include "src/harness/thread_team.hpp"
#include "src/workload/distributions.hpp"
#include "src/workload/rng.hpp"

namespace pragmalist::service {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

std::size_t SoakResult::peak_footprint() const {
  std::size_t peak = 0;
  for (const auto& s : series)
    if (s.footprint > peak) peak = s.footprint;
  return peak;
}

std::size_t SoakResult::peak_limbo() const {
  std::size_t peak = 0;
  for (const auto& s : series)
    if (s.limbo > peak) peak = s.limbo;
  return peak;
}

double SoakResult::last_fault_ms() const {
  double last = -1.0;
  for (const auto& ev : fault_events)
    if (ev.t_ms > last) last = ev.t_ms;
  return last;
}

SoakResult run_soak(core::ISet& set, const SoakConfig& cfg) {
  PRAGMALIST_CHECK(cfg.max_threads >= 1 && cfg.ticks >= 1,
                   "soak needs at least one worker and one tick");
  PRAGMALIST_CHECK(cfg.tick_ms >= 1, "soak tick must be at least 1 ms");
  PRAGMALIST_CHECK(cfg.prefill <= cfg.universe,
                   "cannot prefill more distinct keys than the universe");

  {
    // Prefill on a scratch handle, outside the clock and the ledger
    // (population conservation is prefill + adds - rems, as in
    // run_random_mix).
    auto handle = set.make_handle();
    workload::Rng rng(workload::thread_seed(cfg.seed, -1));
    long inserted = 0;
    while (inserted < cfg.prefill) {
      const auto key = static_cast<long>(
          rng.below(static_cast<std::uint64_t>(cfg.universe)));
      inserted += handle->add(key);
    }
  }

  // The zipf generator's O(universe) setup runs once, outside any
  // worker; draws are const and stateless, so one instance is shared
  // (run_random_mix does the same).
  std::unique_ptr<const workload::ZipfKeys> zipf;
  if (cfg.zipf_theta > 0.0)
    zipf = std::make_unique<workload::ZipfKeys>(
        static_cast<std::uint64_t>(cfg.universe), cfg.zipf_theta);

  // Workers hammer ops until told to stop, bumping a shared window
  // counter the sampler reads and resets each tick. On departure a
  // worker folds its counters into the aggregate under a mutex --
  // departures are rare (schedule edges), so this is off every hot
  // path. When record_latency is on, each worker also owns a latency
  // profile it registers at arrival; profiles outlive departures (the
  // registry holds them) so the sampler can keep merging cumulative
  // views and the final per-class profile misses no one.
  std::atomic<long> window_ops{0};
  std::mutex agg_mu;
  core::OpCounters agg;
  std::vector<std::unique_ptr<harness::LatencyProfile>> profiles;
  // Injected crashes, appended as they fire (rare; never on the
  // fault-free hot path). The sampler reads them to schedule reaps.
  std::mutex fault_mu;
  std::vector<SoakResult::FaultEvent> fault_events;
  Clock::time_point start;  // set just before the first resize below
  auto body = [&](int worker_id, const std::atomic<bool>& stop) {
    auto handle = set.make_handle();
    workload::Rng rng(workload::thread_seed(cfg.seed, worker_id));
    const faults::FaultSpec* fault = cfg.faults.find(worker_id);
    harness::LatencyProfile* lp = nullptr;
    if (cfg.record_latency) {
      auto owned = std::make_unique<harness::LatencyProfile>();
      lp = owned.get();
      std::lock_guard<std::mutex> lock(agg_mu);
      profiles.push_back(std::move(owned));
    }
    long local_ops = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const long key =
          zipf ? (*zipf)(rng)
               : static_cast<long>(
                     rng.below(static_cast<std::uint64_t>(cfg.universe)));
      if (fault != nullptr && local_ops >= fault->op_ordinal) {
        // Crash now: the op this key was drawn for becomes the fault.
        // The worker stops operating but its thread stays in the team
        // until the schedule departs it -- a dead request handler
        // nobody has joined yet. Counters still fold below: the
        // op-level kinds count as removes, so the population ledger
        // balances across crashes.
        handle->abandon(fault->kind, key);
        std::lock_guard<std::mutex> lock(fault_mu);
        fault_events.push_back(
            SoakResult::FaultEvent{worker_id, ms_since(start), fault->kind});
        break;
      }
      const workload::OpKind kind = cfg.mix.pick(rng);
      const std::uint64_t t0 = lp ? harness::lat_now_ns() : 0;
      harness::OpClass cls = harness::OpClass::kContains;
      switch (kind) {
        case workload::OpKind::kAdd:
          handle->add(key);
          cls = harness::OpClass::kAdd;
          break;
        case workload::OpKind::kRemove:
          handle->remove(key);
          cls = harness::OpClass::kRemove;
          break;
        case workload::OpKind::kContains:
          handle->contains(key);
          break;
        case workload::OpKind::kScan:
          harness::checked_range_scan(*handle, key,
                                      key + cfg.scan_widths.pick(rng) - 1);
          cls = harness::OpClass::kScan;
          break;
      }
      if (lp) lp->of(cls).record(harness::lat_now_ns() - t0);
      // Batch the shared-counter bump so sampling does not serialize
      // the workers on one cache line.
      if (++local_ops % 64 == 0)
        window_ops.fetch_add(64, std::memory_order_relaxed);
    }
    window_ops.fetch_add(local_ops % 64, std::memory_order_relaxed);
    const core::OpCounters ctr = handle->counters();
    handle.reset();  // close the handle *before* reporting: departure
                     // means the reclaimer slot is released
    std::lock_guard<std::mutex> lock(agg_mu);
    agg += ctr;
  };

  // Cumulative merge of every registered profile as of now. Workers
  // keep recording while this reads (relaxed atomics: slightly stale,
  // never torn), which is exactly what a per-tick sampler wants.
  auto merge_profiles = [&] {
    harness::LatencyProfile cum;
    std::lock_guard<std::mutex> lock(agg_mu);
    for (const auto& p : profiles) cum += *p;
    return cum;
  };

  SoakResult result;
  result.series.reserve(static_cast<std::size_t>(cfg.ticks));
  start = Clock::now();
  {
    harness::DynamicTeam team(body, cfg.pin);
    harness::LatencyProfile prev_cum;
    auto window_start = start;
    // Reap bookkeeping: events whose reap deadline has passed, so one
    // crash triggers exactly one supervisor pass.
    std::size_t reaped_events = 0;
    for (int tick = 0; tick < cfg.ticks; ++tick) {
      const int target =
          thread_target(cfg.schedule, tick, cfg.ticks, cfg.max_threads);
      team.resize(target);
      if (target > result.peak_threads) result.peak_threads = target;
      // Absolute deadline off the soak start: a tick that oversleeps
      // (scheduler delay, slow resize) stretches its own measured
      // window and the next sleep_until simply sleeps less -- the old
      // relative sleep_for accumulated every delay into drift, while
      // per-tick throughput was still normalized by the nominal
      // tick_ms.
      std::this_thread::sleep_until(
          start + std::chrono::milliseconds(
                      static_cast<long long>(cfg.tick_ms) * (tick + 1)));
      const auto now = Clock::now();
      SoakSample s;
      s.tick = tick;
      s.t_ms = std::chrono::duration<double, std::milli>(now - start).count();
      s.dur_ms =
          std::chrono::duration<double, std::milli>(now - window_start)
              .count();
      window_start = now;
      s.threads = target;
      s.ops = window_ops.exchange(0, std::memory_order_relaxed);
      s.footprint = set.allocated_nodes();
      s.limbo = set.limbo_nodes();
      const faults::BlastStats bs = set.blast_stats();
      s.leaked = bs.leaked_nodes;
      s.crashed_slots = bs.crashed_slots;
      s.leaked_cells = bs.leaked_cells;
      s.parked_limbo = bs.parked_limbo;
      s.horizon_lag = bs.horizon_lag;
      // Supervisor pass: reap every crashed lease whose fault fired at
      // least reap_delay_ticks ago (the detection latency a real
      // supervisor would have). reap_crashed releases *all* crashed
      // leases, so one pass may cover several due events.
      if (!cfg.faults.empty()) {
        std::size_t due = 0;
        {
          std::lock_guard<std::mutex> lock(fault_mu);
          for (const auto& ev : fault_events)
            if (s.t_ms - ev.t_ms >=
                static_cast<double>(cfg.reap_delay_ticks * cfg.tick_ms))
              ++due;
        }
        if (due > reaped_events) {
          result.reaps += static_cast<int>(set.reap_crashed());
          reaped_events = due;
        }
      }
      if (cfg.record_latency) {
        harness::LatencyProfile cum = merge_profiles();
        harness::LatencyProfile interval = cum;
        interval -= prev_cum;
        prev_cum = cum;
        const harness::LatHistogram all = interval.merged();
        if (all.count() > 0) {
          s.p50_us = static_cast<double>(all.percentile(0.50)) / 1e3;
          s.p99_us = static_cast<double>(all.percentile(0.99)) / 1e3;
          s.p999_us = static_cast<double>(all.percentile(0.999)) / 1e3;
          s.max_us = static_cast<double>(all.max()) / 1e3;
        }
      }
      result.series.push_back(s);
    }
    team.resize(0);  // join everyone before the clock stops
    result.arrivals = team.arrivals();
  }
  // Final supervisor pass: whatever the per-tick reaper did not get to
  // (a fault in the last reap_delay_ticks window) is recovered before
  // the quiescent checks, like a service draining before shutdown.
  if (!cfg.faults.empty())
    result.reaps += static_cast<int>(set.reap_crashed());
  result.ms = ms_since(start);
  result.agg = agg;
  result.fault_events = std::move(fault_events);
  if (cfg.record_latency) result.latency = merge_profiles();
  // All handles are closed, so the per-shard ledgers are complete.
  result.shard_ops = set.shard_ops();
  return result;
}

}  // namespace pragmalist::service
