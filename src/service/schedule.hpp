// Deterministic arrival/departure schedules for the soak harness: a
// pure function from (schedule kind, tick, total ticks, max workers)
// to a target worker count. Pure integer arithmetic only, so the
// join/leave pattern of a soak run is reproducible bit-for-bit across
// platforms (the tier-1 golden tests pin the sequences).
//
// The kinds model the thread dynamics a long-running service actually
// sees, which the fixed-membership paper harness never exercises:
//
//   steady      -- p workers for the whole run (the control: matches
//                  the fixed-team benches, but with soak sampling).
//   ramp        -- triangular: 1 -> p over the first half, p -> 1 over
//                  the second. Every tick is a join or leave phase.
//   burst       -- a quiet baseline of ~p/4 workers with periodic
//                  2-tick spikes to p: bursty arrival storms against a
//                  warm structure.
//   waves       -- alternate between p/2 and p every 4 ticks: sustained
//                  oscillation, half the pool repeatedly re-leasing
//                  the other half's reclaimer slots.
//   stragglers  -- ramp to p over the first two thirds, then mass
//                  departure to a single long-lived straggler: the
//                  worst case for departed-thread garbage, since one
//                  survivor must be able to adopt and free everything
//                  the leavers retired.
#pragma once

#include <string>
#include <string_view>

#include "src/common/debug.hpp"

namespace pragmalist::service {

enum class SoakSchedule { kSteady, kRamp, kBurst, kWaves, kStragglers };

inline std::string_view soak_schedule_name(SoakSchedule s) {
  switch (s) {
    case SoakSchedule::kSteady: return "steady";
    case SoakSchedule::kRamp: return "ramp";
    case SoakSchedule::kBurst: return "burst";
    case SoakSchedule::kWaves: return "waves";
    case SoakSchedule::kStragglers: return "stragglers";
  }
  return "?";
}

/// Parse a --threads-schedule value; aborts with the known names on a
/// typo (same contract as harness::make_set).
inline SoakSchedule parse_soak_schedule(std::string_view name) {
  for (const SoakSchedule s :
       {SoakSchedule::kSteady, SoakSchedule::kRamp, SoakSchedule::kBurst,
        SoakSchedule::kWaves, SoakSchedule::kStragglers}) {
    if (name == soak_schedule_name(s)) return s;
  }
  const std::string msg = "unknown soak schedule '" + std::string(name) +
                          "'; known: steady ramp burst waves stragglers";
  PRAGMALIST_CHECK(false, msg.c_str());
  __builtin_unreachable();
}

/// Target worker count at `tick` (0-based) of a `ticks`-tick soak with
/// at most `p` workers. Always in [1, p]: the pool never empties, so
/// there is always a survivor to adopt departed workers' garbage and
/// the throughput series never degenerates to zero-by-construction.
inline int thread_target(SoakSchedule s, int tick, int ticks, int p) {
  if (p <= 1 || ticks <= 1) return p < 1 ? 1 : p;
  const int last = ticks - 1;
  switch (s) {
    case SoakSchedule::kSteady:
      return p;
    case SoakSchedule::kRamp: {
      // Distance from the nearer end, scaled so the midpoint hits p
      // (rounded integer division keeps it symmetric).
      const int j = tick < last - tick ? tick : last - tick;
      return 1 + (2 * j * (p - 1) + last / 2) / last;
    }
    case SoakSchedule::kBurst:
      return tick % 8 < 2 ? p : 1 + (p - 1) / 4;
    case SoakSchedule::kWaves:
      return (tick / 4) % 2 == 0 ? 1 + (p - 1) / 2 : p;
    case SoakSchedule::kStragglers: {
      const int ramp_ticks = (2 * ticks) / 3;
      if (tick >= ramp_ticks) return 1;
      return 1 + ((tick + 1) * (p - 1) + ramp_ticks - 1) / ramp_ticks;
    }
  }
  return p;
}

}  // namespace pragmalist::service
