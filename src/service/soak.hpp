// Service-mode soak driver: run a structure under a random-mix
// workload for a fixed wall-clock duration while worker threads arrive
// and depart on a schedule (src/service/schedule.hpp), sampling
// throughput, node footprint, and reclaimer limbo depth once per tick.
//
// This is the scenario the fixed-membership paper harness never
// models and the reclaimers of src/reclaim/ exist for: every arrival
// opens a fresh handle (leasing an EBR epoch slot or an HP hazard-cell
// row), every departure closes one (handing its limbo to survivors),
// and the time series shows whether memory stays bounded while that
// churn runs -- bench_soak prints/CSVs the series, the soak stress
// tests assert the bounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/iset.hpp"
#include "src/faults/faults.hpp"
#include "src/harness/latency.hpp"
#include "src/service/schedule.hpp"
#include "src/workload/op_mix.hpp"

namespace pragmalist::service {

struct SoakConfig {
  SoakSchedule schedule = SoakSchedule::kRamp;
  int max_threads = 4;     // schedule peak; the floor is always 1
  int ticks = 20;          // schedule steps == samples taken
  int tick_ms = 100;       // wall time per tick
  long universe = 1024;    // key range [0, universe)
  long prefill = 256;      // distinct keys inserted before the clock
  workload::OpMix mix = workload::kScalingMix;  // 25/25/50
  // Range-width distribution for scan ops (consulted when
  // mix.scan_pct > 0): a scan draws its key like any other op and
  // reads [key, key + width - 1]. Long scans are exactly what makes
  // EBR's one-pin-per-scan and HP's per-step re-anchoring diverge in
  // the limbo series.
  workload::ScanWidths scan_widths;
  std::uint64_t seed = 42;
  bool pin = false;
  // 0 = uniform keys; > 0 draws keys Zipf(theta), so a sharded set's
  // hot ranks concentrate on hot shards (shard::shard_of is a pure
  // function of the key) and the per-shard load report shows the skew.
  double zipf_theta = 0.0;
  // Record per-op latencies into per-worker histograms and report
  // per-tick tail columns + the whole-run per-class profile. Off by
  // default so latency-blind soaks cost nothing extra (two clock reads
  // per op when on).
  bool record_latency = false;
  // Crash schedule (src/faults/faults.hpp): worker arrival id ->
  // (op ordinal, fault kind). A planned worker injects its fault when
  // it has completed that many ops, then stops operating -- the thread
  // idles in the team until the schedule departs it, like a dead
  // request handler nobody has joined yet. Empty = every worker is
  // well-behaved.
  faults::FaultPlan faults;
  // Supervisor latency: a crashed lease is reaped (ISet::reap_crashed)
  // this many ticks after its fault fired, and once more at the end of
  // the run. Models the detection delay of a real service supervisor.
  int reap_delay_ticks = 2;
};

/// One per-tick observation. `ops` is the number of operations
/// completed inside this tick's window (not cumulative).
struct SoakSample {
  int tick = 0;
  double t_ms = 0.0;         // elapsed wall time at sample
  // Measured wall time of this tick's window. Ticks are paced by
  // absolute deadlines (start + (tick+1)*tick_ms), so a scheduler
  // delay stretches one window instead of drifting all later ones --
  // and per-tick throughput must be normalized by *this*, not the
  // nominal tick_ms (kops_per_sec() does).
  double dur_ms = 0.0;
  int threads = 0;           // live workers during this tick
  long ops = 0;              // ops completed in this window
  std::size_t footprint = 0;  // ISet::allocated_nodes()
  std::size_t limbo = 0;      // ISet::limbo_nodes()
  // Tail of the ops completed in this window, all classes merged,
  // microseconds (0 when record_latency is off). Derived from interval
  // histograms (cumulative merge minus previous tick's), so max is at
  // bucket resolution.
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
  // Blast-radius columns (ISet::blast_stats at sample time, see
  // faults::BlastStats) -- all zero on a fault-free run.
  std::size_t leaked = 0;         // attributed retire-skipped nodes
  std::size_t crashed_slots = 0;  // abandoned, not-yet-reaped leases
  std::size_t leaked_cells = 0;   // hazard cells published by the dead
  std::size_t parked_limbo = 0;   // limbo parked on crashed leases
  std::uint64_t horizon_lag = 0;  // EBR epoch minus its horizon

  /// Window throughput normalized by the measured duration.
  double kops_per_sec() const {
    return dur_ms > 0.0 ? static_cast<double>(ops) / dur_ms : 0.0;
  }
};

struct SoakResult {
  /// One injected crash, as it actually fired.
  struct FaultEvent {
    int worker = 0;      // arrival id
    double t_ms = 0.0;   // wall time since soak start
    faults::FaultKind kind = faults::FaultKind::kMidOpAbandon;
  };

  std::vector<SoakSample> series;
  core::OpCounters agg;  // every worker that ran, departed or not
  double ms = 0.0;       // whole soak wall time
  int arrivals = 0;      // handles opened over the run
  int peak_threads = 0;
  // Crashes injected (in firing order) and supervisor reap count. A
  // planned fault can fail to fire only if its worker never reached
  // its op ordinal before the run ended.
  std::vector<FaultEvent> fault_events;
  int reaps = 0;
  // Per-shard routed op counts, read quiescently after the last worker
  // departed; empty for unsharded ids. bench_soak prints min/max and
  // the max/min imbalance so skewed runs show their hot shards.
  std::vector<long> shard_ops;
  // Whole-run per-op-class latency profile, merged over every worker
  // that ran (departed or not). Empty when record_latency was off.
  harness::LatencyProfile latency;

  long total_ops() const { return agg.total_ops(); }
  double kops_per_sec() const {
    return ms > 0.0 ? static_cast<double>(total_ops()) / ms : 0.0;
  }
  std::size_t peak_footprint() const;
  std::size_t peak_limbo() const;
  /// Wall time of the last injected fault, or -1 when none fired.
  /// bench_faults measures recovery time from this instant.
  double last_fault_ms() const;
};

/// Run the soak. On return all workers have departed, so the set is
/// quiescent: callers should validate() and check the population
/// ledger (prefill + adds - rems == size) like every other driver.
SoakResult run_soak(core::ISet& set, const SoakConfig& cfg);

}  // namespace pragmalist::service
