// Reproduces Tables 1 (AMD), 4 (Xeon) and 7 (SPARC): the deterministic
// worst-case benchmark with shared key sequences k(i) = i, all six
// variants. Paper parameters: p = 64 (AMD/SPARC) or 80 (Xeon),
// n = 100000. Host-scale defaults keep the run in seconds; use
// --paper (optionally with --threads/--n) for the full-size run.
//
//   table_deterministic_same [--threads P] [--n N] [--paper] [--no-pin]
//                            [--baselines]
#include <cstddef>
#include <iostream>
#include <sstream>

#include "bench/bench_util.hpp"
#include "src/harness/drivers.hpp"
#include "src/workload/schedule.hpp"

int main(int argc, char** argv) {
  using namespace pragmalist;
  const auto opt = harness::Options::parse(argc, argv);
  const int p = bench::default_threads(opt, 64);
  const long n = opt.get_long("n", opt.get_bool("paper") ? 100000 : 1500);
  const bool pin = !opt.get_bool("no-pin");

  std::vector<harness::TableRow> rows;
  std::vector<std::string_view> ids(harness::paper_variant_ids());
  if (opt.get_bool("baselines")) {
    ids.push_back("coarse_lock");
    ids.push_back("lazy_lock");
    ids.push_back("hp_michael");
  }
  for (const auto id : ids) {
    auto set = harness::make_set(id);
    auto result = harness::run_deterministic(*set, p, n,
                                             workload::KeySchedule::kSameKeys,
                                             pin);
    bench::check_valid(*set);
    // The deterministic benchmark fully drains the list (every thread's
    // adds precede its removes of the same keys).
    PRAGMALIST_CHECK(set->size() == 0,
                     "deterministic benchmark must end empty");
    rows.push_back({bench::row_label(id), result});
  }

  std::ostringstream title;
  title << "Deterministic benchmark k(i)=i (Tables 1/4/7), p=" << p
        << ", n=" << n << ", " << hardware_cpus() << " CPUs";
  harness::print_paper_table(std::cout, title.str(), rows);
  bench::emit_csv("table_deterministic_same.csv", rows);
  return 0;
}
