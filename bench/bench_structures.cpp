// Beyond-paper bench: the downstream structures the paper motivates.
// Compares the flat ordered list (best variant f), the lock-free skip
// list and the per-bucket hash set on the random mix at growing key
// universes -- the regime where the list's O(n) search loses to the
// skip list's O(log n) and the hash set's O(n/buckets).
//
//   bench_structures [--threads P] [--c OPS] [--no-pin]
#include <iostream>
#include <sstream>

#include "bench/bench_util.hpp"
#include "src/harness/drivers.hpp"
#include "src/workload/op_mix.hpp"

int main(int argc, char** argv) {
  using namespace pragmalist;
  const auto opt = harness::Options::parse(argc, argv);
  const int p = bench::default_threads(opt, 16);
  const long c = opt.get_long("c", 20000);
  const bool pin = !opt.get_bool("no-pin");

  for (const long universe : {1024L, 8192L, 65536L}) {
    std::vector<harness::TableRow> rows;
    for (const std::string_view id :
         {std::string_view("doubly_cursor"), std::string_view("skiplist"),
          std::string_view("skiplist_draconic")}) {
      auto set = harness::make_set(id);
      auto r = harness::run_random_mix(*set, p, c, universe / 2, universe,
                                       workload::kTableMix, 42, pin);
      bench::check_valid(*set);
      rows.push_back({std::string(id), r});
    }
    std::ostringstream title;
    title << "Structures, mix 10/10/80, U=" << universe << " f=" << universe / 2
          << " p=" << p << " c=" << c;
    harness::print_paper_table(std::cout, title.str(), rows);
    std::cout << "\n";
  }
  return 0;
}
