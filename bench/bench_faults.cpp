// Crash-fault soak across the variant x reclaimer x shard grid: a
// deterministic FaultPlan kills workers mid-run (one fault of each
// kind by default -- guard-held abort, retire-skipped, depart-without-
// release, mid-op abandon) while the soak sampler records the blast
// radius, and a supervisor pass reaps the crashed leases after a fixed
// detection delay. Every faulted cell runs next to a fault-free twin
// (same config, empty plan) so the peak footprint / limbo columns show
// what the crashes *cost* rather than what the workload costs anyway.
//
// The headline number is recovery_ms: wall time from the last injected
// fault to the first sample where no crashed lease, parked limbo, or
// leaked hazard cell remains. Arena rows recover instantly by
// construction (no reclamation protocol to crash out of); EBR pays for
// the stalled horizon until the reap; HP pays per leaked cell.
//
//   bench_faults [--ids ID,ID,...] [--reclaim arena,ebr,hp]
//                [--shards N,N,...] [--faults N] [--reps R]
//                [--duration PER-RUN (5s/500ms/2m; bare = s)] [--tick-ms MS]
//                [--max-threads P] [--u UNIVERSE] [--prefill F]
//                [--seed S] [--reap-delay TICKS] [--no-pin]
//
// --ids names *bases* (default: the six paper variants); --reclaim
// picks the domains (arena = the bare id). Faults cycle through the
// four kinds on workers 0..N-1 under a steady schedule, so "worker 3"
// is the same lease every run and the plan is reproducible. --reps
// repeats the faulted run and summarizes kops and recovery_ms as
// mean +- stddev (a lone rep renders the em dash, never "nan").
//
// Every faulted run still passes the quiescent checks: validate() and
// the population ledger (prefill + adds - rems == size; op-level
// faults count as removes). CSV: bench_faults.csv, one row per cell,
// with per-kind injected counts -- CI's fault-smoke asserts each kind
// fired and each ebr/hp row recovered.
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/faults/faults.hpp"
#include "src/service/soak.hpp"

namespace {

using namespace pragmalist;

// Wall time from the last injected fault to the first sample showing a
// clean blast surface; -1 when no fault fired or the series never
// showed recovery (a fault inside the final reap window is recovered
// by the end-of-run pass, after the last sample).
double recovery_ms(const service::SoakResult& r) {
  const double last = r.last_fault_ms();
  if (last < 0.0) return -1.0;
  for (const auto& s : r.series)
    if (s.t_ms >= last && s.crashed_slots == 0 && s.parked_limbo == 0 &&
        s.leaked_cells == 0)
      return s.t_ms - last;
  return -1.0;
}

struct CellResult {
  harness::Summary kops;
  harness::Summary recovery;     // over reps that recovered
  int injected[faults::kNumFaultKinds] = {0, 0, 0, 0};  // min over reps
  int reaps = 0;                 // min over reps
  std::size_t leaked = 0;        // max end-of-run attributed leak
  std::size_t leaked_slabs = 0;  // max slabs pinned by those leaks
  std::size_t fp_peak = 0;       // max over reps
  std::size_t limbo_peak = 0;    // max over reps
  bool recovered = true;         // every rep: all faults fired + clean
};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = harness::Options::parse(argc, argv);

  service::SoakConfig cfg;
  cfg.schedule = service::SoakSchedule::kSteady;
  cfg.tick_ms = opt.get_int("tick-ms", 100);
  if (cfg.tick_ms < 1) cfg.tick_ms = 1;
  const long duration_ms = opt.get_duration_ms("duration", 2000);
  cfg.ticks = std::max(static_cast<int>(duration_ms / cfg.tick_ms), 1);
  cfg.max_threads =
      opt.get_int("max-threads", bench::default_threads(opt, 16));
  cfg.universe = opt.get_long("u", 1024);
  cfg.prefill = opt.get_long("prefill", cfg.universe / 4);
  cfg.seed = static_cast<std::uint64_t>(opt.get_long("seed", 42));
  cfg.pin = !opt.get_bool("no-pin");
  cfg.record_latency = false;  // blast radius, not tails
  cfg.reap_delay_ticks = opt.get_int("reap-delay", 1);
  const int reps = std::max(opt.get_int("reps", 1), 1);

  // The plan: n faults cycling through the four kinds on workers
  // 0..n-1 (all alive under kSteady), at early staggered ordinals so
  // every fault fires within the first ticks and the recovery window
  // fits inside the run. Clamped to the worker pool -- fewer than four
  // workers cannot host every kind.
  int n_faults = opt.get_int("faults", faults::kNumFaultKinds);
  n_faults = std::max(std::min(n_faults, cfg.max_threads), 0);
  faults::FaultPlan plan;
  for (int i = 0; i < n_faults; ++i)
    plan.at(i, 1000 * (i + 1),
            faults::kAllFaultKinds[i % faults::kNumFaultKinds]);

  std::vector<std::string> bases = opt.get_string_list("ids", {});
  if (bases.empty() || (bases.size() == 1 && bases.front() == "all"))
    bases = {"draconic",      "singly",          "doubly",      "singly_cursor",
             "singly_fetch_or", "doubly_cursor", "unrolled_k8"};
  std::vector<std::string> domains = opt.get_string_list("reclaim", {});
  if (domains.empty()) domains = {"arena", "ebr", "hp"};

  const std::vector<bench::GridCell> cells = bench::expand_grid(
      bases, domains, opt.get_longs("shards", {1, 8}));

  std::cout << "Fault-injection soak, steady p=" << cfg.max_threads << ", "
            << duration_ms / 1000.0 << " s/run (" << cfg.ticks << " ticks x "
            << cfg.tick_ms << " ms), u=" << cfg.universe << ", " << n_faults
            << " faults (";
  for (int i = 0; i < faults::kNumFaultKinds; ++i)
    std::cout << (i ? " " : "")
              << faults::fault_kind_name(faults::kAllFaultKinds[i]) << "="
              << plan.count(faults::kAllFaultKinds[i]);
  std::cout << "), reap delay " << cfg.reap_delay_ticks << " tick(s), "
            << reps << " rep(s)\n"
            << "(recovery = last fault -> first clean blast sample; fp/limbo"
            << " peaks vs the fault-free twin)\n\n";
  std::cout << std::left << std::setw(26) << "variant" << std::right
            << std::setw(14) << "kops/s" << "  " << std::setw(14)
            << "recovery ms" << "  " << std::setw(9) << "faults"
            << std::setw(8) << "leaked" << std::setw(7) << "reaps"
            << std::setw(14) << "fp pk/twin" << std::setw(16)
            << "limbo pk/twin" << std::setw(7) << "ok" << "\n";

  std::ofstream csv("bench_faults.csv");
  if (csv)
    // leaked_slabs appended LAST: every existing awk gate addresses
    // columns by fixed index.
    csv << "id,base,reclaim,shards,reps,kops_mean,kops_sd,recovery_ms_mean,"
           "recovery_ms_sd,inj_guard_held,inj_retire_skipped,inj_depart,"
           "inj_midop,leaked,reaps,fp_peak,twin_fp_peak,limbo_peak,"
           "twin_limbo_peak,recovered,leaked_slabs\n";

  for (const auto& cell : cells) {
    // Fault-free twin first: same everything, empty plan. Its peaks
    // are the workload's own cost.
    std::size_t twin_fp = 0, twin_limbo = 0;
    {
      auto set = harness::make_set(cell.id);
      service::SoakConfig twin_cfg = cfg;
      twin_cfg.faults = faults::FaultPlan{};
      const auto r = service::run_soak(*set, twin_cfg);
      bench::check_valid(*set);
      twin_fp = r.peak_footprint();
      twin_limbo = r.peak_limbo();
    }

    CellResult res;
    res.reaps = INT32_MAX;
    for (int i = 0; i < faults::kNumFaultKinds; ++i)
      res.injected[i] = INT32_MAX;
    std::vector<double> kops, rec;
    for (int rep = 0; rep < reps; ++rep) {
      auto set = harness::make_set(cell.id);
      service::SoakConfig run_cfg = cfg;
      run_cfg.faults = plan;
      run_cfg.seed = cfg.seed + static_cast<std::uint64_t>(rep);
      const auto r = service::run_soak(*set, run_cfg);

      // Quiescent integrity survives the crashes: helping has swept
      // what mid-op abandons left marked, and op-level faults were
      // counted as removes, so the ledger balances.
      bench::check_valid(*set);
      PRAGMALIST_CHECK(
          static_cast<long>(set->size()) ==
              run_cfg.prefill + r.agg.adds - r.agg.rems,
          "population ledger does not balance across injected crashes");

      kops.push_back(r.kops_per_sec());
      int fired[faults::kNumFaultKinds] = {0, 0, 0, 0};
      for (const auto& ev : r.fault_events)
        ++fired[static_cast<int>(ev.kind)];
      for (int i = 0; i < faults::kNumFaultKinds; ++i)
        res.injected[i] = std::min(res.injected[i], fired[i]);
      const bool all_fired =
          static_cast<int>(r.fault_events.size()) == n_faults;
      const double rms = recovery_ms(r);
      if (rms >= 0.0) rec.push_back(rms);
      res.recovered = res.recovered && all_fired && rms >= 0.0;
      res.reaps = std::min(res.reaps, r.reaps);
      const faults::BlastStats end = set->blast_stats();
      res.leaked = std::max(res.leaked, end.leaked_nodes);
      res.leaked_slabs = std::max(res.leaked_slabs, end.leaked_slabs);
      res.fp_peak = std::max(res.fp_peak, r.peak_footprint());
      res.limbo_peak = std::max(res.limbo_peak, r.peak_limbo());
    }
    res.kops = harness::summarize(kops);
    res.recovery = harness::summarize(rec);

    std::ostringstream inj, fp, limbo;
    inj << n_faults << " ";
    for (int i = 0; i < faults::kNumFaultKinds; ++i)
      inj << (i ? "/" : "") << res.injected[i];
    fp << res.fp_peak << "/" << twin_fp;
    limbo << res.limbo_peak << "/" << twin_limbo;
    // setw counts bytes, and the summary cells may carry multibyte
    // glyphs (em dash / plus-minus) -- separate columns explicitly
    // instead of relying on width alone.
    std::cout << std::left << std::setw(26) << cell.id << std::right
              << std::setw(14) << harness::summary_cell(res.kops, 0) << "  "
              << std::setw(14) << harness::summary_cell(res.recovery, 1)
              << "  " << std::setw(9) << inj.str() << std::setw(8)
              << res.leaked << std::setw(7) << res.reaps << std::setw(14)
              << fp.str() << std::setw(16) << limbo.str() << std::setw(7)
              << (res.recovered ? "yes" : "NO") << "\n";

    if (csv) {
      csv << cell.id << "," << cell.variant << "," << cell.reclaimer << ","
          << cell.shards << "," << reps << ","
          << harness::summary_csv_fields(res.kops, 1) << ","
          << harness::summary_csv_fields(res.recovery, 2) << ",";
      for (int i = 0; i < faults::kNumFaultKinds; ++i)
        csv << res.injected[i] << ",";
      csv << res.leaked << "," << res.reaps << "," << res.fp_peak << ","
          << twin_fp << "," << res.limbo_peak << "," << twin_limbo << ","
          << (res.recovered ? 1 : 0) << "," << res.leaked_slabs << "\n";
    }
  }
  if (csv) std::cout << "\ncsv: bench_faults.csv\n";
  return 0;
}
