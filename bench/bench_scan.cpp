// Range-scan cost across the reclamation protocols -- the bench the
// scan API redesign exists for. Point-op throughput barely separates
// EBR from HP, but ordered scans are where the two protocols finally
// diverge measurably:
//
//   * arena -- scans walk freely (stable addresses), the upper bound;
//   * EBR   -- one epoch pin covers the whole scan, so scan-heavy
//     mixes hold the reclamation horizon and the limbo column grows
//     with scan width;
//   * HP    -- every step pays publish + anchor revalidation and a
//     lost anchor restarts the walk from the head, so scans are slower
//     but limbo stays per-thread bounded no matter how wide they get.
//
// The grid: {point-heavy, scan-heavy} mix x each selected variant x
// arena/ebr/hp x every requested shard count. Sharded rows run the
// k-way merge over per-shard cursors; every scanned key is checked
// in-line for global ascending order (run_random_mix aborts
// otherwise), and after each run a quiescent full-range scan must
// reproduce snapshot() exactly -- the bench refuses to report numbers
// from a scan that is not a correct merged ordered read.
//
//   bench_scan [--threads P] [--c OPS] [--u UNIVERSE] [--seed S]
//              [--variants b,f | ids | all] [--shards 1,4]
//              [--scan-frac PCT] [--scan-width W] [--no-pin]
//              [--no-latency]
//
// --scan-frac sets the scan share of the scan-heavy mix (default 40;
// the point-heavy mix always runs 2% scans so both columns price the
// same operation); widths are uniform in [1, --scan-width].
//
// Each row also reports the p99/p999 tail over all op classes (us) --
// scans are precisely the op class whose cost hides in the tail, an
// HP scan that loses its anchor restarts from the head -- and the
// full per-op-class percentiles go to bench_scan_latency.csv.
// --no-latency restores a clock-read-free op loop.
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/harness/drivers.hpp"
#include "src/workload/op_mix.hpp"

namespace {

struct Cell {
  pragmalist::harness::RunResult result;
  pragmalist::harness::LatencyProfile latency;
  std::size_t footprint = 0;
  std::size_t limbo = 0;
};

/// Quiescent cross-check: a full-range scan through a fresh handle
/// must reproduce snapshot() key for key (for sharded sets this is the
/// k-way merge against the sort-after-concatenate oracle).
void check_scan_matches_snapshot(pragmalist::core::ISet& set) {
  std::vector<long> scanned;
  auto h = set.make_handle();
  h->range_scan(std::numeric_limits<long>::min(),
                std::numeric_limits<long>::max(),
                [&](long k) { scanned.push_back(k); });
  PRAGMALIST_CHECK(scanned == set.snapshot(),
                   "quiescent full-range scan does not match snapshot()");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pragmalist;
  const auto opt = harness::Options::parse(argc, argv);
  const int p = bench::default_threads(opt, 16);
  const long c = opt.get_long("c", 25000);
  const long universe = opt.get_long("u", 4096);
  const auto seed = static_cast<std::uint64_t>(opt.get_long("seed", 42));
  const bool pin = !opt.get_bool("no-pin");
  const int scan_frac = opt.get_int("scan-frac", 40);
  const workload::ScanWidths widths = bench::scan_widths(opt);
  const bool latency = bench::latency_enabled(opt);

  // Both mixes start from the update-heavy 25/25/50 and carve the scan
  // share out of contains, so add/remove pressure is identical across
  // the two columns and only the read shape changes.
  struct MixRow {
    const char* name;
    workload::OpMix mix;
  };
  const MixRow mixes[] = {
      {"point", bench::with_scans(workload::kScalingMix, 2)},
      {"scan", bench::with_scans(workload::kScalingMix, scan_frac)},
  };

  // --variants takes paper row letters or ids, default rows b and f
  // (the pragmatic baseline and the paper's best all-round variant);
  // `all` adds the unrolled fat-node family, whose per-node key runs
  // make scans mostly sequential reads.
  const std::vector<std::string> variants =
      bench::select_variants(opt, {"b", "f"});
  const std::vector<long> shard_counts = opt.get_longs("shards", {1, 4});
  const std::vector<std::string> reclaimers = {"arena", "ebr", "hp"};

  auto run_one = [&](const std::string& id, const workload::OpMix& mix) {
    auto set = harness::make_set(id);
    Cell cell;
    cell.result = harness::run_random_mix(
        *set, p, c, /*f=*/1000, universe, mix, seed, pin,
        harness::KeyDist::uniform(), widths,
        latency ? &cell.latency : nullptr);
    bench::check_valid(*set);
    check_scan_matches_snapshot(*set);
    cell.footprint = set->allocated_nodes();
    cell.limbo = set->limbo_nodes();
    return cell;
  };

  std::cout << "Scan grid, p=" << p << ", c=" << c << ", u=" << universe
            << ", widths 1-" << widths.max_width
            << " (point = 25/25/48/2, scan = 25/25/" << (50 - scan_frac)
            << "/" << scan_frac
            << " add/rem/con/scan; keys = keys emitted per scan on"
            << " average; sharded rows k-way-merge and are checked"
            << " globally sorted)\n\n";
  std::cout << std::left << std::setw(26) << "variant" << std::right
            << std::setw(6) << "sh" << std::setw(7) << "mix" << std::setw(11)
            << "kops/s" << std::setw(10) << "keys" << std::setw(10) << "fp"
            << std::setw(10) << "limbo";
  if (latency)
    std::cout << std::setw(9) << "p99us" << std::setw(9) << "p999us";
  std::cout << "\n";

  std::vector<harness::TableRow> csv_rows;
  std::vector<harness::LatencyRow> lat_rows;
  // Slab row plus its /heap malloc twin, like bench_reclaim.
  for (const auto& g :
       bench::expand_grid(variants, reclaimers, shard_counts, {"", "/heap"})) {
    for (const auto& row : mixes) {
      const Cell cell = run_one(g.id, row.mix);
      const double keys_per_scan =
          cell.result.agg.scan_calls > 0
              ? static_cast<double>(cell.result.agg.scans) /
                    static_cast<double>(cell.result.agg.scan_calls)
              : 0.0;
      std::cout << std::left << std::setw(26)
                << (g.variant + "/" + g.reclaimer + g.suffix) << std::right
                << std::setw(6) << g.shards << std::setw(7) << row.name
                << std::setw(11) << std::fixed << std::setprecision(0)
                << cell.result.kops_per_sec() << std::setw(10)
                << std::setprecision(1) << keys_per_scan << std::setw(10)
                << cell.footprint << std::setw(10) << cell.limbo;
      const std::string label = g.variant + "/" + g.reclaimer + "/sh" +
                                std::to_string(g.shards) + g.suffix + ":" +
                                row.name;
      if (latency) {
        const harness::LatHistogram all = cell.latency.merged();
        std::cout << std::setw(9) << std::setprecision(1)
                  << static_cast<double>(all.percentile(0.99)) / 1e3
                  << std::setw(9)
                  << static_cast<double>(all.percentile(0.999)) / 1e3;
        lat_rows.push_back({label, cell.latency, cell.result.kops_per_sec(),
                            cell.result.agg.hint_hits,
                            cell.result.agg.restarts});
      }
      std::cout << "\n";
      csv_rows.push_back({label, cell.result});
    }
  }

  bench::emit_csv("bench_scan.csv", csv_rows);
  bench::emit_latency_csv("bench_scan_latency.csv", lat_rows);
  return 0;
}
