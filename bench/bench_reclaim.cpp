// Memory-reclamation cost comparison: the arena-backed mild list
// (paper setup, reclamation deferred to the end of the run) vs the
// hazard-pointer Michael list (nodes reclaimed during the run) vs the
// lock-based lazy list (retire lists). Quantifies what the paper's
// "simple memory reclamation after each experiment" buys, and what
// §2's claim that the mild improvements tolerate standard schemes
// costs in practice.
//
//   bench_reclaim [--threads P] [--c OPS] [--no-pin]
#include <iostream>
#include <sstream>

#include "bench/bench_util.hpp"
#include "src/harness/drivers.hpp"
#include "src/workload/op_mix.hpp"

int main(int argc, char** argv) {
  using namespace pragmalist;
  const auto opt = harness::Options::parse(argc, argv);
  const int p = bench::default_threads(opt, 16);
  const long c = opt.get_long("c", 25000);
  const bool pin = !opt.get_bool("no-pin");
  // Update-heavy mix to stress retirement: 25/25/50.
  const workload::OpMix mix = workload::kScalingMix;

  std::vector<harness::TableRow> rows;
  for (const std::string_view id :
       {std::string_view("singly"), std::string_view("hp_michael"),
        std::string_view("ebr_michael"), std::string_view("lazy_lock")}) {
    auto set = harness::make_set(id);
    auto result = harness::run_random_mix(*set, p, c, /*f=*/1000,
                                          /*universe=*/4096, mix,
                                          /*seed=*/42, pin);
    bench::check_valid(*set);
    rows.push_back({std::string(id), result});
  }

  std::ostringstream title;
  title << "Reclamation schemes, mix 25/25/50, p=" << p << ", c=" << c
        << " (arena vs hazard pointers vs lock-based retire)";
  harness::print_paper_table(std::cout, title.str(), rows);
  return 0;
}
