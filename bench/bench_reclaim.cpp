// Memory-reclamation cost comparison, three views:
//
//  1. The variant x reclaimer grid: each paper variant under the
//     paper's arena (reclamation deferred to the end of the run) vs
//     epoch-based vs hazard-pointer reclamation from src/reclaim/.
//     Quantifies what the paper's "simple memory reclamation after
//     each experiment" buys, and what §2's claim that the mild
//     improvements tolerate standard schemes costs in practice --
//     note how the pragmatic traversal keeps its shape under EBR but
//     pays anchored revalidation per step under HP.
//  2. Reference rows: the draconic Michael baselines on the same
//     shared reclaim domains, plus the lock-based lazy list.
//  3. (--shards N,N,...) The shard sweep: each selected variant x
//     reclaimer behind a hash-sharded set at every requested shard
//     count (shard count 1 is the plain single list). This is where
//     single-list throughput ceilings fall -- and because all shards
//     share one reclamation domain, the limbo column stays
//     O(threads), not O(threads x shards). --dist zipf shows hot
//     shards in the per-row shard-load line.
//
// All views also report the node footprint (allocated minus freed
// after the run): the arena's grows with every insert, the reclaiming
// schemes' stays near the live set.
//
// Every view also records per-op-class latency (p50..p999/max printed
// as a table after the grid, full percentiles in
// bench_reclaim_latency.csv): reclamation cost is a *tail* story --
// an EBR collect pass or an HP anchored revalidation shows up at p999
// long before it moves a mean. --no-latency restores the
// clock-read-free op loop (the honest-throughput baseline; the smoke
// grid regresses <= 3% vs pre-latency builds in that mode).
//
// Every cell in views 1 and 3 runs twice: once with nodes allocated
// from the domain's slab pool (the catalog default) and once as the
// `/heap` twin (plain malloc per node). The twin rows price the slab
// allocator directly -- same engine, same schedule, only the node
// memory differs. The grid also carries the unrolled fat-node family
// (unrolled_k8: K=8 sorted keys per cache-line-sized node) next to
// the paper rows.
//
//   bench_reclaim [--threads P] [--c OPS] [--u UNIVERSE] [--seed S]
//                 [--variants a,c,e | all] [--no-pin] [--no-latency]
//                 [--shards 1,4,16] [--dist uniform|zipf] [--theta T]
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/harness/drivers.hpp"
#include "src/workload/op_mix.hpp"

namespace {

struct Cell {
  pragmalist::harness::RunResult result;
  pragmalist::harness::LatencyProfile latency;
  std::size_t footprint = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pragmalist;
  const auto opt = harness::Options::parse(argc, argv);
  const int p = bench::default_threads(opt, 16);
  const long c = opt.get_long("c", 25000);
  const long universe = opt.get_long("u", 4096);
  const auto seed = static_cast<std::uint64_t>(opt.get_long("seed", 42));
  const bool pin = !opt.get_bool("no-pin");
  // Update-heavy mix to stress retirement: 25/25/50.
  const workload::OpMix mix = workload::kScalingMix;
  const bool latency = bench::latency_enabled(opt);

  // --variants takes paper row letters (a,c,e) or ids; default is all
  // six paper rows plus the unrolled fat-node family.
  const std::vector<std::string> variants =
      bench::select_variants(opt, {"all"});
  const std::vector<std::string> reclaimers = {"arena", "ebr", "hp"};

  auto run_one = [&](std::string_view id) {
    auto set = harness::make_set(id);
    Cell cell;
    cell.result = harness::run_random_mix(
        *set, p, c, /*f=*/1000, universe, mix, seed, pin,
        harness::KeyDist::uniform(), {}, latency ? &cell.latency : nullptr);
    bench::check_valid(*set);
    cell.footprint = set->allocated_nodes();
    return cell;
  };

  // --- view 1: variant x reclaimer grid ------------------------------
  // Two rows per variant: the slab row (catalog default) and its
  // `/heap` malloc twin, so the node-memory cost reads straight down
  // the column.
  std::cout << "Reclamation grid, mix 25/25/50, p=" << p << ", c=" << c
            << ", u=" << universe
            << " (kops/s; fp = nodes still allocated after the run)\n\n";
  std::cout << std::left << std::setw(28) << "variant";
  for (const auto& r : reclaimers)
    std::cout << std::right << std::setw(12) << r << std::setw(10) << "fp";
  std::cout << "\n";

  std::vector<harness::TableRow> csv_rows;
  std::vector<harness::LatencyRow> lat_rows;
  for (const auto& v : variants) {
    for (const std::string_view mem : {"", "/heap"}) {
      std::cout << std::left << std::setw(28)
                << bench::row_label(v) + std::string(mem);
      for (const auto& r : reclaimers) {
        const Cell cell = run_one(bench::grid_id(v, r, 1, mem));
        std::cout << std::right << std::setw(12) << std::fixed
                  << std::setprecision(0) << cell.result.kops_per_sec()
                  << std::setw(10) << cell.footprint;
        const std::string label = v + "/" + r + std::string(mem);
        if (latency)
          lat_rows.push_back({label, cell.latency,
                              cell.result.kops_per_sec(),
                              cell.result.agg.hint_hits,
                              cell.result.agg.restarts});
        csv_rows.push_back({label, cell.result});
      }
      std::cout << "\n";
    }
  }
  std::cout << "\n";
  if (!lat_rows.empty())
    harness::print_latency_table(
        std::cout, "Per-op-class latency, variant x reclaimer grid",
        lat_rows);

  // --- view 2: reference rows ---------------------------------------
  std::vector<harness::TableRow> ref_rows;
  for (const std::string_view id :
       {std::string_view("hp_michael"), std::string_view("ebr_michael"),
        std::string_view("lazy_lock")}) {
    const Cell cell = run_one(id);
    ref_rows.push_back({std::string(id), cell.result});
  }
  std::ostringstream title;
  title << "Reference baselines (shared reclaim domains), p=" << p
        << ", c=" << c;
  harness::print_paper_table(std::cout, title.str(), ref_rows);

  csv_rows.insert(csv_rows.end(), ref_rows.begin(), ref_rows.end());

  // --- view 3: shard sweep ------------------------------------------
  const std::vector<long> shard_counts = opt.get_longs("shards", {});
  if (!shard_counts.empty()) {
    harness::KeyDist dist = harness::KeyDist::uniform();
    if (opt.get_string("dist", "uniform") == "zipf")
      dist = harness::KeyDist::zipf(opt.get_double("theta", 0.99));
    std::cout << "\nShard sweep, mix 25/25/50, p=" << p << ", c=" << c
              << ", u=" << universe << ", dist="
              << (dist.kind == harness::KeyDist::Kind::kZipf ? "zipf"
                                                             : "uniform")
              << " (one shared reclaim domain per set: limbo stays"
              << " O(threads) at every shard count)\n\n";
    std::cout << std::left << std::setw(26) << "variant" << std::right
              << std::setw(6) << "sh" << std::setw(12) << "kops/s"
              << std::setw(10) << "fp" << std::setw(10) << "limbo"
              << "\n";
    for (const auto& cell : bench::expand_grid(variants, {"ebr", "hp"},
                                                shard_counts,
                                                {"", "/heap"})) {
      const std::string base = cell.variant + "/" + cell.reclaimer;
      auto set = harness::make_set(cell.id);
      harness::LatencyProfile lat;
      harness::RunResult res = harness::run_random_mix(
          *set, p, c, /*f=*/1000, universe, mix, seed, pin, dist, {},
          latency ? &lat : nullptr);
      bench::check_valid(*set);
      std::cout << std::left << std::setw(26) << base + cell.suffix
                << std::right << std::setw(6) << cell.shards << std::setw(12)
                << std::fixed << std::setprecision(0) << res.kops_per_sec()
                << std::setw(10) << set->allocated_nodes() << std::setw(10)
                << set->limbo_nodes() << "\n";
      const std::string load = harness::shard_load_line(*set);
      if (!load.empty()) std::cout << "      " << load << "\n";
      // CSV label always carries the shard count (the n==1 leg runs
      // the bare id but must not collide with view 1's row) and the
      // key distribution when it is not the default; the heap twin
      // keeps its /heap suffix last, mirroring the catalog id grammar.
      std::string csv_label =
          base + "/sh" + std::to_string(cell.shards) + cell.suffix;
      if (dist.kind == harness::KeyDist::Kind::kZipf) csv_label += ":zipf";
      if (latency)
        lat_rows.push_back({csv_label, lat, res.kops_per_sec(),
                            res.agg.hint_hits, res.agg.restarts});
      csv_rows.push_back({std::move(csv_label), res});
    }
  }

  bench::emit_csv("bench_reclaim.csv", csv_rows);
  bench::emit_latency_csv("bench_reclaim_latency.csv", lat_rows);
  return 0;
}
