// Beyond-paper skew ablation: the cursor exploits access locality, and
// a zipfian key stream has plenty of it. Compares uniform vs zipf
// (theta = 0.9 / 0.99) streams on the mild, cursor and doubly-cursor
// variants. The paper only evaluates uniform keys; this bench answers
// "do the cursor wins survive (or grow) under realistic skew?".
//
//   bench_skew [--threads P] [--c OPS] [--u UNIVERSE] [--no-pin]
#include <iostream>
#include <sstream>

#include "bench/bench_util.hpp"
#include "src/harness/drivers.hpp"
#include "src/workload/op_mix.hpp"

int main(int argc, char** argv) {
  using namespace pragmalist;
  const auto opt = harness::Options::parse(argc, argv);
  const int p = bench::default_threads(opt, 16);
  const long c = opt.get_long("c", 6000);
  const long u = opt.get_long("u", 8192);
  const bool pin = !opt.get_bool("no-pin");

  struct Dist {
    const char* label;
    harness::KeyDist dist;
  };
  const Dist dists[] = {
      {"uniform", harness::KeyDist::uniform()},
      {"zipf-0.9", harness::KeyDist::zipf(0.9)},
      {"zipf-0.99", harness::KeyDist::zipf(0.99)},
  };

  for (const auto& d : dists) {
    std::vector<harness::TableRow> rows;
    for (const std::string_view id :
         {std::string_view("singly"), std::string_view("singly_cursor"),
          std::string_view("doubly_cursor")}) {
      auto set = harness::make_set(id);
      auto r = harness::run_random_mix(*set, p, c, u / 2, u,
                                       workload::kTableMix, 42, pin, d.dist);
      bench::check_valid(*set);
      rows.push_back({std::string(id), r});
    }
    std::ostringstream title;
    title << "Key skew: " << d.label << ", mix 10/10/80, p=" << p
          << ", c=" << c << ", U=" << u;
    harness::print_paper_table(std::cout, title.str(), rows);
    std::cout << "\n";
  }
  return 0;
}
