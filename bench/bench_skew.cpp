// Beyond-paper skew ablation: the cursor exploits access locality, and
// a zipfian key stream has plenty of it. Compares uniform vs zipf
// (theta = 0.9 / 0.99) streams on the mild, cursor and doubly-cursor
// variants, plus their hash-sharded counterparts (--shards, default 8)
// -- the zipf hot ranks map to fixed hot shards (shard::shard_of is a
// pure function of the key), and the shard-load line under each
// sharded row shows exactly how lopsided the partition ran. The paper
// only evaluates uniform keys; this bench answers "do the cursor wins
// survive (or grow) under realistic skew, and does sharding still pay
// when the load is concentrated?".
//
//   bench_skew [--threads P] [--c OPS] [--u UNIVERSE] [--shards N]
//              [--no-pin]
#include <iostream>
#include <sstream>

#include "bench/bench_util.hpp"
#include "src/harness/drivers.hpp"
#include "src/workload/op_mix.hpp"

int main(int argc, char** argv) {
  using namespace pragmalist;
  const auto opt = harness::Options::parse(argc, argv);
  const int p = bench::default_threads(opt, 16);
  const long c = opt.get_long("c", 6000);
  const long u = opt.get_long("u", 8192);
  const long shards = opt.get_long("shards", 8);
  const bool pin = !opt.get_bool("no-pin");

  struct Dist {
    const char* label;
    harness::KeyDist dist;
  };
  const Dist dists[] = {
      {"uniform", harness::KeyDist::uniform()},
      {"zipf-0.9", harness::KeyDist::zipf(0.9)},
      {"zipf-0.99", harness::KeyDist::zipf(0.99)},
  };

  for (const auto& d : dists) {
    std::vector<harness::TableRow> rows;
    std::vector<std::string> shard_lines;
    const std::string sh_suffix = "/sh" + std::to_string(shards);
    for (std::string id :
         {std::string("singly"), std::string("singly_cursor"),
          std::string("doubly_cursor"), std::string("singly") + sh_suffix,
          std::string("singly_cursor") + sh_suffix,
          std::string("doubly_cursor") + sh_suffix}) {
      auto set = harness::make_set(id);
      auto r = harness::run_random_mix(*set, p, c, u / 2, u,
                                       workload::kTableMix, 42, pin, d.dist);
      bench::check_valid(*set);
      rows.push_back({id, r});
      const std::string load = harness::shard_load_line(*set);
      if (!load.empty()) shard_lines.push_back(id + ": " + load);
    }
    std::ostringstream title;
    title << "Key skew: " << d.label << ", mix 10/10/80, p=" << p
          << ", c=" << c << ", U=" << u;
    harness::print_paper_table(std::cout, title.str(), rows);
    for (const auto& line : shard_lines) std::cout << "  " << line << "\n";
    std::cout << "\n";
  }
  return 0;
}
