// Google-benchmark microbenchmarks: single-threaded per-operation cost
// of add/remove churn, contains hits and contains misses for every
// variant at several list sizes. Complements the paper tables (which
// measure contended throughput) with uncontended latency, isolating the
// constant-factor overhead of prev maintenance and cursor bookkeeping.
#include <benchmark/benchmark.h>

#include "src/core/variants.hpp"

namespace {

using namespace pragmalist;

template <typename List>
void fill_evens(typename List::Handle& h, long n) {
  for (long k = 0; k < n; ++k) h.add(2 * k);
}

/// Steady-state churn: remove + re-add one key in the middle.
template <typename List>
void BM_AddRemoveChurn(benchmark::State& state) {
  List list;
  auto h = list.make_handle();
  const long n = state.range(0);
  fill_evens<List>(h, n);
  const long victim = n;  // middle even key
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.remove(victim));
    benchmark::DoNotOptimize(h.add(victim));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}

/// Membership hit on a present key (worst case: near the end).
template <typename List>
void BM_ContainsHit(benchmark::State& state) {
  List list;
  auto h = list.make_handle();
  const long n = state.range(0);
  fill_evens<List>(h, n);
  const long probe = 2 * (n - 1);
  for (auto _ : state) benchmark::DoNotOptimize(h.contains(probe));
  state.SetItemsProcessed(state.iterations());
}

/// Membership miss between two present keys.
template <typename List>
void BM_ContainsMiss(benchmark::State& state) {
  List list;
  auto h = list.make_handle();
  const long n = state.range(0);
  fill_evens<List>(h, n);
  const long probe = n | 1;  // odd => absent
  for (auto _ : state) benchmark::DoNotOptimize(h.contains(probe));
  state.SetItemsProcessed(state.iterations());
}

/// Ascending insertion of n keys into an empty list (then clear):
/// the pattern where cursors shine even single-threaded.
template <typename List>
void BM_AscendingBuild(benchmark::State& state) {
  const long n = state.range(0);
  for (auto _ : state) {
    List list;
    auto h = list.make_handle();
    for (long k = 0; k < n; ++k) benchmark::DoNotOptimize(h.add(k));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

}  // namespace

#define PRAGMALIST_MICRO(bench)                                           \
  BENCHMARK_TEMPLATE(bench, core::DraconicList)->Arg(64)->Arg(1024);      \
  BENCHMARK_TEMPLATE(bench, core::SinglyList)->Arg(64)->Arg(1024);        \
  BENCHMARK_TEMPLATE(bench, core::DoublyList)->Arg(64)->Arg(1024);        \
  BENCHMARK_TEMPLATE(bench, core::SinglyCursorList)->Arg(64)->Arg(1024);  \
  BENCHMARK_TEMPLATE(bench, core::SinglyFetchOrList)->Arg(64)->Arg(1024); \
  BENCHMARK_TEMPLATE(bench, core::DoublyCursorList)->Arg(64)->Arg(1024);

PRAGMALIST_MICRO(BM_AddRemoveChurn)
PRAGMALIST_MICRO(BM_ContainsHit)
PRAGMALIST_MICRO(BM_ContainsMiss)
PRAGMALIST_MICRO(BM_AscendingBuild)

BENCHMARK_MAIN();
