// Long-running service soak across the variant x reclaimer grid:
// worker threads arrive and depart mid-run on a deterministic schedule
// (ramp / burst / waves / stragglers / steady) while the harness
// samples throughput, node footprint, and reclaimer limbo depth once
// per tick. The question the fixed-duration benches cannot answer:
// does memory stay bounded when threads come and go for as long as the
// service runs? Arena rows are deliberately absent -- the paper's
// scheme grows without bound by design (bench_reclaim shows that);
// this bench is about the reclaimers surviving membership churn.
//
//   bench_soak [--threads-schedule ramp|steady|burst|waves|stragglers]
//              [--duration PER-ID (5s/500ms/2m; bare = s)] [--tick-ms MS]
//              [--max-threads P] [--u UNIVERSE] [--prefill F]
//              [--seed S] [--ids all|ID,ID,...] [--no-pin] [--series]
//              [--shards N,N,...] [--zipf-theta T]
//              [--scan-frac PCT] [--scan-width W] [--no-latency]
//
// --scan-frac carves PCT of the contains share into range scans
// (widths uniform in [1, W]); long scans pin EBR's epoch for their
// whole duration, which is exactly what the limbo series is for.
//
// Per id: one summary row (kops/s, p99/p999 over all ops, arrivals,
// peak/end footprint, peak/end limbo) plus a per-op-class latency
// table, plus a per-shard load line (op counts and max/min imbalance)
// for sharded ids. --shards sweeps every id at each shard count (1 =
// the plain list, N appends `/shN`); --zipf-theta draws keys
// Zipf(theta) so the sweep shows hot shards. The full time series of
// every run goes to bench_soak.csv -- ticks are paced by absolute
// deadlines and each row carries its *measured* window (dur_ms), which
// is what the kops column is normalized by -- and the per-tick tail
// columns (p50/p99/p999/max us, all classes merged) show latency
// breathing with membership churn. --series also prints the series;
// --no-latency turns recording off (clock-read-free op loop).
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/service/soak.hpp"

namespace {

void print_series(const pragmalist::service::SoakResult& r, bool latency) {
  std::cout << "    tick    t_ms  dur_ms  thr      ops    kops  footprint"
               "  limbo";
  if (latency) std::cout << "   p50us   p99us  p999us   maxus";
  std::cout << "\n";
  for (const auto& s : r.series) {
    std::cout << std::setw(8) << s.tick << std::setw(8) << std::fixed
              << std::setprecision(0) << s.t_ms << std::setw(8)
              << std::setprecision(1) << s.dur_ms << std::setw(5)
              << s.threads << std::setw(9) << s.ops << std::setw(8)
              << std::setprecision(0) << s.kops_per_sec() << std::setw(11)
              << s.footprint << std::setw(7) << s.limbo;
    if (latency)
      std::cout << std::setprecision(1) << std::setw(8) << s.p50_us
                << std::setw(8) << s.p99_us << std::setw(8) << s.p999_us
                << std::setw(8) << s.max_us;
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pragmalist;
  const auto opt = harness::Options::parse(argc, argv);

  service::SoakConfig cfg;
  cfg.schedule = service::parse_soak_schedule(
      opt.get_string("threads-schedule", "ramp"));
  cfg.tick_ms = opt.get_int("tick-ms", 100);
  if (cfg.tick_ms < 1) cfg.tick_ms = 1;
  const long duration_ms = opt.get_duration_ms("duration", 5000);
  cfg.ticks = static_cast<int>(duration_ms / cfg.tick_ms);
  if (cfg.ticks < 1) cfg.ticks = 1;
  cfg.max_threads =
      opt.get_int("max-threads", bench::default_threads(opt, 16));
  cfg.universe = opt.get_long("u", 1024);
  cfg.prefill = opt.get_long("prefill", cfg.universe / 4);
  cfg.seed = static_cast<std::uint64_t>(opt.get_long("seed", 42));
  cfg.pin = !opt.get_bool("no-pin");
  cfg.zipf_theta = opt.get_double("zipf-theta", 0.0);
  const int scan_frac = opt.get_int("scan-frac", 0);
  cfg.mix = bench::with_scans(cfg.mix, scan_frac);
  cfg.scan_widths = bench::scan_widths(opt);
  cfg.record_latency = bench::latency_enabled(opt);
  const bool series = opt.get_bool("series");

  // --ids: default is the whole reclaim grid (every <variant>/ebr|hp).
  std::vector<std::string> ids = opt.get_string_list("ids", {});
  if (ids.empty() ||
      (ids.size() == 1 && ids.front() == "all")) {
    ids.clear();
    for (const auto id : harness::reclaim_variant_ids())
      ids.emplace_back(id);
  }

  // --shards sweeps every id at each count: 1 leaves the id alone, any
  // other count appends the catalog's /shN suffix.
  std::vector<std::string> run_ids;
  for (const long n : opt.get_longs("shards", {1})) {
    if (n < 1) continue;
    for (const auto& id : ids)
      run_ids.push_back(n == 1 ? id : id + "/sh" + std::to_string(n));
  }

  std::cout << "Soak grid, schedule=" << soak_schedule_name(cfg.schedule)
            << ", " << duration_ms / 1000.0 << " s/id (" << cfg.ticks << " ticks x "
            << cfg.tick_ms << " ms), max p=" << cfg.max_threads
            << ", u=" << cfg.universe << ", mix " << cfg.mix.add_pct << "/"
            << cfg.mix.rem_pct << "/" << cfg.mix.con_pct;
  if (cfg.mix.scan_pct > 0)
    std::cout << "/" << cfg.mix.scan_pct << " scans (width 1-"
              << cfg.scan_widths.max_width << ")";
  if (cfg.zipf_theta > 0.0)
    std::cout << ", keys zipf(" << cfg.zipf_theta << ")";
  std::cout << "\n(fp = allocated-not-freed nodes, limbo = retired-not-freed;"
            << " peak over the series / value at the end";
  if (cfg.record_latency)
    std::cout << "; p99/p999 in us over all op classes";
  std::cout << ")\n\n";
  std::cout << std::left << std::setw(26) << "variant" << std::right
            << std::setw(10) << "kops/s";
  if (cfg.record_latency)
    std::cout << std::setw(9) << "p99us" << std::setw(9) << "p999us";
  std::cout << std::setw(10) << "arrivals" << std::setw(14) << "fp peak/end"
            << std::setw(16) << "limbo peak/end" << "\n";

  std::ofstream csv("bench_soak.csv");
  if (csv)
    csv << "id,schedule,shards,tick,t_ms,dur_ms,threads,ops,kops,footprint,"
           "limbo,p50_us,p99_us,p999_us,max_us,leaked,crashed_slots,"
           "leaked_cells,parked_limbo,horizon_lag\n";

  std::vector<harness::LatencyRow> lat_rows;
  for (const auto& id : run_ids) {
    auto set = harness::make_set(id);
    const auto r = service::run_soak(*set, cfg);

    // Quiescent integrity + population ledger, like every driver.
    bench::check_valid(*set);
    PRAGMALIST_CHECK(
        static_cast<long>(set->size()) ==
            cfg.prefill + r.agg.adds - r.agg.rems,
        "population ledger does not balance after the soak");

    std::ostringstream fp, limbo;
    fp << r.peak_footprint() << "/" << set->allocated_nodes();
    limbo << r.peak_limbo() << "/" << set->limbo_nodes();
    std::cout << std::left << std::setw(26) << id << std::right
              << std::setw(10) << std::fixed << std::setprecision(0)
              << r.kops_per_sec();
    if (cfg.record_latency) {
      const harness::LatHistogram all = r.latency.merged();
      std::cout << std::setprecision(1) << std::setw(9)
                << static_cast<double>(all.percentile(0.99)) / 1e3
                << std::setw(9)
                << static_cast<double>(all.percentile(0.999)) / 1e3
                << std::setprecision(0);
    }
    std::cout << std::setw(10) << r.arrivals << std::setw(14) << fp.str()
              << std::setw(15) << limbo.str() << "\n";
    const std::string load = harness::shard_load_line(*set);
    if (!load.empty()) std::cout << "    " << load << "\n";
    if (series) print_series(r, cfg.record_latency);
    if (cfg.record_latency)
      lat_rows.push_back({id, r.latency,
                          r.ms > 0.0 ? static_cast<double>(r.agg.total_ops()) /
                                           r.ms
                                     : 0.0,
                          r.agg.hint_hits, r.agg.restarts});

    if (csv)
      for (const auto& s : r.series)
        csv << id << "," << soak_schedule_name(cfg.schedule) << ","
            << set->shard_count() << "," << s.tick << "," << s.t_ms << ","
            << s.dur_ms << "," << s.threads << "," << s.ops << ","
            << s.kops_per_sec() << "," << s.footprint << "," << s.limbo
            << "," << s.p50_us << "," << s.p99_us << "," << s.p999_us << ","
            << s.max_us << "," << s.leaked << "," << s.crashed_slots << ","
            << s.leaked_cells << "," << s.parked_limbo << ","
            << s.horizon_lag << "\n";
  }
  if (!lat_rows.empty()) {
    std::cout << "\n";
    harness::print_latency_table(std::cout, "Per-op-class latency (whole run)",
                                 lat_rows);
  }
  if (csv) std::cout << "\ncsv: bench_soak.csv\n";
  return 0;
}
