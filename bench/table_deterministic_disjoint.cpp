// Reproduces Tables 2 (AMD), 5 (Xeon) and 8 (SPARC): the deterministic
// worst-case benchmark with per-thread disjoint key sequences
// k(i) = t + i*p. Paper parameters: p = 64/80, n = 10000.
//
//   table_deterministic_disjoint [--threads P] [--n N] [--paper]
//                                [--no-pin] [--baselines]
#include <iostream>
#include <sstream>

#include "bench/bench_util.hpp"
#include "src/harness/drivers.hpp"
#include "src/workload/schedule.hpp"

int main(int argc, char** argv) {
  using namespace pragmalist;
  const auto opt = harness::Options::parse(argc, argv);
  const int p = bench::default_threads(opt, 64);
  const long n = opt.get_long("n", opt.get_bool("paper") ? 10000 : 700);
  const bool pin = !opt.get_bool("no-pin");

  std::vector<harness::TableRow> rows;
  std::vector<std::string_view> ids(harness::paper_variant_ids());
  if (opt.get_bool("baselines")) {
    ids.push_back("coarse_lock");
    ids.push_back("lazy_lock");
    ids.push_back("hp_michael");
  }
  for (const auto id : ids) {
    auto set = harness::make_set(id);
    auto result = harness::run_deterministic(
        *set, p, n, workload::KeySchedule::kDisjointKeys, pin);
    bench::check_valid(*set);
    PRAGMALIST_CHECK(set->size() == 0,
                     "deterministic benchmark must end empty");
    rows.push_back({bench::row_label(id), result});
  }

  std::ostringstream title;
  title << "Deterministic benchmark k(i)=t+ip (Tables 2/5/8), p=" << p
        << ", n=" << n << ", " << hardware_cpus() << " CPUs";
  harness::print_paper_table(std::cout, title.str(), rows);
  bench::emit_csv("table_deterministic_disjoint.csv", rows);
  return 0;
}
