// Shared plumbing for the paper-table bench binaries.
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/affinity.hpp"
#include "src/common/debug.hpp"
#include "src/harness/catalog.hpp"
#include "src/harness/options.hpp"
#include "src/harness/table.hpp"
#include "src/workload/op_mix.hpp"

namespace pragmalist::bench {

/// Default thread count: 2x logical CPUs (contention without paper-scale
/// hardware); --threads overrides, --paper restores the paper's counts.
inline int default_threads(const harness::Options& opt, int paper_threads) {
  if (opt.get_bool("paper")) return opt.get_int("threads", paper_threads);
  return opt.get_int("threads", 2 * hardware_cpus());
}

/// "a) draconic" style row label.
inline std::string row_label(std::string_view id) {
  return std::string(harness::variant_letter(id)) + ") " + std::string(id);
}

/// Emit the CSV twin next to the binary (best effort).
inline void emit_csv(const std::string& filename,
                     const std::vector<harness::TableRow>& rows) {
  std::ofstream out(filename);
  if (!out) {
    std::cerr << "(could not write " << filename << ")\n";
    return;
  }
  harness::write_csv(out, rows);
  std::cout << "csv: " << filename << "\n";
}

/// Post-run structural check; benches refuse to report numbers from a
/// corrupted structure.
inline void check_valid(const core::ISet& set) {
  std::string err;
  PRAGMALIST_CHECK(set.validate(&err), err.c_str());
}

/// Carve a scan fraction out of a point mix's contains share:
/// {25,25,50} with scan_pct 20 becomes 25/25/30/20. The shared
/// --scan-frac semantics of bench_scan and bench_soak.
inline workload::OpMix with_scans(workload::OpMix mix, int scan_pct) {
  PRAGMALIST_CHECK(scan_pct >= 0 && scan_pct <= mix.con_pct,
                   "--scan-frac must be in [0, contains share]");
  mix.con_pct -= scan_pct;
  mix.scan_pct = scan_pct;
  return mix;
}

/// The shared --scan-width flag: widths drawn uniformly in [1, W].
inline workload::ScanWidths scan_widths(const harness::Options& opt,
                                        long def_width = 64) {
  const long w = opt.get_long("scan-width", def_width);
  PRAGMALIST_CHECK(w >= 1, "--scan-width must be at least 1");
  return {1, w};
}

/// The shared --no-latency flag: per-op recording defaults on (this is
/// an observability-first harness) and is force-off when the layer is
/// compiled out. Pass --no-latency for pre-PR-6-comparable throughput
/// numbers (no clock reads in the op loop).
inline bool latency_enabled(const harness::Options& opt) {
  return harness::kLatencyCompiled && !opt.get_bool("no-latency");
}

/// Emit the per-op-class latency CSV twin (best effort), mirroring
/// emit_csv.
inline void emit_latency_csv(const std::string& filename,
                             const std::vector<harness::LatencyRow>& rows) {
  if (rows.empty()) return;
  std::ofstream out(filename);
  if (!out) {
    std::cerr << "(could not write " << filename << ")\n";
    return;
  }
  harness::write_latency_csv(out, rows);
  std::cout << "latency csv: " << filename << "\n";
}

}  // namespace pragmalist::bench
