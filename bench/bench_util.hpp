// Shared plumbing for the paper-table bench binaries.
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/affinity.hpp"
#include "src/common/debug.hpp"
#include "src/harness/catalog.hpp"
#include "src/harness/options.hpp"
#include "src/harness/table.hpp"
#include "src/workload/op_mix.hpp"

namespace pragmalist::bench {

/// Default thread count: 2x logical CPUs (contention without paper-scale
/// hardware); --threads overrides, --paper restores the paper's counts.
inline int default_threads(const harness::Options& opt, int paper_threads) {
  if (opt.get_bool("paper")) return opt.get_int("threads", paper_threads);
  return opt.get_int("threads", 2 * hardware_cpus());
}

/// "a) draconic" style row label.
inline std::string row_label(std::string_view id) {
  return std::string(harness::variant_letter(id)) + ") " + std::string(id);
}

/// Emit the CSV twin next to the binary (best effort).
inline void emit_csv(const std::string& filename,
                     const std::vector<harness::TableRow>& rows) {
  std::ofstream out(filename);
  if (!out) {
    std::cerr << "(could not write " << filename << ")\n";
    return;
  }
  harness::write_csv(out, rows);
  std::cout << "csv: " << filename << "\n";
}

/// Post-run structural check; benches refuse to report numbers from a
/// corrupted structure.
inline void check_valid(const core::ISet& set) {
  std::string err;
  PRAGMALIST_CHECK(set.validate(&err), err.c_str());
}

/// Carve a scan fraction out of a point mix's contains share:
/// {25,25,50} with scan_pct 20 becomes 25/25/30/20. The shared
/// --scan-frac semantics of bench_scan and bench_soak.
inline workload::OpMix with_scans(workload::OpMix mix, int scan_pct) {
  PRAGMALIST_CHECK(scan_pct >= 0 && scan_pct <= mix.con_pct,
                   "--scan-frac must be in [0, contains share]");
  mix.con_pct -= scan_pct;
  mix.scan_pct = scan_pct;
  return mix;
}

/// The shared --scan-width flag: widths drawn uniformly in [1, W].
inline workload::ScanWidths scan_widths(const harness::Options& opt,
                                        long def_width = 64) {
  const long w = opt.get_long("scan-width", def_width);
  PRAGMALIST_CHECK(w >= 1, "--scan-width must be at least 1");
  return {1, w};
}

/// The shared --no-latency flag: per-op recording defaults on (this is
/// an observability-first harness) and is force-off when the layer is
/// compiled out. Pass --no-latency for pre-PR-6-comparable throughput
/// numbers (no clock reads in the op loop).
inline bool latency_enabled(const harness::Options& opt) {
  return harness::kLatencyCompiled && !opt.get_bool("no-latency");
}

/// The shared --variants selection: paper row letters (a,c,e), full
/// ids, or "all"; candidates are the six paper rows plus the unrolled
/// fat-node family. Aborts when nothing matched (a typo must not
/// silently shrink a bench to zero rows).
inline std::vector<std::string> select_variants(
    const harness::Options& opt, const std::vector<std::string>& def) {
  std::vector<std::string_view> candidates(harness::paper_variant_ids());
  candidates.push_back("unrolled_k8");
  const std::vector<std::string> tokens =
      opt.get_string_list("variants", def);
  const bool all = tokens.size() == 1 && tokens.front() == "all";
  std::vector<std::string> variants;
  for (const std::string_view id : candidates) {
    bool wanted = all;
    for (const auto& tok : tokens)
      wanted |= tok == id || tok == harness::variant_letter(id);
    if (wanted) variants.emplace_back(id);
  }
  PRAGMALIST_CHECK(!variants.empty(),
                   "--variants matched none of the rows a-f/unrolled_k8");
  return variants;
}

/// Catalog id of one grid cell, per the id grammar: arena keeps the
/// bare variant, `/shN` is omitted at one shard, and the memory/hint
/// suffix ("", "/heap", "/nohint") comes last.
inline std::string grid_id(std::string_view variant,
                           std::string_view reclaimer, long shards,
                           std::string_view suffix = "") {
  std::string id(variant);
  if (!reclaimer.empty() && reclaimer != "arena") {
    id += '/';
    id += reclaimer;
  }
  if (shards > 1) id += "/sh" + std::to_string(shards);
  id += suffix;
  return id;
}

/// One cell of the variant x reclaimer x shards (x suffix) grid.
struct GridCell {
  std::string id;  // catalog id (grid_id of the coordinates below)
  std::string variant;
  std::string reclaimer;
  long shards = 1;
  std::string suffix;
};

/// Row-major expansion (variant -> reclaimer -> shards -> suffix) of
/// the grid every reclaim-aware bench sweeps; shard counts < 1 are
/// skipped. The one copy of the loop nest that used to be duplicated
/// across bench_reclaim/bench_scan/bench_latency/bench_faults.
inline std::vector<GridCell> expand_grid(
    const std::vector<std::string>& variants,
    const std::vector<std::string>& reclaimers,
    const std::vector<long>& shard_counts,
    const std::vector<std::string>& suffixes = {""}) {
  std::vector<GridCell> cells;
  for (const auto& v : variants)
    for (const auto& r : reclaimers)
      for (const long n : shard_counts) {
        if (n < 1) continue;
        for (const auto& s : suffixes)
          cells.push_back({grid_id(v, r, n, s), v, r, n, s});
      }
  return cells;
}

/// Emit the per-op-class latency CSV twin (best effort), mirroring
/// emit_csv.
inline void emit_latency_csv(const std::string& filename,
                             const std::vector<harness::LatencyRow>& rows) {
  if (rows.empty()) return;
  std::ofstream out(filename);
  if (!out) {
    std::cerr << "(could not write " << filename << ")\n";
    return;
  }
  harness::write_latency_csv(out, rows);
  std::cout << "latency csv: " << filename << "\n";
}

}  // namespace pragmalist::bench
