// The paper's thread-private configuration (§3): "the benchmarks can
// also be configured such that each thread operates on a private list
// ... either the lock-free implementation, or a standard, sequential
// list. These configurations can give an idea of the system and memory
// overheads when there is no actual interaction between threads."
// The paper does not report these numbers; we implement the
// configuration and report them as an extension.
//
//   bench_private [--threads P] [--c OPS] [--u UNIVERSE] [--no-pin]
#include <iostream>
#include <sstream>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/baselines/sequential_list.hpp"
#include "src/core/variants.hpp"
#include "src/harness/drivers.hpp"
#include "src/harness/thread_team.hpp"
#include "src/workload/distributions.hpp"
#include "src/workload/op_mix.hpp"
#include "src/workload/rng.hpp"

namespace {

using namespace pragmalist;

/// Run the 10/10/80 mix on one private structure per thread. `ops` is
/// any callable triple access (add/rem/con) factory per thread.
template <typename MakeOps>
harness::RunResult private_mix(int p, long c, long universe,
                               std::uint64_t seed, bool pin,
                               MakeOps make_ops) {
  std::vector<core::OpCounters> counters(static_cast<std::size_t>(p));
  const double ms = harness::run_team(
      p,
      [&](int t) {
        auto ops = make_ops();  // private structure, created on the thread
        workload::Xoshiro256StarStar rng(workload::thread_seed(seed, t));
        const workload::UniformKeys keys(
            static_cast<std::uint64_t>(universe));
        const workload::OpMix mix = workload::kTableMix;
        for (long j = 0; j < c; ++j) {
          const long k = keys(rng);
          switch (mix.pick(rng)) {
            case workload::OpKind::kAdd:
              ops.add(k);
              break;
            case workload::OpKind::kRemove:
              ops.remove(k);
              break;
            case workload::OpKind::kContains:
              ops.contains(k);
              break;
            case workload::OpKind::kScan:
              break;  // unreachable: the table mix has no scan share
          }
        }
        counters[static_cast<std::size_t>(t)] = ops.counters();
      },
      pin);
  harness::RunResult r;
  r.ms = ms;
  for (const auto& ctr : counters) r.agg += ctr;
  r.total_ops = r.agg.total_ops();
  return r;
}

/// Private lock-free list: the list object and its single handle live
/// on one thread; all atomics still execute, measuring their cost
/// without any actual sharing.
template <typename List>
struct PrivateLockFree {
  List list;
  typename List::Handle h{list.make_handle()};
  bool add(long k) { return h.add(k); }
  bool remove(long k) { return h.remove(k); }
  bool contains(long k) { return h.contains(k); }
  core::OpCounters counters() const { return h.counters(); }
};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = harness::Options::parse(argc, argv);
  const int p = bench::default_threads(opt, 16);
  const long c = opt.get_long("c", 50000);
  const long u = opt.get_long("u", 10000);
  const auto seed = static_cast<std::uint64_t>(opt.get_long("seed", 42));
  const bool pin = !opt.get_bool("no-pin");

  std::vector<harness::TableRow> rows;
  rows.push_back(
      {"seq_singly", private_mix(p, c, u, seed, pin, [] {
         return baselines::SequentialList();
       })});
  rows.push_back(
      {"seq_doubly_cursor", private_mix(p, c, u, seed, pin, [] {
         return baselines::SequentialCursorList();
       })});
  rows.push_back(
      {"lf_singly_cursor", private_mix(p, c, u, seed, pin, [] {
         return PrivateLockFree<core::SinglyCursorList>();
       })});
  rows.push_back(
      {"lf_doubly_cursor", private_mix(p, c, u, seed, pin, [] {
         return PrivateLockFree<core::DoublyCursorList>();
       })});

  std::ostringstream title;
  title << "Thread-private lists (paper config, unreported), mix 10/10/80, p="
        << p << ", c=" << c << ", U=" << u;
  harness::print_paper_table(std::cout, title.str(), rows);
  std::cout << "Interpretation: lock-free vs sequential gap = cost of the\n"
               "atomic operations and list-node layout alone (no sharing).\n";
  return 0;
}
