// Reproduces Tables 3 (AMD), 6 (Xeon) and 9 (SPARC): the random
// operation mix benchmark, 10% add / 10% rem / 80% con over a key
// universe U=10000 with f=1000 prefilled items. Paper parameters:
// p = 64/80, c = 1e6 ops/thread.
//
//   table_random_mix [--threads P] [--c OPS] [--f PREFILL] [--u UNIVERSE]
//                    [--add PCT] [--rem PCT] [--seed S] [--paper]
//                    [--no-pin] [--baselines]
#include <iostream>
#include <sstream>

#include "bench/bench_util.hpp"
#include "src/harness/drivers.hpp"
#include "src/workload/op_mix.hpp"

int main(int argc, char** argv) {
  using namespace pragmalist;
  const auto opt = harness::Options::parse(argc, argv);
  const bool paper = opt.get_bool("paper");
  const int p = bench::default_threads(opt, 64);
  const long c = opt.get_long("c", paper ? 1000000 : 40000);
  const long f = opt.get_long("f", 1000);
  const long u = opt.get_long("u", 10000);
  const int add_pct = opt.get_int("add", 10);
  const int rem_pct = opt.get_int("rem", 10);
  const auto seed = static_cast<std::uint64_t>(opt.get_long("seed", 42));
  const bool pin = !opt.get_bool("no-pin");
  const workload::OpMix mix{add_pct, rem_pct, 100 - add_pct - rem_pct};

  std::vector<harness::TableRow> rows;
  std::vector<std::string_view> ids(harness::paper_variant_ids());
  if (opt.get_bool("baselines")) {
    ids.push_back("coarse_lock");
    ids.push_back("lazy_lock");
    ids.push_back("hp_michael");
  }
  for (const auto id : ids) {
    auto set = harness::make_set(id);
    auto result = harness::run_random_mix(*set, p, c, f, u, mix, seed, pin);
    bench::check_valid(*set);
    // Conservation: prefill + successful adds - successful removes must
    // equal the surviving population.
    PRAGMALIST_CHECK(set->size() == static_cast<std::size_t>(f) +
                                        result.agg.adds - result.agg.rems,
                     "population ledger mismatch after random mix");
    rows.push_back({bench::row_label(id), result});
  }

  std::ostringstream title;
  title << "Random mix " << mix.add_pct << "/" << mix.rem_pct << "/"
        << mix.con_pct << " (Tables 3/6/9), p=" << p << ", c=" << c
        << ", f=" << f << ", U=" << u;
  harness::print_paper_table(std::cout, title.str(), rows);
  bench::emit_csv("table_random_mix.csv", rows);
  return 0;
}
