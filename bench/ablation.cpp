// Ablation bench for the design choices DESIGN.md §2 calls out. Each
// section isolates one knob by comparing two catalog entries that
// differ only in that knob, on both benchmark families:
//   cursor:          b) singly        vs d) singly_cursor
//   marking:         d) singly_cursor vs e) singly_fetch_or
//   linkage:         d) singly_cursor vs f) doubly_cursor
//   prev precision:  f) doubly_cursor vs doubly_cursor_noprec
//
//   ablation [--threads P] [--n N] [--c OPS] [--no-pin]
#include <iostream>
#include <sstream>

#include "bench/bench_util.hpp"
#include "src/harness/drivers.hpp"
#include "src/workload/op_mix.hpp"
#include "src/workload/schedule.hpp"

namespace {

using namespace pragmalist;

struct Section {
  const char* knob;
  const char* base;
  const char* variant;
};

constexpr Section kSections[] = {
    {"cursor", "singly", "singly_cursor"},
    {"marking(fetch-or)", "singly_cursor", "singly_fetch_or"},
    {"linkage(backptr)", "singly_cursor", "doubly_cursor"},
    {"prev-precision", "doubly_cursor", "doubly_cursor_noprec"},
    {"backoff", "singly_cursor", "singly_cursor_backoff"},
};

harness::RunResult det(std::string_view id, int p, long n, bool pin) {
  auto set = harness::make_set(id);
  auto r = harness::run_deterministic(*set, p, n,
                                      workload::KeySchedule::kSameKeys, pin);
  bench::check_valid(*set);
  return r;
}

harness::RunResult mix(std::string_view id, int p, long c, bool pin) {
  auto set = harness::make_set(id);
  auto r = harness::run_random_mix(*set, p, c, /*f=*/1000, /*universe=*/10000,
                                   workload::kTableMix, /*seed=*/42, pin);
  bench::check_valid(*set);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = harness::Options::parse(argc, argv);
  const int p = bench::default_threads(opt, 16);
  const long n = opt.get_long("n", 1000);
  const long c = opt.get_long("c", 25000);
  const bool pin = !opt.get_bool("no-pin");

  for (const auto& s : kSections) {
    std::vector<harness::TableRow> rows;
    rows.push_back({std::string(s.base) + " [det]", det(s.base, p, n, pin)});
    rows.push_back(
        {std::string(s.variant) + " [det]", det(s.variant, p, n, pin)});
    rows.push_back({std::string(s.base) + " [mix]", mix(s.base, p, c, pin)});
    rows.push_back(
        {std::string(s.variant) + " [mix]", mix(s.variant, p, c, pin)});
    std::ostringstream title;
    title << "Ablation: " << s.knob << "  (p=" << p << ", n=" << n
          << ", c=" << c << ")";
    harness::print_paper_table(std::cout, title.str(), rows);
    std::cout << "\n";
  }
  return 0;
}
