// Reproduces Figures 1 (AMD), 2 (Xeon) and 3 (SPARC): weak-scaling
// throughput of five variants (a, b, c, d, f) under the random mix
// 25% add / 25% rem / 50% con with c = 50000 ops/thread, f = 16384
// prefilled keys, U = 32768. The paper plots the mean of 5 runs per
// point; we default to 3 repetitions and a host-sized thread sweep
// (paper sweeps 1..512).
//
//   fig_scalability [--threads 1,2,4,8] [--c OPS] [--reps R] [--paper]
//                   [--seed S] [--no-pin]
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>

#include "bench/bench_util.hpp"
#include "src/harness/drivers.hpp"
#include "src/harness/stats.hpp"
#include "src/workload/op_mix.hpp"

int main(int argc, char** argv) {
  using namespace pragmalist;
  const auto opt = harness::Options::parse(argc, argv);
  const bool paper = opt.get_bool("paper");
  const long c = opt.get_long("c", paper ? 50000 : 8000);
  const long f = opt.get_long("f", 16384);
  const long u = opt.get_long("u", 32768);
  const int reps = opt.get_int("reps", paper ? 5 : 3);
  const auto seed = static_cast<std::uint64_t>(opt.get_long("seed", 42));
  const bool pin = !opt.get_bool("no-pin");
  const workload::OpMix mix = workload::kScalingMix;  // 25/25/50

  std::vector<long> default_threads{1, 2, 3, 4, 6, 8};
  if (paper)
    default_threads = {1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64};
  const auto thread_counts = opt.get_longs("threads", default_threads);

  const auto& ids = harness::figure_variant_ids();
  // series[id] -> per-thread-count mean Kops/s
  std::map<std::string_view, std::vector<double>> series;

  for (const long p : thread_counts) {
    for (const auto id : ids) {
      std::vector<double> kops;
      for (int r = 0; r < reps; ++r) {
        auto set = harness::make_set(id);
        auto result = harness::run_random_mix(
            *set, static_cast<int>(p), c, f, u, mix,
            seed + static_cast<std::uint64_t>(r), pin);
        bench::check_valid(*set);
        kops.push_back(result.kops_per_sec());
      }
      series[id].push_back(harness::summarize(kops).mean);
    }
    std::cerr << "  [fig_scalability] finished p=" << p << "\n";
  }

  std::cout << "== Scalability, random mix 25/25/50 (Figures 1/2/3), c=" << c
            << ", f=" << f << ", U=" << u << ", reps=" << reps << " ==\n";
  std::cout << std::left << std::setw(9) << "threads";
  for (const auto id : ids) std::cout << std::right << std::setw(15) << id;
  std::cout << "   (mean Kops/s)\n";
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    std::cout << std::left << std::setw(9) << thread_counts[i];
    for (const auto id : ids)
      std::cout << std::right << std::setw(15) << std::fixed
                << std::setprecision(2) << series[id][i];
    std::cout << "\n";
  }

  std::ofstream csv("fig_scalability.csv");
  if (csv) {
    csv << "threads";
    for (const auto id : ids) csv << ',' << id;
    csv << "\n";
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      csv << thread_counts[i];
      for (const auto id : ids) csv << ',' << series[id][i];
      csv << "\n";
    }
    std::cout << "csv: fig_scalability.csv\n";
  }
  return 0;
}
