// Tail-latency sweep -- the bench the histogram layer exists for.
// Throughput means cannot distinguish the pragmatic variants' trade
// (cheap common-case ops, occasional long revalidation walks) from a
// uniformly slower structure; p99/p999/max can. Two modes:
//
//   * default (throughput mode): back-to-back ops via run_random_mix,
//     latency = observed start -> completion. Prices the op itself.
//   * --rate R (fixed-rate, coordinated-omission-aware): each worker
//     issues R intended ops/s on an absolute schedule and latency is
//     measured from the *intended* start, so when an op stalls (a long
//     revalidation walk, an HP re-anchor storm), the ops queued behind
//     it record their waiting time instead of silently not existing.
//     This is the service-eye view: a client's request does not care
//     that the worker was busy.
//
// The grid: each selected variant x arena/ebr/hp x every requested
// shard count, per-op-class (add/remove/contains/scan) percentiles.
// The binary self-checks p50 <= p99 <= p999 <= max on every non-empty
// class (and the CI smoke re-asserts it on the CSV), and every run
// still validates the structure and the population ledger -- no
// numbers from a broken set.
//
//   bench_latency [--threads P] [--c OPS] [--u UNIVERSE] [--seed S]
//                 [--variants b,f | ids | all] [--shards 1,4]
//                 [--mix scaling|table|reads] [--scan-frac PCT]
//                 [--scan-width W] [--rate OPS_PER_SEC_PER_THREAD]
//                 [--no-pin]
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/harness/drivers.hpp"
#include "src/workload/op_mix.hpp"

int main(int argc, char** argv) {
  using namespace pragmalist;
  const auto opt = harness::Options::parse(argc, argv);
  const int p = bench::default_threads(opt, 16);
  const long c = opt.get_long("c", 25000);
  const long universe = opt.get_long("u", 4096);
  const auto seed = static_cast<std::uint64_t>(opt.get_long("seed", 42));
  const bool pin = !opt.get_bool("no-pin");
  const double rate = opt.get_double("rate", 0.0);
  const int scan_frac = opt.get_int("scan-frac", 10);
  const workload::ScanWidths widths = bench::scan_widths(opt);
  // Base mix: update-heavy default so every class has samples; `--mix
  // reads` is the contains-heavy fast lane the hint index is priced on
  // (and what the CI contains-heavy gate runs). Scans carved from the
  // contains share like bench_scan/bench_soak.
  const std::string mix_name = opt.get_string("mix", "scaling");
  workload::OpMix base_mix = workload::kScalingMix;
  if (mix_name == "reads")
    base_mix = workload::kReadMostlyMix;
  else if (mix_name == "table")
    base_mix = workload::kTableMix;
  else
    PRAGMALIST_CHECK(mix_name == "scaling",
                     "--mix must be scaling, table or reads");
  const workload::OpMix mix = bench::with_scans(base_mix, scan_frac);

  PRAGMALIST_CHECK(harness::kLatencyCompiled,
                   "bench_latency needs -DPRAGMALIST_LATENCY=ON");

  // --variants takes paper row letters or ids, default rows b and f
  // (the pragmatic baseline and the paper's best all-round variant);
  // `all` adds the unrolled fat-node family.
  const std::vector<std::string> variants =
      bench::select_variants(opt, {"b", "f"});
  const std::vector<long> shard_counts = opt.get_longs("shards", {1, 4});
  const std::vector<std::string> reclaimers = {"arena", "ebr", "hp"};

  std::cout << "Latency grid, p=" << p << ", c=" << c << ", u=" << universe
            << ", mix " << mix.add_pct << "/" << mix.rem_pct << "/"
            << mix.con_pct << "/" << mix.scan_pct << " (widths 1-"
            << widths.max_width << "), mode=";
  if (rate > 0.0)
    std::cout << "fixed-rate " << std::fixed << std::setprecision(0) << rate
              << " ops/s/worker (coordinated-omission-aware: latency from"
              << " *intended* start)";
  else
    std::cout << "throughput (latency from observed start)";
  std::cout << "\n\n";

  std::vector<harness::LatencyRow> rows;
  // Slab cell plus its /heap malloc twin (allocator cost is a tail
  // story too: a slab refill vs a malloc slow path) plus its /nohint
  // twin -- same cell, shortcut-hint index disabled, pricing what the
  // hints buy on this mix.
  for (const auto& g : bench::expand_grid(variants, reclaimers, shard_counts,
                                          {"", "/heap", "/nohint"})) {
    auto set = harness::make_set(g.id);
    harness::LatencyProfile lat;
    long behind = 0;
    harness::RunResult res;
    if (rate > 0.0)
      res = harness::run_fixed_rate(
          *set, p, c, /*prefill=*/1000, universe, mix, seed, pin, rate,
          lat, &behind, harness::KeyDist::uniform(), widths);
    else
      res = harness::run_random_mix(*set, p, c, /*prefill=*/1000,
                                    universe, mix, seed, pin,
                                    harness::KeyDist::uniform(), widths,
                                    &lat);
    bench::check_valid(*set);
    PRAGMALIST_CHECK(
        static_cast<long>(set->size()) == 1000 + res.agg.adds -
            res.agg.rems,
        "population ledger does not balance after the run");
    // Self-check the percentile ordering on every non-empty
    // class; the CI smoke re-asserts this from the CSV.
    for (int cls = 0; cls < harness::kNumOpClasses; ++cls) {
      const auto& h = lat.of(static_cast<harness::OpClass>(cls));
      if (h.count() == 0) continue;
      PRAGMALIST_CHECK(h.percentile(0.50) <= h.percentile(0.99) &&
                           h.percentile(0.99) <= h.percentile(0.999) &&
                           h.percentile(0.999) <= h.max(),
                       "percentiles are not monotone");
    }
    std::string label = g.id;
    if (rate > 0.0) label += ":rate";
    rows.push_back({std::move(label), lat, res.kops_per_sec(),
                    res.agg.hint_hits, res.agg.restarts});
    if (rate > 0.0 && behind > 0)
      std::cout << "(" << g.id << ": " << behind << " of "
                << res.total_ops << " ops started >= 1 period late)\n";
  }

  harness::print_latency_table(
      std::cout, rate > 0.0 ? "Per-op-class latency (fixed-rate)"
                            : "Per-op-class latency (throughput mode)",
      rows);
  std::ofstream csv("bench_latency.csv");
  if (csv) {
    harness::write_latency_csv(csv, rows);
    std::cout << "\ncsv: bench_latency.csv\n";
  }
  return 0;
}
